#!/usr/bin/env python
"""Processor-count scaling study, 2..32p, through ``repro.api``.

Figure 5 of the paper plots how the protocols scale as processors are
added.  This example reproduces a slice of that sweep through the
stable :func:`repro.api.run_experiment` facade — no harness internals —
and uses it to exercise the vectorized kernel layer at every scale:
the same sweep is run twice, kernels on and off
(``SimOptions(kernels=False)``, the scalar per-element escape hatch),
and the rendered figures are asserted byte-identical before the
wall-clock cost of the scalar paths is reported.

Simulated results never depend on the kernel layer; only the time the
*simulation itself* takes does.  The gap widens with processor count:
more processors mean more bands/blocks whose inner loops the kernels
collapse into single numpy sweeps.

Usage::

    python examples/scaling_study.py [--apps sor gauss ...] [--jobs N]
"""

import argparse
import time

from repro.api import run_experiment
from repro.options import SimOptions

DEFAULT_APPS = ("sor", "gauss", "lu")
VARIANTS = ("csm_poll", "tmk_mc_poll")
COUNTS = (2, 4, 8, 16, 32)


def sweep(apps, jobs, options):
    from repro.config import variant_by_name

    started = time.perf_counter()
    result = run_experiment(
        "figure5",
        scale="small",
        jobs=jobs,
        options=options,
        apps=list(apps),
        variants=[variant_by_name(v) for v in VARIANTS],
        counts=list(COUNTS),
    )
    return result, time.perf_counter() - started


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", nargs="+", default=list(DEFAULT_APPS))
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    kernel, kernel_s = sweep(args.apps, args.jobs, SimOptions())
    scalar, scalar_s = sweep(
        args.apps, args.jobs, SimOptions(kernels=False)
    )
    assert kernel.text == scalar.text, (
        "kernel layer changed simulated results"
    )
    SimOptions().apply()

    print(kernel.text)
    print("\nScaling of the simulator itself (same simulated results):")
    print(f"  vectorized kernels : {kernel_s:7.2f} s wall clock")
    print(f"  scalar loops       : {scalar_s:7.2f} s wall clock")
    print(f"  kernel-layer speedup {scalar_s / kernel_s:.2f}x over "
          f"{len(args.apps)} apps x {len(VARIANTS)} variants x "
          f"{len(COUNTS)} counts")
    print("\nRendered figures are byte-identical with kernels on and "
          "off: the layer\nchanges how fast the simulation runs, "
          "never what it simulates.")


if __name__ == "__main__":
    main()
