"""The sharing-policy study: granularity x prefetch x homing A/B.

The paper fixes the coherence unit at the 8 KB VM page, fetches purely
on demand, and homes data where it is first touched.  PR 10's pluggable
policy layer (docs/POLICIES.md) makes all three choices knobs; this
driver measures what they buy.  For each protocol variant it runs one
application over a ladder of policy triples — the default
``(page, none, first-touch)`` first — and reports each triple's
simulated time, its speedup over the default triple, the policy
counters (``prefetches``, ``home_migrations``), and whether the
simulated *results* stayed bit-identical to the baseline's (they must:
policies move costs, never values).

The interesting subject is the false-sharing-prone extension workload
``irreg`` on the ``rdma`` backend at 8 processors — the configuration
where fine-grained coherence pays off hardest against page-grained
invalidation churn (and the configuration CI's policy gate pins via
``benchmarks/bench_wallclock.py --pr10``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.config import CSM_POLL, HLRC_POLL, TMK_MC_POLL, Variant
from repro.harness.runner import BatchPoint, ExperimentContext

#: The head-to-head set: the paper's two polling systems plus the
#: home-based third protocol (whose eager-diff page churn the policy
#: layer bites into hardest).
DEFAULT_VARIANTS = (CSM_POLL, TMK_MC_POLL, HLRC_POLL)

#: The default policy ladder.  The first triple **must** be the default
#: (page, none, first-touch): every other row is normalized to it.
DEFAULT_POLICIES: Tuple[Tuple[str, str, str], ...] = (
    ("page", "none", "first-touch"),
    ("block256", "none", "first-touch"),
    ("block256", "seq", "first-touch"),
    ("block1k", "none", "first-touch"),
    ("region2", "none", "first-touch"),
    ("page", "seq", "first-touch"),
    ("page", "none", "round-robin"),
    ("page", "none", "dynamic"),
)

DEFAULT_APP = "irreg"
DEFAULT_NPROCS = 8
DEFAULT_NETWORK = "rdma"


@dataclass
class PolicyCell:
    """One (variant, policy-triple) measurement."""

    variant: str
    granularity: str
    prefetch: str
    homing: str
    exec_ms: float
    speedup: float  # over the default triple, same variant
    prefetches: int
    home_migrations: int
    values_ok: bool  # simulated results identical to the baseline's

    @property
    def is_baseline(self) -> bool:
        return (self.granularity, self.prefetch, self.homing) == (
            "page",
            "none",
            "first-touch",
        )


def _values_equal(a, b) -> bool:
    """Bit-exact equality over the per-rank values lists (rank 0 holds
    the result tuple, other ranks None)."""
    import numpy as np

    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, (list, tuple)):
        return (
            isinstance(b, (list, tuple))
            and len(a) == len(b)
            and all(_values_equal(x, y) for x, y in zip(a, b))
        )
    return bool(np.array_equal(np.asarray(a), np.asarray(b)))


def generate(
    ctx: ExperimentContext = None,
    app: str = DEFAULT_APP,
    variants: Optional[Sequence[Variant]] = None,
    policies: Optional[Sequence[Tuple[str, str, str]]] = None,
    nprocs: int = DEFAULT_NPROCS,
    network: str = DEFAULT_NETWORK,
) -> List[PolicyCell]:
    ctx = ctx or ExperimentContext()
    variants = list(variants or DEFAULT_VARIANTS)
    policies = list(policies or DEFAULT_POLICIES)
    baseline = ("page", "none", "first-touch")
    if baseline in policies:
        policies.remove(baseline)
    policies.insert(0, baseline)
    batch = [
        BatchPoint(
            app,
            variant,
            nprocs,
            overrides=(
                ("granularity", g),
                ("homing", h),
                ("network", network),
                ("prefetch", p),
            ),
        )
        for variant in variants
        for (g, p, h) in policies
    ]
    results = ctx.run_batch(batch)
    cells: List[PolicyCell] = []
    cursor = 0
    for variant in variants:
        base = results[cursor]
        for g, p, h in policies:
            result = results[cursor]
            cursor += 1
            cells.append(
                PolicyCell(
                    variant=variant.name,
                    granularity=g,
                    prefetch=p,
                    homing=h,
                    exec_ms=result.exec_time / 1000.0,
                    speedup=base.exec_time / result.exec_time,
                    prefetches=result.counter("prefetches"),
                    home_migrations=result.counter("home_migrations"),
                    values_ok=_values_equal(base.values, result.values),
                )
            )
    return cells


def best_non_default(cells: List[PolicyCell]) -> Optional[PolicyCell]:
    """The fastest non-default policy row across every variant — the
    row the ISSUE's >=1.2x acceptance gate reads."""
    contenders = [c for c in cells if not c.is_baseline]
    if not contenders:
        return None
    return max(contenders, key=lambda c: c.speedup)


def render(cells: List[PolicyCell]) -> str:
    variants: List[str] = []
    for cell in cells:
        if cell.variant not in variants:
            variants.append(cell.variant)
    lines = []
    for variant in variants:
        lines.append(f"== variant: {variant} ==")
        lines.append(
            f"{'granularity':<12}{'prefetch':<10}{'homing':<13}"
            f"{'time_ms':>9}{'speedup':>9}{'pf':>7}{'mig':>6}  values"
        )
        for cell in cells:
            if cell.variant != variant:
                continue
            lines.append(
                f"{cell.granularity:<12}{cell.prefetch:<10}"
                f"{cell.homing:<13}{cell.exec_ms:>9.1f}"
                f"{cell.speedup:>8.2f}x{cell.prefetches:>7}"
                f"{cell.home_migrations:>6}  "
                + ("ok" if cell.values_ok else "MISMATCH")
            )
        lines.append("")
    best = best_non_default(cells)
    if best is not None:
        verdict = "MET" if best.speedup >= 1.2 else "NOT met"
        lines.append(
            "== best non-default policy: "
            f"({best.granularity}, {best.prefetch}, {best.homing}) "
            f"on {best.variant} at {best.speedup:.2f}x "
            f"— >=1.2x gate {verdict} =="
        )
    return "\n".join(lines)


def run(
    ctx: ExperimentContext = None,
    app: str = DEFAULT_APP,
    variants: Optional[Sequence[Variant]] = None,
    policies: Optional[Sequence[Tuple[str, str, str]]] = None,
    nprocs: int = DEFAULT_NPROCS,
    network: str = DEFAULT_NETWORK,
):
    """Run the policy study, wrapped in the common result envelope."""
    from repro.harness import results

    ctx = ctx or ExperimentContext()
    cells = generate(
        ctx,
        app=app,
        variants=variants,
        policies=policies,
        nprocs=nprocs,
        network=network,
    )
    best = best_non_default(cells)
    config = {
        "app": app,
        "nprocs": nprocs,
        "network": network,
        "variants": sorted({c.variant for c in cells}),
        "policies": [
            [c.granularity, c.prefetch, c.homing]
            for c in cells
            if c.variant == cells[0].variant
        ],
        "best_speedup": None if best is None else round(best.speedup, 3),
        "values_all_ok": all(c.values_ok for c in cells),
    }
    return results.build("policies", ctx, cells, render(cells), config)
