"""Processor placements used in the paper's evaluation (Section 4.3).

"The configurations we use are as follows: 1 processor: trivial;
2: separate nodes; 4: one processor in each of 4 nodes; 8: two processors
in each of 4 nodes; 12: three processors in each of 4 nodes; 16: two
processors in each of 8 nodes; 24: three processors in each of 8 nodes;
and 32: trivial, but not applicable to csm_pp."
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from repro.config import ClusterConfig, Mechanism

# nprocs -> (nodes used, compute CPUs per node)
PAPER_PLACEMENTS = {
    1: (1, 1),
    2: (2, 1),
    4: (4, 1),
    8: (4, 2),
    12: (4, 3),
    16: (8, 2),
    24: (8, 3),
    32: (8, 4),
}

PAPER_PROCESSOR_COUNTS = (1, 2, 4, 8, 12, 16, 24, 32)

#: Power-of-two sweep past the paper's 32-processor ceiling (PR 7).
SCALING_PROCESSOR_COUNTS = (8, 16, 32, 64, 128, 256, 512, 1024)


def paper_processor_counts(max_procs: int = 32) -> Tuple[int, ...]:
    return tuple(n for n in PAPER_PROCESSOR_COUNTS if n <= max_procs)


def scaling_processor_counts(max_procs: int = 256) -> Tuple[int, ...]:
    return tuple(n for n in SCALING_PROCESSOR_COUNTS if n <= max_procs)


def cluster_for(
    nprocs: int,
    base: Optional[ClusterConfig] = None,
    mechanism: Optional[Mechanism] = None,
) -> ClusterConfig:
    """A cluster with room for ``nprocs``, grown from ``base`` if needed.

    At or below the base capacity this returns ``base`` unchanged, so
    every paper-range configuration keeps the eight-node AlphaServer
    topology (and its goldens).  Past it, nodes are added while the
    per-node CPU count, page size, and cache line stay fixed — the
    cluster scales out, never up, matching how the era's (and today's)
    installations grew.  ``mechanism=PROTOCOL_PROCESSOR`` reserves one
    CPU per node for request service when sizing.
    """
    if nprocs < 1:
        raise ValueError("need at least one processor")
    base = base if base is not None else ClusterConfig()
    compute_cpus = base.cpus_per_node
    if mechanism is Mechanism.PROTOCOL_PROCESSOR:
        compute_cpus -= 1
    if compute_cpus < 1:
        raise ValueError("no compute CPUs left on each node")
    if nprocs <= base.n_nodes * compute_cpus:
        return base
    n_nodes = -(-nprocs // compute_cpus)  # ceil division
    return replace(base, n_nodes=n_nodes)


def placement(
    nprocs: int,
    cluster: ClusterConfig,
    mechanism: Mechanism,
) -> List[Tuple[int, int]]:
    """Map ranks to (node, cpu) slots following the paper's scheme."""
    if nprocs < 1:
        raise ValueError("need at least one processor")
    compute_cpus = cluster.cpus_per_node
    if mechanism is Mechanism.PROTOCOL_PROCESSOR:
        compute_cpus -= 1  # the last CPU of each node services requests
    if compute_cpus < 1:
        raise ValueError("no compute CPUs left on each node")

    shape = PAPER_PLACEMENTS.get(nprocs)
    if shape is not None:
        nodes_used, cpus_used = shape
        if nodes_used <= cluster.n_nodes and cpus_used <= compute_cpus:
            return [
                (nid, cpu)
                for nid in range(nodes_used)
                for cpu in range(cpus_used)
            ]

    # Fallback for non-paper counts or smaller clusters: spread across as
    # many nodes as possible, then stack CPUs round-robin.
    nodes_used = min(cluster.n_nodes, nprocs)
    if nprocs > nodes_used * compute_cpus:
        raise ValueError(
            f"cannot place {nprocs} processors on {cluster.n_nodes} nodes "
            f"x {compute_cpus} compute CPUs"
        )
    slots = []
    for cpu in range(compute_cpus):
        for nid in range(nodes_used):
            slots.append((nid, cpu))
    return sorted(slots[:nprocs])
