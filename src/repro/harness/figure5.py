"""Figure 5: speedups of the eight applications, 1..32 processors, for
all six protocol variants.

"All calculations are with respect to the sequential times in Table 2."
``csm_pp`` is not applicable at 32 processors (the fourth CPU of each
node is the protocol processor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import ALL_VARIANTS, Variant
from repro.apps import registry
from repro.harness.configs import paper_processor_counts
from repro.harness.runner import BatchPoint, ExperimentContext, feasible_counts

# The full paper sweep is 1, 2, 4, 8, 12, 16, 24, 32; the default keeps
# the distinctive points and halves the run count.
DEFAULT_COUNTS = (1, 2, 4, 8, 16, 32)


@dataclass
class SpeedupCurve:
    app: str
    variant: str
    points: Dict[int, float] = field(default_factory=dict)


def generate(
    ctx: ExperimentContext = None,
    apps: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[Variant]] = None,
    counts: Optional[Sequence[int]] = None,
) -> List[SpeedupCurve]:
    ctx = ctx or ExperimentContext()
    apps = list(apps or registry.APP_NAMES)
    variants = list(variants or ALL_VARIANTS)
    counts = list(counts or DEFAULT_COUNTS)
    # Every point of the figure — sequential baselines included — is an
    # independent simulation; collect them all and let run_batch fan
    # them out across ``ctx.jobs`` workers and the result cache.
    batch: List[BatchPoint] = [BatchPoint(app, None) for app in apps]
    curves = []
    for app in apps:
        for variant in variants:
            curve = SpeedupCurve(app=app, variant=variant.name)
            feasible = feasible_counts(counts, variant, ctx)
            batch.extend(BatchPoint(app, variant, n) for n in feasible)
            curves.append((curve, feasible))
    results = ctx.run_batch(batch)
    sequential = dict(zip(apps, results[: len(apps)]))
    cursor = len(apps)
    for curve, feasible in curves:
        for nprocs in feasible:
            curve.points[nprocs] = results[cursor].speedup_over(
                sequential[curve.app].exec_time
            )
            cursor += 1
    return [curve for curve, _ in curves]


def full_paper_counts() -> Sequence[int]:
    return paper_processor_counts()


def run(
    ctx: ExperimentContext = None,
    apps: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[Variant]] = None,
    counts: Optional[Sequence[int]] = None,
):
    """Generate Figure 5 and wrap it in the common result envelope."""
    from repro.harness import results

    ctx = ctx or ExperimentContext()
    curves = generate(ctx, apps=apps, variants=variants, counts=counts)
    config = {
        "apps": sorted({c.app for c in curves}),
        "variants": sorted({c.variant for c in curves}),
        "counts": sorted({n for c in curves for n in c.points}),
    }
    return results.build("figure5", ctx, curves, render(curves), config)


def render(curves: List[SpeedupCurve]) -> str:
    counts = sorted({n for c in curves for n in c.points})
    lines = []
    apps = []
    for curve in curves:
        if curve.app not in apps:
            apps.append(curve.app)
    for app in apps:
        lines.append(f"== {app} ==")
        lines.append(
            f"{'variant':<13}" + "".join(f"{n:>8}" for n in counts)
        )
        for curve in curves:
            if curve.app != app:
                continue
            cells = [
                f"{curve.points[n]:>8.2f}" if n in curve.points else f"{'-':>8}"
                for n in counts
            ]
            lines.append(f"{curve.variant:<13}" + "".join(cells))
    return "\n".join(lines)
