"""Figure 5: speedups of the eight applications, 1..32 processors, for
all six protocol variants.

"All calculations are with respect to the sequential times in Table 2."
``csm_pp`` is not applicable at 32 processors (the fourth CPU of each
node is the protocol processor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import ALL_VARIANTS, Variant
from repro.apps import registry
from repro.harness.configs import paper_processor_counts
from repro.harness.runner import ExperimentContext, feasible_counts

# The full paper sweep is 1, 2, 4, 8, 12, 16, 24, 32; the default keeps
# the distinctive points and halves the run count.
DEFAULT_COUNTS = (1, 2, 4, 8, 16, 32)


@dataclass
class SpeedupCurve:
    app: str
    variant: str
    points: Dict[int, float] = field(default_factory=dict)


def generate(
    ctx: ExperimentContext = None,
    apps: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[Variant]] = None,
    counts: Optional[Sequence[int]] = None,
) -> List[SpeedupCurve]:
    ctx = ctx or ExperimentContext()
    apps = list(apps or registry.APP_NAMES)
    variants = list(variants or ALL_VARIANTS)
    counts = list(counts or DEFAULT_COUNTS)
    curves = []
    for app in apps:
        for variant in variants:
            curve = SpeedupCurve(app=app, variant=variant.name)
            for nprocs in feasible_counts(counts, variant, ctx):
                curve.points[nprocs] = ctx.speedup(app, variant, nprocs)
            curves.append(curve)
    return curves


def full_paper_counts() -> Sequence[int]:
    return paper_processor_counts()


def render(curves: List[SpeedupCurve]) -> str:
    counts = sorted({n for c in curves for n in c.points})
    lines = []
    apps = []
    for curve in curves:
        if curve.app not in apps:
            apps.append(curve.app)
    for app in apps:
        lines.append(f"== {app} ==")
        lines.append(
            f"{'variant':<13}" + "".join(f"{n:>8}" for n in counts)
        )
        for curve in curves:
            if curve.app != app:
                continue
            cells = [
                f"{curve.points[n]:>8.2f}" if n in curve.points else f"{'-':>8}"
                for n in counts
            ]
            lines.append(f"{curve.variant:<13}" + "".join(cells))
    return "\n".join(lines)
