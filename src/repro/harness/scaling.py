"""Weak- and strong-scaling sweeps past the paper's 32 processors.

The paper's evaluation stops at the testbed's 32 CPUs; ROADMAP's top
open item is to push the same protocols to 64-1024-processor clusters
(PR 7).  This driver runs the two standard scaling disciplines:

**Strong scaling** holds the problem fixed (the context's scale tier)
and grows the machine; the reported metric is the speedup relative to
the sweep's first processor count (ideal: ``nprocs / ref``).  Using the
first point — not a sequential run — as the reference keeps xlarge
sweeps feasible: a full-size sequential baseline would dwarf the sweep
itself.

**Weak scaling** grows the problem with the machine, holding the work
per processor constant: the app's dominant linear dimension (rows for
sor, graph nodes for em3d, ...) is scaled by ``nprocs / ref``.  The
metric is parallel efficiency ``T(ref) / T(p)`` (ideal: 1.0); the
distance below 1.0 is protocol overhead growing with the processor
count — exactly the page-based-DSM scalability wall the sweep probes.

Both metrics share one formula (``T(ref) / T(p)``); only the ideal
differs.  Counts past the base cluster's 32 CPUs run on clusters grown
node-by-node via :func:`repro.harness.configs.cluster_for`, and each
point's cluster and parameters enter its result-cache key as usual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import CSM_POLL, TMK_MC_POLL, Variant
from repro.harness.configs import cluster_for
from repro.harness.runner import BatchPoint, ExperimentContext

#: The app's dominant linear work dimension, scaled with the processor
#: count under weak scaling.  Apps whose work is superlinear in one
#: parameter (gauss/lu in n, tsp in cities) have no honest linear knob
#: and support strong scaling only.
WEAK_KNOBS = {
    "sor": "rows",
    "em3d": "n_nodes",
    "ilink": "elems",
    "water": "n_mols",
    "barnes": "n_bodies",
}

#: Default sweep: the paper's top count, then 8x and 32x past it.
DEFAULT_COUNTS = (8, 64, 256)

MODES = ("weak", "strong")


@dataclass
class ScalePoint:
    """One (processor count, variant) measurement of a scaling sweep."""

    app: str
    variant: str
    mode: str
    nprocs: int
    exec_time: float  # simulated microseconds
    metric: float  # T(ref)/T(p): efficiency (weak) or rel. speedup (strong)


def weak_params(app: str, base: Dict, ref: int, nprocs: int) -> Dict:
    """``base`` re-sized so per-processor work stays constant vs ``ref``."""
    knob = WEAK_KNOBS.get(app)
    if knob is None:
        raise ValueError(
            f"{app} has no linear work dimension; weak scaling supports "
            f"{sorted(WEAK_KNOBS)} — use mode='strong'"
        )
    scaled = dict(base)
    scaled[knob] = max(nprocs, round(base[knob] * nprocs / ref))
    return scaled


def sweep(
    ctx: ExperimentContext,
    app: str = "sor",
    mode: str = "weak",
    counts: Sequence[int] = DEFAULT_COUNTS,
    variants: Optional[Sequence[Variant]] = None,
    overrides: Optional[Dict] = None,
) -> List[ScalePoint]:
    """Run one scaling sweep; points come back count-major.

    ``overrides`` (``barrier_fanin=8``, ``dir_shards=4``,
    ``node_mem_pages=...``) apply to every point — the CLI's scaling
    knobs ride through here and enter each point's cache key.
    """
    if mode not in MODES:
        raise ValueError(f"unknown scaling mode {mode!r}; known: {MODES}")
    counts = sorted(set(counts))
    if not counts:
        raise ValueError("need at least one processor count")
    variants = list(variants or (CSM_POLL, TMK_MC_POLL))
    ref = counts[0]
    base = ctx.params(app)
    knobs = tuple(sorted((overrides or {}).items()))
    batch = []
    for nprocs in counts:
        params = (
            weak_params(app, base, ref, nprocs) if mode == "weak" else base
        )
        for variant in variants:
            batch.append(
                BatchPoint(
                    app,
                    variant,
                    nprocs,
                    overrides=knobs,
                    params=tuple(sorted(params.items())),
                    cluster=cluster_for(
                        nprocs, ctx.cluster, variant.mechanism
                    ),
                )
            )
    results = ctx.run_batch(batch)
    points: List[ScalePoint] = []
    cursor = 0
    ref_time: Dict[str, float] = {}
    for nprocs in counts:
        for variant in variants:
            exec_time = results[cursor].exec_time
            ref_time.setdefault(variant.name, exec_time)
            points.append(
                ScalePoint(
                    app=app,
                    variant=variant.name,
                    mode=mode,
                    nprocs=nprocs,
                    exec_time=exec_time,
                    metric=ref_time[variant.name] / exec_time,
                )
            )
            cursor += 1
    return points


def render(points: List[ScalePoint]) -> str:
    if not points:
        return "(no points)"
    mode = points[0].mode
    metric_name = "efficiency" if mode == "weak" else "rel-speedup"
    variants: List[str] = []
    for point in points:
        if point.variant not in variants:
            variants.append(point.variant)
    counts = sorted({p.nprocs for p in points})
    header = f"{mode} scaling: {points[0].app} ({metric_name} vs {counts[0]}p)"
    width = max(len(metric_name), 11)
    lines = [header]
    lines.append(
        f"{'nprocs':>8}"
        + "".join(f"{v:>16} {metric_name:>{width}}" for v in variants)
    )
    for nprocs in counts:
        cells = []
        for variant in variants:
            match = next(
                p
                for p in points
                if p.nprocs == nprocs and p.variant == variant
            )
            cells.append(
                f"{match.exec_time / 1e6:>14.3f}s {match.metric:>{width}.3f}"
            )
        lines.append(f"{nprocs:>8}" + "".join(cells))
    return "\n".join(lines)


def run(
    ctx: ExperimentContext = None,
    app: str = "sor",
    mode: str = "weak",
    counts: Optional[Sequence[int]] = None,
    variants: Optional[Sequence[Variant]] = None,
    **overrides,
):
    """Run one scaling sweep and wrap it in the common result envelope.

    Extra keyword overrides (``barrier_fanin=8``, ``dir_shards=4``,
    ``node_mem_pages=...``) apply to every point — the CLI's scaling
    knobs ride through here.
    """
    from repro.harness import results

    ctx = ctx or ExperimentContext()
    counts = tuple(counts) if counts else DEFAULT_COUNTS
    points = sweep(
        ctx,
        app=app,
        mode=mode,
        counts=counts,
        variants=variants,
        overrides=overrides or None,
    )
    text = render(points)
    config = {
        "app": app,
        "mode": mode,
        "counts": sorted(set(counts)),
        "variants": sorted({p.variant for p in points}),
        "overrides": dict(overrides),
    }
    return results.build("scaling", ctx, points, text, config)
