"""The cross-era study: Cashmere vs. TreadMarks on three interconnects.

The paper's verdict — Cashmere's directory protocol beats TreadMarks by
exploiting cheap user-level remote *writes* — is a statement about one
1996 network.  This driver re-runs the Figure 5 Cashmere-vs-TreadMarks
matrix under every :mod:`repro.cluster.network` backend (the paper's
Memory Channel, a modern RDMA fabric with one-sided reads, and
commodity kernel Ethernet) and renders a per-backend speedup table plus
an advantage summary, so the repo answers the obvious follow-up with
reproducible numbers: *does the conclusion survive the network it was
built on?*

Each backend's simulated results are pinned bit-identically by
``tests/golden_cross_era_<backend>.txt`` (rendered output, diffed in
CI's backend matrix) and ``tests/golden_networks.json`` (raw exec
times/counters, replayed over the wall-clock mode matrix).  The
methodology writeup lives in EXPERIMENTS.md; the backend constants and
their sources in docs/NETWORKS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import (
    CSM_POLL,
    NETWORK_BACKENDS,
    TMK_MC_POLL,
    Variant,
)
from repro.apps import registry
from repro.harness.runner import BatchPoint, ExperimentContext, feasible_counts

#: The paper's head-to-head pair: its best Cashmere against its best
#: TreadMarks (both polling; Section 5's headline comparison).
DEFAULT_VARIANTS = (CSM_POLL, TMK_MC_POLL)

#: Processor counts for the matrix; the top of the paper's sweep is the
#: interesting regime (bandwidth pressure), the bottom sanity-checks.
DEFAULT_COUNTS = (1, 2, 4, 8, 16, 32)


@dataclass
class CrossEraCell:
    """Speedup curve of one (network, app, variant) combination."""

    network: str
    app: str
    variant: str
    points: Dict[int, float] = field(default_factory=dict)


def generate(
    ctx: ExperimentContext = None,
    apps: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[Variant]] = None,
    counts: Optional[Sequence[int]] = None,
    networks: Optional[Sequence[str]] = None,
) -> List[CrossEraCell]:
    ctx = ctx or ExperimentContext()
    apps = list(apps or registry.APP_NAMES)
    variants = list(variants or DEFAULT_VARIANTS)
    counts = list(counts or DEFAULT_COUNTS)
    networks = list(networks or NETWORK_BACKENDS)
    # One batch: each app's sequential baseline once (it never touches
    # the network), then every network x app x variant x count point,
    # with the backend riding in the per-point RunConfig overrides so
    # the result cache keys each backend's results separately.
    batch: List[BatchPoint] = [BatchPoint(app, None) for app in apps]
    cells = []
    for network in networks:
        for app in apps:
            for variant in variants:
                cell = CrossEraCell(
                    network=network, app=app, variant=variant.name
                )
                feasible = feasible_counts(counts, variant, ctx)
                batch.extend(
                    BatchPoint(
                        app,
                        variant,
                        n,
                        overrides=(("network", network),),
                    )
                    for n in feasible
                )
                cells.append((cell, feasible))
    results = ctx.run_batch(batch)
    sequential = dict(zip(apps, results[: len(apps)]))
    cursor = len(apps)
    for cell, feasible in cells:
        for nprocs in feasible:
            cell.points[nprocs] = results[cursor].speedup_over(
                sequential[cell.app].exec_time
            )
            cursor += 1
    return [cell for cell, _ in cells]


def advantage(cells: List[CrossEraCell]) -> Dict[str, Dict[str, float]]:
    """``{app: {network: csm_speedup / tmk_speedup}}`` at the largest
    processor count both systems reached.

    > 1 means the paper's conclusion (Cashmere wins) holds on that
    backend; < 1 means TreadMarks' round-trip protocol comes out ahead.
    Apps missing either system on a backend are skipped.
    """
    by_key: Dict[tuple, CrossEraCell] = {
        (c.network, c.app, c.variant): c for c in cells
    }
    ratios: Dict[str, Dict[str, float]] = {}
    for (network, app, variant), cell in sorted(by_key.items()):
        if variant != CSM_POLL.name:
            continue
        rival = by_key.get((network, app, TMK_MC_POLL.name))
        if rival is None:
            continue
        shared = sorted(set(cell.points) & set(rival.points))
        if not shared:
            continue
        at = shared[-1]
        ratios.setdefault(app, {})[network] = (
            cell.points[at] / rival.points[at]
        )
    return ratios


def render(cells: List[CrossEraCell]) -> str:
    counts = sorted({n for c in cells for n in c.points})
    networks = []
    apps = []
    for cell in cells:
        if cell.network not in networks:
            networks.append(cell.network)
        if cell.app not in apps:
            apps.append(cell.app)
    lines = []
    for network in networks:
        lines.append(f"== network: {network} ==")
        for app in apps:
            rows = [
                c for c in cells
                if c.network == network and c.app == app
            ]
            if not rows:
                continue
            lines.append(f"-- {app} --")
            lines.append(
                f"{'variant':<13}" + "".join(f"{n:>8}" for n in counts)
            )
            for cell in rows:
                body = "".join(
                    f"{cell.points[n]:>8.2f}" if n in cell.points
                    else f"{'-':>8}"
                    for n in counts
                )
                lines.append(f"{cell.variant:<13}" + body)
        lines.append("")
    ratios = advantage(cells)
    if ratios:
        lines.append(
            "== cross-era summary: csm_poll / tmk_mc_poll speedup ratio "
            "(>1 = Cashmere ahead) =="
        )
        lines.append(
            f"{'app':<10}" + "".join(f"{net:>10}" for net in networks)
        )
        for app in apps:
            per_net = ratios.get(app, {})
            lines.append(
                f"{app:<10}"
                + "".join(
                    f"{per_net[net]:>10.2f}" if net in per_net
                    else f"{'-':>10}"
                    for net in networks
                )
            )
    return "\n".join(lines)


def chart(cells: List[CrossEraCell]) -> str:
    """One speedup chart per app, overlaying every network x variant."""
    from repro.harness import plots

    apps = []
    for cell in cells:
        if cell.app not in apps:
            apps.append(cell.app)
    blocks = []
    for app in apps:
        series = {
            f"{c.variant}@{c.network}": c.points
            for c in cells
            if c.app == app and c.points
        }
        if not series:
            continue
        blocks.append(
            plots.line_chart(series, title=f"Cross-era study: {app}")
        )
    return "\n\n".join(blocks)


def run(
    ctx: ExperimentContext = None,
    apps: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[Variant]] = None,
    counts: Optional[Sequence[int]] = None,
    networks: Optional[Sequence[str]] = None,
):
    """Run the cross-era study, wrapped in the common result envelope."""
    from repro.harness import results

    ctx = ctx or ExperimentContext()
    cells = generate(
        ctx, apps=apps, variants=variants, counts=counts, networks=networks
    )
    config = {
        "apps": sorted({c.app for c in cells}),
        "variants": sorted({c.variant for c in cells}),
        "counts": sorted({n for c in cells for n in c.points}),
        "networks": sorted({c.network for c in cells}),
    }
    return results.build("cross_era", ctx, cells, render(cells), config)
