"""Persistent on-disk cache of simulation results.

Every experiment point the harness runs — a parallel protocol run or a
sequential baseline — is a pure function of its configuration: the
simulator is deterministic (see ``tests/test_parallel_harness.py``), so
``(app, params, RunConfig, code version)`` fully determines the
:class:`repro.core.RunResult`.  This module memoizes that function on
disk, so repeated CLI invocations, benchmark reruns, and CI skip
already-computed points.

Keys are SHA-256 content hashes over a canonical JSON encoding of the
full configuration — the variant, processor count, every
:class:`~repro.config.ClusterConfig` and :class:`~repro.config.CostModel`
constant, all protocol feature flags, the application parameters, and a
fingerprint of the ``repro`` source tree (so stale results can never
survive a code change).  Values are pickled ``RunResult`` objects,
written atomically.

The cache directory resolves, in order: an explicit ``cache_dir``
argument (the CLI's ``--cache-dir``), ``$REPRO_DSM_CACHE``,
``$XDG_CACHE_HOME/repro-dsm``, then ``~/.cache/repro-dsm``.

Entries live in two-hex-char fingerprint-prefix subdirectories
(``ab/abcdef....pkl``), so a hot cache with tens of thousands of points
never turns a lookup into a linear scan of one huge directory.  Caches
written by the original flat layout (``abcdef....pkl`` directly in the
cache root) keep working: a sharded miss falls back to the flat path
and, on a hit, migrates the entry into its shard subdirectory — see
:meth:`ResultCache.get`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.config import RunConfig

#: Bump to invalidate every existing cache entry (result shape change).
CACHE_SCHEMA = 4  # 4: sharing-policy knobs (granularity/prefetch/homing) entered the run key

_ENV_VAR = "REPRO_DSM_CACHE"

_source_fingerprint: Optional[str] = None


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro-dsm"
    return Path.home() / ".cache" / "repro-dsm"


def source_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Computed once per process; any code change yields new cache keys, so
    results produced by older code are never served.
    """
    global _source_fingerprint
    if _source_fingerprint is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).parent
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _source_fingerprint = digest.hexdigest()
    return _source_fingerprint


def _canonical(value: Any) -> Any:
    """Reduce a config value to canonically-serializable JSON."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)  # NumPy scalars
    if callable(item):
        return item()
    return repr(value)


def run_key(
    app: str,
    params: Dict[str, Any],
    run_cfg: RunConfig,
) -> str:
    """Cache key for one parallel protocol run."""
    cfg = run_cfg
    payload = {
        "kind": "run",
        "app": app,
        "params": _canonical(params),
        "variant": cfg.variant.name,
        "system": cfg.variant.system.value,
        "mechanism": cfg.variant.mechanism.value,
        "transport": cfg.variant.transport.value,
        "nprocs": cfg.nprocs,
        "cluster": _canonical(asdict(cfg.cluster)),
        "costs": _canonical(asdict(cfg.costs)),
        "flags": {
            "network": cfg.network,
            "first_touch_homes": cfg.first_touch_homes,
            "exclusive_mode": cfg.exclusive_mode,
            "write_double_dummy": cfg.write_double_dummy,
            "remote_reads": cfg.remote_reads,
            "weak_state": cfg.weak_state,
            "warm_start": cfg.warm_start,
            "trace": cfg.trace,
            # Scaling knobs (PR 7): keyed by their *resolved* values so
            # an explicit setting and the automatic policy that picks
            # the same value share an entry, while policy changes (or
            # crossing the 32-processor threshold) never serve stale
            # results.
            "barrier_fanin": cfg.resolved_barrier_fanin,
            "hierarchical_barriers": cfg.hierarchical_barriers,
            "lrc_barrier_group": cfg.lrc_barrier_group,
            "dir_shards": cfg.resolved_dir_shards,
            "node_mem_pages": cfg.node_mem_pages,
            # Sharing-policy knobs (PR 10): granularity by resolved unit
            # bytes (``page`` and an explicit unit of the same size
            # share an entry), homing with the legacy first-touch
            # ablation flag folded in.
            "granularity": cfg.resolved_unit_bytes,
            "prefetch": cfg.prefetch,
            "homing": cfg.resolved_homing,
        },
    }
    return _digest(payload)


def sequential_key(
    app: str,
    params: Dict[str, Any],
    page_size: int,
    costs,
) -> str:
    """Cache key for one sequential (unlinked) baseline run."""
    payload = {
        "kind": "sequential",
        "app": app,
        "params": _canonical(params),
        "page_size": page_size,
        "costs": _canonical(asdict(costs)),
    }
    return _digest(payload)


def _digest(payload: Dict[str, Any]) -> str:
    payload["schema"] = CACHE_SCHEMA
    payload["code"] = source_fingerprint()
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


def key_for_spec(spec) -> str:
    """The cache key for one :class:`~repro.harness.parallel.PointSpec`.

    The single key derivation shared by the harness
    (:class:`~repro.harness.runner.ExperimentContext`), the serving
    layer (``repro.serving``), and the serving-aware
    ``repro.api.run_point`` — one spec, one fingerprint, everywhere.
    """
    if spec.is_sequential:
        return sequential_key(
            spec.app, spec.params, spec.cluster.page_size, spec.costs
        )
    return run_key(spec.app, spec.params, spec.run_config())


@dataclass
class CacheStats:
    """Hit/miss accounting for one harness or serving invocation.

    ``coalesced`` counts requests that never touched the disk at all:
    the serving layer's singleflight folded them onto an identical
    in-flight computation (``repro.serving``).  ``migrated`` counts
    legacy flat-layout entries moved into their shard subdirectory on
    first hit.  ``evictions`` counts entries removed to keep a bounded
    cache (``max_bytes`` / ``max_entries``) within its limits —
    whether by :meth:`ResultCache.put` making room or by an explicit
    :meth:`ResultCache.prune` (the serving layer's background sweep).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    coalesced: int = 0
    migrated: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for result envelopes and JSON payloads."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "coalesced": self.coalesced,
            "migrated": self.migrated,
            "evictions": self.evictions,
        }

    def __str__(self) -> str:
        text = f"{self.hits} hit(s), {self.misses} miss(es)"
        if self.coalesced:
            text += f", {self.coalesced} coalesced"
        return text


@dataclass
class ResultCache:
    """Pickled :class:`repro.core.RunResult` objects, one file per key.

    ``refresh=True`` turns every lookup into a miss (results are still
    stored), recomputing and overwriting existing entries — the CLI's
    ``--refresh`` escape hatch.

    ``max_bytes`` / ``max_entries`` (0 = unbounded, the default) bound
    the cache: :meth:`put` makes room *before* installing a new entry,
    evicting least-recently-used entries first, so the configured bound
    is never exceeded — not even transiently.  Recency is tracked in
    memory (seeded from file access times on first use, refreshed by
    every :meth:`get` hit, which also touches the file's ``atime`` so
    recency survives across processes).  :meth:`prune` enforces bounds
    on demand — the serving layer's background sweep hook — and
    :meth:`clear` empties the cache.  All evictions are counted in
    ``stats.evictions``.
    """

    cache_dir: Optional[Path] = None
    refresh: bool = False
    stats: CacheStats = field(default_factory=CacheStats)
    max_bytes: int = 0
    max_entries: int = 0

    def __post_init__(self) -> None:
        if self.cache_dir is None:
            self.cache_dir = default_cache_dir()
        self.cache_dir = Path(self.cache_dir)
        self.max_bytes = int(self.max_bytes or 0)
        self.max_entries = int(self.max_entries or 0)
        # LRU index: key -> entry size, oldest first.  Built lazily by
        # _index() on the first operation that needs it.
        self._lru: Optional[Dict[str, int]] = None
        self._lru_bytes = 0

    @property
    def bounded(self) -> bool:
        return bool(self.max_bytes or self.max_entries)

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key[:2]}" / f"{key}.pkl"

    def _legacy_path(self, key: str) -> Path:
        # The pre-sharding flat layout: every entry directly in the
        # cache root.  Read-and-migrate only; never written to.
        return self.cache_dir / f"{key}.pkl"

    def _load(self, path: Path):
        """Unpickle ``path``; None when missing, corrupt, or stale."""
        try:
            with open(path, "rb") as stream:
                return pickle.load(stream)
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupt or unreadable entry (interrupted write, version
            # skew): drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def get(self, key: str):
        """The cached result for ``key``, or None on a miss.

        Looks in the sharded layout first, then falls back to the
        legacy flat layout; a flat hit migrates the entry into its
        shard subdirectory so the fallback is paid at most once per
        entry.  On a bounded cache every hit refreshes the entry's
        recency (in memory and, best-effort, the file's ``atime``) so
        LRU eviction spares the hot set.
        """
        if self.refresh:
            self.stats.misses += 1
            return None
        result = self._load(self._path(key))
        if result is None:
            legacy = self._legacy_path(key)
            result = self._load(legacy)
            if result is None:
                self.stats.misses += 1
                return None
            self._migrate(key, legacy)
        self.stats.hits += 1
        if self.bounded:
            self._touch(key)
        return result

    def _migrate(self, key: str, legacy: Path) -> None:
        """Move a flat-layout entry into its shard subdirectory."""
        target = self._path(key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, target)
        except OSError:
            return  # read-only cache dir: keep serving from the flat file
        self.stats.migrated += 1

    def put(self, key: str, result) -> None:
        """Store ``result`` under ``key`` (atomic rename).

        On a bounded cache, room is made *before* the rename installs
        the entry (LRU evictions first), so the byte/entry bound holds
        at every instant — a stats scrape mid-load never observes an
        over-budget cache.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as stream:
                pickle.dump(result, stream, protocol=pickle.HIGHEST_PROTOCOL)
            size = os.stat(tmp).st_size
            if self.bounded:
                self._make_room(size, exclude=key)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        if self.bounded:
            index = self._index()
            self._lru_bytes += size - index.pop(key, 0)
            index[key] = size  # newest position

    # -- bounds: LRU index, eviction, pruning --------------------------

    def _index(self) -> Dict[str, int]:
        """The in-memory LRU index (key -> bytes), oldest first.

        Built on first use from one directory scan, ordered by file
        access time so recency carries over from previous processes;
        after that, :meth:`get`/:meth:`put` maintain it incrementally.
        """
        if self._lru is None:
            found = []
            try:
                children = list(self.cache_dir.iterdir())
            except OSError:
                children = []
            for child in children:
                entries = []
                if child.is_dir() and len(child.name) == 2:
                    # pathlib's glob matches dotfiles, so in-flight
                    # ``.tmp-*.pkl`` writes must be filtered or they
                    # count as phantom entries mid-put.
                    entries = [
                        e
                        for e in child.glob("*.pkl")
                        if not e.name.startswith(".")
                    ]
                elif (
                    child.suffix == ".pkl"
                    and not child.name.startswith(".")
                ):
                    entries = [child]
                for entry in entries:
                    try:
                        stat = entry.stat()
                    except OSError:
                        continue
                    found.append(
                        (max(stat.st_atime, stat.st_mtime),
                         entry.stem, stat.st_size)
                    )
            found.sort()
            self._lru = {key: size for _, key, size in found}
            self._lru_bytes = sum(self._lru.values())
        return self._lru

    def _touch(self, key: str) -> None:
        """Move ``key`` to the most-recent end of the LRU index."""
        index = self._index()
        size = index.pop(key, None)
        if size is None:
            return
        index[key] = size
        try:
            os.utime(self._path(key))
        except OSError:
            pass

    def _make_room(self, incoming: int, exclude: str = "") -> None:
        """Evict LRU entries until ``incoming`` bytes fit the bounds.

        ``exclude`` is the key about to be written: never evicted here
        (its old copy is being replaced), and its current size is
        discounted when projecting the post-write totals.
        """
        index = self._index()
        while True:
            replaced = index.get(exclude, 0)
            entries_after = len(index) + (0 if exclude in index else 1)
            bytes_after = self._lru_bytes - replaced + incoming
            over = (
                self.max_entries and entries_after > self.max_entries
            ) or (self.max_bytes and bytes_after > self.max_bytes)
            if not over:
                return
            victim = next((k for k in index if k != exclude), None)
            if victim is None:
                return
            self._evict(victim)

    def _evict(self, key: str) -> None:
        index = self._index()
        size = index.pop(key, 0)
        self._lru_bytes -= size
        for path in (self._path(key), self._legacy_path(key)):
            try:
                path.unlink()
            except OSError:
                continue
        self.stats.evictions += 1

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
    ) -> Dict[str, int]:
        """Enforce the byte/entry bounds now; returns an eviction report.

        ``max_bytes`` / ``max_entries`` override the configured bounds
        for this call (0 = unbounded; ``max_entries=0`` with
        ``max_bytes=0`` therefore evicts nothing).  This is the
        serving layer's background sweep hook and the engine behind
        ``repro-dsm cache prune`` / :func:`repro.api.cache_prune`.
        """
        bytes_bound = self.max_bytes if max_bytes is None else max_bytes
        entry_bound = (
            self.max_entries if max_entries is None else max_entries
        )
        index = self._index()
        before_evictions = self.stats.evictions
        before_bytes = self._lru_bytes
        while index and (
            (entry_bound and len(index) > entry_bound)
            or (bytes_bound and self._lru_bytes > bytes_bound)
        ):
            self._evict(next(iter(index)))
        return {
            "evicted": self.stats.evictions - before_evictions,
            "reclaimed_bytes": before_bytes - self._lru_bytes,
            "entries": len(index),
            "bytes": self._lru_bytes,
        }

    def clear(self) -> Dict[str, int]:
        """Delete every entry; returns the same report as :meth:`prune`."""
        index = self._index()
        before = len(index)
        before_bytes = self._lru_bytes
        while index:
            self._evict(next(iter(index)))
        return {
            "evicted": before,
            "reclaimed_bytes": before_bytes,
            "entries": 0,
            "bytes": 0,
        }

    def summary(self) -> Dict[str, Any]:
        """One scan of the cache directory: entry and shard counts.

        Powering the serving layer's ``GET /v1/stats`` endpoint and the
        ``repro-dsm serve`` startup banner; ``legacy_entries`` > 0
        means flat-layout files are still awaiting their
        migrate-on-first-hit move.
        """
        entries = 0
        shards = 0
        legacy = 0
        total_bytes = 0
        try:
            children = list(self.cache_dir.iterdir())
        except OSError:
            children = []
        for child in children:
            if child.is_dir() and len(child.name) == 2:
                shard_entries = [
                    e
                    for e in child.glob("*.pkl")
                    if not e.name.startswith(".")
                ]
                if shard_entries:
                    shards += 1
                    entries += len(shard_entries)
                    total_bytes += sum(
                        p.stat().st_size for p in shard_entries
                    )
            elif child.suffix == ".pkl" and not child.name.startswith("."):
                legacy += 1
                entries += 1
                total_bytes += child.stat().st_size
        return {
            "cache_dir": str(self.cache_dir),
            "entries": entries,
            "shards": shards,
            "legacy_entries": legacy,
            "bytes": total_bytes,
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
        }
