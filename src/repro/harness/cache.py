"""Persistent on-disk cache of simulation results.

Every experiment point the harness runs — a parallel protocol run or a
sequential baseline — is a pure function of its configuration: the
simulator is deterministic (see ``tests/test_parallel_harness.py``), so
``(app, params, RunConfig, code version)`` fully determines the
:class:`repro.core.RunResult`.  This module memoizes that function on
disk, so repeated CLI invocations, benchmark reruns, and CI skip
already-computed points.

Keys are SHA-256 content hashes over a canonical JSON encoding of the
full configuration — the variant, processor count, every
:class:`~repro.config.ClusterConfig` and :class:`~repro.config.CostModel`
constant, all protocol feature flags, the application parameters, and a
fingerprint of the ``repro`` source tree (so stale results can never
survive a code change).  Values are pickled ``RunResult`` objects,
written atomically.

The cache directory resolves, in order: an explicit ``cache_dir``
argument (the CLI's ``--cache-dir``), ``$REPRO_DSM_CACHE``,
``$XDG_CACHE_HOME/repro-dsm``, then ``~/.cache/repro-dsm``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.config import RunConfig

#: Bump to invalidate every existing cache entry (result shape change).
CACHE_SCHEMA = 3  # 3: scaling knobs (fan-in/shards/mem) entered the run key

_ENV_VAR = "REPRO_DSM_CACHE"

_source_fingerprint: Optional[str] = None


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro-dsm"
    return Path.home() / ".cache" / "repro-dsm"


def source_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Computed once per process; any code change yields new cache keys, so
    results produced by older code are never served.
    """
    global _source_fingerprint
    if _source_fingerprint is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).parent
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _source_fingerprint = digest.hexdigest()
    return _source_fingerprint


def _canonical(value: Any) -> Any:
    """Reduce a config value to canonically-serializable JSON."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)  # NumPy scalars
    if callable(item):
        return item()
    return repr(value)


def run_key(
    app: str,
    params: Dict[str, Any],
    run_cfg: RunConfig,
) -> str:
    """Cache key for one parallel protocol run."""
    cfg = run_cfg
    payload = {
        "kind": "run",
        "app": app,
        "params": _canonical(params),
        "variant": cfg.variant.name,
        "system": cfg.variant.system.value,
        "mechanism": cfg.variant.mechanism.value,
        "transport": cfg.variant.transport.value,
        "nprocs": cfg.nprocs,
        "cluster": _canonical(asdict(cfg.cluster)),
        "costs": _canonical(asdict(cfg.costs)),
        "flags": {
            "network": cfg.network,
            "first_touch_homes": cfg.first_touch_homes,
            "exclusive_mode": cfg.exclusive_mode,
            "write_double_dummy": cfg.write_double_dummy,
            "remote_reads": cfg.remote_reads,
            "weak_state": cfg.weak_state,
            "warm_start": cfg.warm_start,
            "trace": cfg.trace,
            # Scaling knobs (PR 7): keyed by their *resolved* values so
            # an explicit setting and the automatic policy that picks
            # the same value share an entry, while policy changes (or
            # crossing the 32-processor threshold) never serve stale
            # results.
            "barrier_fanin": cfg.resolved_barrier_fanin,
            "hierarchical_barriers": cfg.hierarchical_barriers,
            "lrc_barrier_group": cfg.lrc_barrier_group,
            "dir_shards": cfg.resolved_dir_shards,
            "node_mem_pages": cfg.node_mem_pages,
        },
    }
    return _digest(payload)


def sequential_key(
    app: str,
    params: Dict[str, Any],
    page_size: int,
    costs,
) -> str:
    """Cache key for one sequential (unlinked) baseline run."""
    payload = {
        "kind": "sequential",
        "app": app,
        "params": _canonical(params),
        "page_size": page_size,
        "costs": _canonical(asdict(costs)),
    }
    return _digest(payload)


def _digest(payload: Dict[str, Any]) -> str:
    payload["schema"] = CACHE_SCHEMA
    payload["code"] = source_fingerprint()
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one harness invocation."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def __str__(self) -> str:
        return f"{self.hits} hit(s), {self.misses} miss(es)"


@dataclass
class ResultCache:
    """Pickled :class:`repro.core.RunResult` objects, one file per key.

    ``refresh=True`` turns every lookup into a miss (results are still
    stored), recomputing and overwriting existing entries — the CLI's
    ``--refresh`` escape hatch.
    """

    cache_dir: Optional[Path] = None
    refresh: bool = False
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.cache_dir is None:
            self.cache_dir = default_cache_dir()
        self.cache_dir = Path(self.cache_dir)

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key[:2]}" / f"{key}.pkl"

    def get(self, key: str):
        """The cached result for ``key``, or None on a miss."""
        if self.refresh:
            self.stats.misses += 1
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as stream:
                result = pickle.load(stream)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Corrupt or unreadable entry (interrupted write, version
            # skew): drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result) -> None:
        """Store ``result`` under ``key`` (atomic rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as stream:
                pickle.dump(result, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
