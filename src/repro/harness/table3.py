"""Table 3: detailed statistics for the polling protocol variants.

"Table 3 presents detailed statistics on the communication incurred by
each of the applications on the polling implementations of Cashmere and
TreadMarks at 32 processors, except for Barnes, where the statistics
presented are for 16 processors."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import CSM_POLL, TMK_MC_POLL
from repro.apps import registry
from repro.harness.runner import BatchPoint, ExperimentContext

DEFAULT_PROCS = 32
BARNES_PROCS = 16  # "performance for Barnes drops significantly past 16"


@dataclass
class Table3Cell:
    """One application's statistics under one system."""

    app: str
    system: str
    nprocs: int
    exec_seconds: float
    barriers: int
    locks: int
    read_faults: int
    write_faults: int
    page_transfers: Optional[int] = None  # Cashmere only
    messages: Optional[int] = None  # TreadMarks only
    data_kbytes: Optional[float] = None  # TreadMarks only


def procs_for(app: str, default: int = DEFAULT_PROCS) -> int:
    return BARNES_PROCS if app == "barnes" else default


def generate(
    ctx: ExperimentContext = None,
    apps: Optional[List[str]] = None,
    nprocs: Optional[int] = None,
) -> List[Table3Cell]:
    ctx = ctx or ExperimentContext()
    apps = apps or list(registry.APP_NAMES)
    batch = [
        BatchPoint(app, variant, nprocs or procs_for(app))
        for app in apps
        for variant in (CSM_POLL, TMK_MC_POLL)
    ]
    results = iter(ctx.run_batch(batch))
    cells = []
    for app in apps:
        n = nprocs or procs_for(app)
        for variant in (CSM_POLL, TMK_MC_POLL):
            result = next(results)
            agg = result.stats.aggregate_counters()
            cell = Table3Cell(
                app=app,
                system="CSM" if variant is CSM_POLL else "TMK",
                nprocs=n,
                exec_seconds=result.exec_time / 1e6,
                barriers=agg["barriers"],
                locks=agg["locks"],
                read_faults=agg["read_faults"],
                write_faults=agg["write_faults"],
            )
            if variant is CSM_POLL:
                cell.page_transfers = agg["page_transfers"]
            else:
                cell.messages = agg["messages"]
                cell.data_kbytes = agg["data_bytes"] / 1024.0
            cells.append(cell)
    return cells


def run(
    ctx: ExperimentContext = None,
    apps: Optional[List[str]] = None,
    nprocs: Optional[int] = None,
):
    """Generate Table 3 and wrap it in the common result envelope."""
    from repro.harness import results

    ctx = ctx or ExperimentContext()
    cells = generate(ctx, apps=apps, nprocs=nprocs)
    config = {
        "apps": sorted({c.app for c in cells}),
        "nprocs": nprocs,
    }
    return results.build("table3", ctx, cells, render(cells), config)


def render(cells: List[Table3Cell]) -> str:
    apps = []
    for cell in cells:
        if cell.app not in apps:
            apps.append(cell.app)
    lines = [f"{'Statistic':<22}" + "".join(f"{a:>10}" for a in apps)]

    def row(label: str, system: str, getter, fmt: str = ",.0f") -> str:
        values = []
        for app in apps:
            cell = next(
                c for c in cells if c.app == app and c.system == system
            )
            value = getter(cell)
            values.append("-" if value is None else format(value, fmt))
        return f"{label:<22}" + "".join(f"{v:>10}" for v in values)

    lines.append("--- Cashmere (csm_poll) ---")
    lines.append(row("Exec. time (s)", "CSM", lambda c: c.exec_seconds, ".2f"))
    lines.append(row("Barriers", "CSM", lambda c: c.barriers))
    lines.append(row("Locks", "CSM", lambda c: c.locks))
    lines.append(row("Read faults", "CSM", lambda c: c.read_faults))
    lines.append(row("Write faults", "CSM", lambda c: c.write_faults))
    lines.append(row("Page transfers", "CSM", lambda c: c.page_transfers))
    lines.append("--- TreadMarks (tmk_mc_poll) ---")
    lines.append(row("Exec. time (s)", "TMK", lambda c: c.exec_seconds, ".2f"))
    lines.append(row("Barriers", "TMK", lambda c: c.barriers))
    lines.append(row("Locks", "TMK", lambda c: c.locks))
    lines.append(row("Read faults", "TMK", lambda c: c.read_faults))
    lines.append(row("Write faults", "TMK", lambda c: c.write_faults))
    lines.append(row("Messages", "TMK", lambda c: c.messages))
    lines.append(row("Data (KB)", "TMK", lambda c: c.data_kbytes))
    return "\n".join(lines)
