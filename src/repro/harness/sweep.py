"""Network-sensitivity sweeps.

The paper attributes the narrow Cashmere/TreadMarks gap to "three
principal factors": modest cross-sectional bandwidth, the lack of remote
reads, and small first-level caches.  These sweeps vary the modelled
network (bandwidth, latency) and report how each system's speedup
responds — quantifying the paper's claim that finer-grain DSM "is in a
position to make excellent use" of better hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.config import CSM_POLL, TMK_MC_POLL, CostModel, Variant
from repro.harness.runner import ExperimentContext


@dataclass
class SweepPoint:
    """One (knob value, variant) measurement."""

    knob: str
    value: float
    variant: str
    speedup: float


def _context_with(base: ExperimentContext, costs: CostModel):
    return ExperimentContext(
        scale=base.scale,
        cluster=base.cluster,
        costs=costs,
        warm_start=base.warm_start,
    )


def sweep_bandwidth(
    ctx: ExperimentContext,
    app: str = "sor",
    nprocs: int = 16,
    multipliers: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 10.0),
    variants: Optional[Sequence[Variant]] = None,
) -> List[SweepPoint]:
    """Scale link and aggregate bandwidth together."""
    variants = list(variants or (CSM_POLL, TMK_MC_POLL))
    points = []
    for multiplier in multipliers:
        costs = replace(
            ctx.costs,
            mc_link_bandwidth=ctx.costs.mc_link_bandwidth * multiplier,
            mc_aggregate_bandwidth=(
                ctx.costs.mc_aggregate_bandwidth * multiplier
            ),
        )
        swept = _context_with(ctx, costs)
        for variant in variants:
            seq = swept.sequential(app)
            run = swept.run(app, variant, nprocs)
            points.append(
                SweepPoint(
                    knob="bandwidth",
                    value=multiplier,
                    variant=variant.name,
                    speedup=run.speedup_over(seq.exec_time),
                )
            )
    return points


def sweep_latency(
    ctx: ExperimentContext,
    app: str = "sor",
    nprocs: int = 16,
    latencies: Sequence[float] = (2.6, 5.2, 10.4, 20.8),
    variants: Optional[Sequence[Variant]] = None,
) -> List[SweepPoint]:
    """Vary the Memory Channel remote-write latency."""
    variants = list(variants or (CSM_POLL, TMK_MC_POLL))
    points = []
    for latency in latencies:
        costs = replace(ctx.costs, mc_latency=latency)
        swept = _context_with(ctx, costs)
        for variant in variants:
            seq = swept.sequential(app)
            run = swept.run(app, variant, nprocs)
            points.append(
                SweepPoint(
                    knob="latency",
                    value=latency,
                    variant=variant.name,
                    speedup=run.speedup_over(seq.exec_time),
                )
            )
    return points


def gains(points: List[SweepPoint]) -> Dict[str, float]:
    """Best-over-worst speedup ratio per variant across the sweep."""
    by_variant: Dict[str, List[float]] = {}
    for point in points:
        by_variant.setdefault(point.variant, []).append(point.speedup)
    return {
        name: max(values) / min(values)
        for name, values in by_variant.items()
    }


def render(points: List[SweepPoint]) -> str:
    knob = points[0].knob if points else "knob"
    variants = []
    for point in points:
        if point.variant not in variants:
            variants.append(point.variant)
    values = sorted({p.value for p in points})
    lines = [f"{knob:>12}" + "".join(f"{v:>13}" for v in variants)]
    for value in values:
        cells = []
        for variant in variants:
            match = next(
                p
                for p in points
                if p.value == value and p.variant == variant
            )
            cells.append(f"{match.speedup:>13.2f}")
        lines.append(f"{value:>12.1f}" + "".join(cells))
    return "\n".join(lines)
