"""Network-sensitivity sweeps.

The paper attributes the narrow Cashmere/TreadMarks gap to "three
principal factors": modest cross-sectional bandwidth, the lack of remote
reads, and small first-level caches.  These sweeps vary the modelled
network (bandwidth, latency) and report how each system's speedup
responds — quantifying the paper's claim that finer-grain DSM "is in a
position to make excellent use" of better hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.config import CSM_POLL, TMK_MC_POLL, CostModel, Variant
from repro.harness.runner import BatchPoint, ExperimentContext


@dataclass
class SweepPoint:
    """One (knob value, variant) measurement."""

    knob: str
    value: float
    variant: str
    speedup: float


def _app_costs(ctx: ExperimentContext, app: str, swept: CostModel) -> CostModel:
    """Apply the app's scaled-cache overrides on top of swept costs
    (mirrors ``ExperimentContext.costs_for`` under a swept model)."""
    overrides = getattr(ctx.app(app), "cost_overrides", None)
    if overrides is None:
        return swept
    return replace(swept, **overrides(ctx.params(app)))


def _sweep(
    ctx: ExperimentContext,
    app: str,
    nprocs: int,
    knob: str,
    swept_costs: Sequence,
    variants: Optional[Sequence[Variant]],
) -> List[SweepPoint]:
    """Run every (knob value, variant) point in one batch.

    The sequential baseline never touches the network, so it is
    independent of the swept knobs: one baseline run is shared by every
    swept point instead of being recomputed per knob value.
    """
    variants = list(variants or (CSM_POLL, TMK_MC_POLL))
    batch = [BatchPoint(app, None)]
    for _value, costs in swept_costs:
        batch.extend(
            BatchPoint(app, variant, nprocs, costs=_app_costs(ctx, app, costs))
            for variant in variants
        )
    results = ctx.run_batch(batch)
    seq = results[0]
    points = []
    cursor = 1
    for value, _costs in swept_costs:
        for variant in variants:
            points.append(
                SweepPoint(
                    knob=knob,
                    value=value,
                    variant=variant.name,
                    speedup=results[cursor].speedup_over(seq.exec_time),
                )
            )
            cursor += 1
    return points


def sweep_bandwidth(
    ctx: ExperimentContext,
    app: str = "sor",
    nprocs: int = 16,
    multipliers: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 10.0),
    variants: Optional[Sequence[Variant]] = None,
) -> List[SweepPoint]:
    """Scale link and aggregate bandwidth together."""
    swept = [
        (
            multiplier,
            replace(
                ctx.costs,
                mc_link_bandwidth=ctx.costs.mc_link_bandwidth * multiplier,
                mc_aggregate_bandwidth=(
                    ctx.costs.mc_aggregate_bandwidth * multiplier
                ),
            ),
        )
        for multiplier in multipliers
    ]
    return _sweep(ctx, app, nprocs, "bandwidth", swept, variants)


def sweep_latency(
    ctx: ExperimentContext,
    app: str = "sor",
    nprocs: int = 16,
    latencies: Sequence[float] = (2.6, 5.2, 10.4, 20.8),
    variants: Optional[Sequence[Variant]] = None,
) -> List[SweepPoint]:
    """Vary the Memory Channel remote-write latency."""
    swept = [
        (latency, replace(ctx.costs, mc_latency=latency))
        for latency in latencies
    ]
    return _sweep(ctx, app, nprocs, "latency", swept, variants)


def run(
    ctx: ExperimentContext = None,
    knob: str = "bandwidth",
    app: str = "sor",
    nprocs: int = 16,
    variants: Optional[Sequence[Variant]] = None,
):
    """Run one sweep and wrap it in the common result envelope.

    The rendered text includes the per-variant gains line the CLI
    prints, so ``DriverResult.text`` is the complete report.
    """
    from repro.harness import results

    ctx = ctx or ExperimentContext()
    if knob == "bandwidth":
        points = sweep_bandwidth(ctx, app=app, nprocs=nprocs, variants=variants)
    elif knob == "latency":
        points = sweep_latency(ctx, app=app, nprocs=nprocs, variants=variants)
    else:
        raise ValueError(f"unknown sweep knob {knob!r}")
    text = render(points) + f"\ngains: {gains(points)}"
    config = {"knob": knob, "app": app, "nprocs": nprocs}
    return results.build("sweep", ctx, points, text, config)


def gains(points: List[SweepPoint]) -> Dict[str, float]:
    """Best-over-worst speedup ratio per variant across the sweep."""
    by_variant: Dict[str, List[float]] = {}
    for point in points:
        by_variant.setdefault(point.variant, []).append(point.speedup)
    return {
        name: max(values) / min(values)
        for name, values in by_variant.items()
    }


def render(points: List[SweepPoint]) -> str:
    knob = points[0].knob if points else "knob"
    variants = []
    for point in points:
        if point.variant not in variants:
            variants.append(point.variant)
    values = sorted({p.value for p in points})
    lines = [f"{knob:>12}" + "".join(f"{v:>13}" for v in variants)]
    for value in values:
        cells = []
        for variant in variants:
            match = next(
                p
                for p in points
                if p.value == value and p.variant == variant
            )
            cells.append(f"{match.speedup:>13.2f}")
        lines.append(f"{value:>12.1f}" + "".join(cells))
    return "\n".join(lines)
