"""Command-line interface: regenerate any table or figure of the paper.

Examples::

    repro-dsm table1
    repro-dsm table2 --scale large
    repro-dsm table3 --apps sor lu --procs 16
    repro-dsm figure5 --apps sor --variants csm_poll tmk_mc_poll
    repro-dsm figure6 --warm-start
    repro-dsm trace sor --variants csm_poll tmk_mc_poll --trace-out out.jsonl
    repro-dsm run sor --variant csm_poll --trace-out sor.json --trace-format chrome

The full subcommand reference lives in README.md; the trace file
formats and event catalog in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro import api
from repro.config import (
    ALL_VARIANTS,
    EXTENSION_VARIANTS,
    NETWORK_BACKENDS,
    variant_by_name,
)
from repro.apps import registry
from repro.harness import figure5
from repro.memory.policy import GRANULARITIES, HOMINGS, PREFETCHES
from repro.harness.cache import ResultCache
from repro.harness.runner import ExperimentContext
from repro.options import SimOptions
from repro.stats.export import EXPORT_FORMATS, export_runs
from repro.stats.trace import diff_traces


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="small",
        choices=("tiny", "small", "large", "xlarge", "paper"),
        help=(
            "problem-size tier (see each app's default_params); "
            "'paper' is an alias for xlarge, the paper's full-size "
            "inputs — overnight territory, see EXPERIMENTS.md"
        ),
    )
    parser.add_argument(
        "--cold-start",
        action="store_true",
        help=(
            "include cold data distribution in the timed run (the "
            "default pre-validates copies, matching the paper's "
            "amortisation; see DESIGN.md)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help=(
            "record protocol events for every run of this command and "
            "export them to PATH (see docs/OBSERVABILITY.md)"
        ),
    )
    parser.add_argument(
        "--trace-format",
        choices=EXPORT_FORMATS,
        default=None,
        help=(
            "trace export format: jsonl (lossless, default) or chrome "
            "(Perfetto / chrome://tracing)"
        ),
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run independent simulation points on N worker processes "
            "(results are bit-identical to --jobs 1)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "result-cache directory (default: $REPRO_DSM_CACHE, then "
            "~/.cache/repro-dsm)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every point and overwrite any cached results",
    )
    parser.add_argument(
        "--no-fastpath",
        action="store_true",
        help=(
            "disable the vectorized shared-access fast path (restores "
            "the per-page generator loop; bit-identical results, "
            "replaces $REPRO_DSM_NO_FASTPATH)"
        ),
    )
    parser.add_argument(
        "--debug-checks",
        action="store_true",
        help=(
            "re-verify permission-bitmap coherence at every barrier "
            "(replaces $REPRO_DSM_DEBUG)"
        ),
    )
    parser.add_argument(
        "--no-calqueue",
        action="store_true",
        help=(
            "use the plain binary-heap event scheduler instead of the "
            "calendar queue (bit-identical results, replaces "
            "$REPRO_DSM_NO_CALQUEUE)"
        ),
    )
    parser.add_argument(
        "--no-shard",
        action="store_true",
        help=(
            "use the flat calendar queue instead of the sharded event "
            "scheduler (bit-identical results, replaces "
            "$REPRO_DSM_NO_SHARD; the A/B hatch for large-P wall-clock)"
        ),
    )
    parser.add_argument(
        "--no-kernels",
        action="store_true",
        help=(
            "run the per-element scalar reference loops instead of the "
            "vectorized app kernels (bit-identical results, replaces "
            "$REPRO_DSM_NO_KERNELS)"
        ),
    )
    parser.add_argument(
        "--network",
        default=None,
        choices=NETWORK_BACKENDS,
        help=(
            "interconnect backend: memch (paper's Memory Channel, "
            "default), rdma (modern one-sided reads+writes), or "
            "ethernet (kernel TCP) — CHANGES simulated results; see "
            "docs/NETWORKS.md"
        ),
    )
    parser.add_argument(
        "--granularity",
        default=None,
        choices=GRANULARITIES,
        help=(
            "coherence-unit size: sub-page blocks (block256/1k/2k), "
            "the VM page (default), or multi-page regions "
            "(region2/region4) — CHANGES simulated results; see "
            "docs/POLICIES.md"
        ),
    )
    parser.add_argument(
        "--prefetch",
        default=None,
        choices=PREFETCHES,
        help=(
            "software prefetch policy: none (demand faults only, "
            "default), seq (next-unit run-ahead), or stride "
            "(confirmed-stride run-ahead) — CHANGES simulated results; "
            "see docs/POLICIES.md"
        ),
    )
    parser.add_argument(
        "--homing",
        default=None,
        choices=HOMINGS,
        help=(
            "home-assignment policy: first-touch (the paper's, "
            "default), round-robin, or dynamic (re-home to the "
            "dominant remote fetcher) — CHANGES simulated results; see "
            "docs/POLICIES.md"
        ),
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help=(
            "profile this invocation with cProfile and dump the stats "
            "to FILE (inspect with 'python -m pstats FILE'); use "
            "--jobs 1, worker processes are not profiled"
        ),
    )


def _context(args: argparse.Namespace) -> ExperimentContext:
    cache = None
    if not args.no_cache:
        cache = ResultCache(
            cache_dir=Path(args.cache_dir) if args.cache_dir else None,
            refresh=args.refresh,
        )
    options = SimOptions.from_flags(
        no_fastpath=args.no_fastpath,
        debug_checks=args.debug_checks,
        no_calqueue=args.no_calqueue,
        no_kernels=args.no_kernels,
        no_shard=args.no_shard,
        network=args.network,
        granularity=args.granularity,
        prefetch=args.prefetch,
        homing=args.homing,
    ).apply()
    return ExperimentContext(
        scale=args.scale,
        warm_start=not args.cold_start,
        trace=args.trace_out is not None,
        jobs=args.jobs,
        cache=cache,
        options=options,
    )


def _parse_variants(names: Optional[List[str]]):
    if not names:
        return None
    return [variant_by_name(name) for name in names]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dsm",
        description=(
            "Regenerate the tables and figures of 'VM-Based Shared Memory "
            "on Low-Latency, Remote-Memory-Access Networks' (ISCA 1997)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="basic operation costs")
    _add_common(p1)

    p2 = sub.add_parser("table2", help="data sets and sequential times")
    _add_common(p2)

    p3 = sub.add_parser("table3", help="detailed statistics (polling)")
    _add_common(p3)
    p3.add_argument("--apps", nargs="+", choices=registry.ALL_APP_NAMES)
    p3.add_argument("--procs", type=int, help="override processor count")

    f5 = sub.add_parser("figure5", help="speedup curves")
    _add_common(f5)
    f5.add_argument("--apps", nargs="+", choices=registry.ALL_APP_NAMES)
    f5.add_argument(
        "--variants",
        nargs="+",
        choices=[v.name for v in ALL_VARIANTS + EXTENSION_VARIANTS],
    )
    f5.add_argument(
        "--counts",
        nargs="+",
        type=int,
        help="processor counts (default 1 2 4 8 16 32)",
    )
    f5.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full sweep (adds 12 and 24 processors)",
    )
    f5.add_argument(
        "--chart",
        action="store_true",
        help="render ASCII speedup charts (one per application)",
    )

    f6 = sub.add_parser("figure6", help="execution-time breakdown")
    _add_common(f6)
    f6.add_argument("--apps", nargs="+", choices=registry.ALL_APP_NAMES)
    f6.add_argument("--procs", type=int, help="override processor count")
    f6.add_argument(
        "--chart",
        action="store_true",
        help="render ASCII stacked breakdown bars",
    )

    ce = sub.add_parser(
        "cross_era",
        help="Cashmere-vs-TreadMarks matrix across network backends "
        "(memch / rdma / ethernet; see docs/NETWORKS.md)",
    )
    _add_common(ce)
    ce.add_argument("--apps", nargs="+", choices=registry.ALL_APP_NAMES)
    ce.add_argument(
        "--variants",
        nargs="+",
        choices=[v.name for v in ALL_VARIANTS + EXTENSION_VARIANTS],
        help="protocol variants (default: csm_poll tmk_mc_poll)",
    )
    ce.add_argument(
        "--counts",
        nargs="+",
        type=int,
        help="processor counts (default 1 2 4 8 16 32)",
    )
    ce.add_argument(
        "--networks",
        nargs="+",
        choices=NETWORK_BACKENDS,
        help="backends to include (default: all three)",
    )
    ce.add_argument(
        "--chart",
        action="store_true",
        help="render ASCII speedup charts (one per application, "
        "overlaying all backends)",
    )

    sc = sub.add_parser(
        "scaling",
        help="weak/strong scaling past the paper (64-1024 processors; "
        "see EXPERIMENTS.md 'Scaling past the paper')",
    )
    _add_common(sc)
    sc.add_argument(
        "--mode",
        default="weak",
        choices=("weak", "strong"),
        help="grow the problem with the machine (weak) or hold it "
        "fixed (strong)",
    )
    sc.add_argument("--app", default="sor", choices=registry.ALL_APP_NAMES)
    sc.add_argument(
        "--counts",
        nargs="+",
        type=int,
        help="processor counts (default 8 64 256; the first is the "
        "reference point)",
    )
    sc.add_argument(
        "--variants",
        nargs="+",
        choices=[v.name for v in ALL_VARIANTS + EXTENSION_VARIANTS],
        help="protocol variants (default: csm_poll tmk_mc_poll)",
    )
    sc.add_argument(
        "--fanin",
        type=int,
        default=None,
        metavar="K",
        help="tree-barrier fan-in (default: auto — binary at <=32p, "
        "4-ary past; CHANGES simulated results)",
    )
    sc.add_argument(
        "--dir-shards",
        type=int,
        default=None,
        metavar="N",
        help="Cashmere directory shards (default: auto — replicated "
        "at <=32p, one per node past; CHANGES simulated results on "
        "point-to-point fabrics)",
    )
    sc.add_argument(
        "--node-mem",
        type=int,
        default=None,
        metavar="PAGES",
        help="per-node memory-pressure limit: evict cold remote page "
        "copies past PAGES resident pages (default: unlimited; "
        "CHANGES simulated results)",
    )

    po = sub.add_parser(
        "policies",
        help="sharing-policy study: granularity x prefetch x homing "
        "A/B against the default (page, none, first-touch) triple "
        "(see docs/POLICIES.md)",
    )
    _add_common(po)
    po.add_argument(
        "--app",
        default="irreg",
        choices=registry.ALL_APP_NAMES,
        help="subject application (default: the false-sharing "
        "extension workload irreg)",
    )
    po.add_argument(
        "--variants",
        nargs="+",
        choices=[v.name for v in ALL_VARIANTS + EXTENSION_VARIANTS],
        help="protocol variants (default: csm_poll tmk_mc_poll "
        "hlrc_poll)",
    )
    po.add_argument(
        "--procs", type=int, default=8, help="processor count (default 8)"
    )

    sw = sub.add_parser("sweep", help="network-sensitivity sweeps")
    _add_common(sw)
    sw.add_argument(
        "--knob",
        default="bandwidth",
        choices=("bandwidth", "latency"),
    )
    sw.add_argument("--app", default="sor", choices=registry.ALL_APP_NAMES)
    sw.add_argument("--procs", type=int, default=16)

    tr = sub.add_parser(
        "trace",
        help="run an application under tracing and export the event "
        "timeline (JSONL or Chrome trace format)",
    )
    _add_common(tr)
    tr.add_argument("app", choices=registry.ALL_APP_NAMES)
    tr.add_argument(
        "--variants",
        nargs="+",
        default=["csm_poll"],
        choices=[v.name for v in ALL_VARIANTS + EXTENSION_VARIANTS],
        help="protocol variants to trace (two traces of the same app "
        "are aligned and diffed)",
    )
    tr.add_argument("--procs", type=int, default=8)
    tr.add_argument(
        "--format",
        choices=EXPORT_FORMATS,
        default=None,
        help="alias for --trace-format",
    )
    tr.add_argument(
        "--limit",
        type=int,
        default=0,
        help="also print the first N events of each trace",
    )

    sv = sub.add_parser(
        "serve",
        help="serve experiment points over HTTP (async front end with "
        "request coalescing, cold-point batching, and the sharded "
        "result cache; see docs/SERVING.md)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument(
        "--port",
        type=int,
        default=8377,
        help="listen port (0 picks an ephemeral port)",
    )
    sv.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=0,
        metavar="N",
        help="simulation worker processes (0 = one in-process worker "
        "thread; N>0 = persistent process pool)",
    )
    sv.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="cold-point arrival window: requests within it batch onto "
        "one pool submission round",
    )
    sv.add_argument(
        "--max-batch",
        type=int,
        default=32,
        metavar="N",
        help="flush a batch early once this many cold points pend",
    )
    sv.add_argument("--cache-dir", metavar="DIR", default=None)
    sv.add_argument("--no-cache", action="store_true")
    sv.add_argument(
        "--refresh",
        action="store_true",
        help="treat every lookup as a miss (recompute and overwrite)",
    )
    sv.add_argument(
        "--idle-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="close a keep-alive connection after S idle seconds "
        "(0 = never)",
    )
    sv.add_argument(
        "--max-requests-per-conn",
        type=int,
        default=0,
        metavar="N",
        help="close a keep-alive connection after N requests "
        "(0 = unlimited)",
    )
    sv.add_argument(
        "--max-inflight",
        type=int,
        default=0,
        metavar="N",
        help="reject point requests with 429 + Retry-After once N are "
        "in flight (0 = unbounded)",
    )
    sv.add_argument(
        "--negative-ttl",
        type=float,
        default=60.0,
        metavar="S",
        help="seconds an invalid request body stays in the negative "
        "cache",
    )
    sv.add_argument(
        "--cache-max-bytes",
        type=int,
        default=0,
        metavar="B",
        help="bound the result cache to B bytes, LRU eviction "
        "(0 = unbounded)",
    )
    sv.add_argument(
        "--cache-max-entries",
        type=int,
        default=0,
        metavar="N",
        help="bound the result cache to N entries, LRU eviction "
        "(0 = unbounded)",
    )
    sv.add_argument(
        "--cache-sweep-interval",
        type=float,
        default=0.0,
        metavar="S",
        help="background cache-bound sweep period in seconds "
        "(0 = inline eviction only)",
    )
    sv.add_argument(
        "--hot-entries",
        type=int,
        default=256,
        metavar="N",
        help="in-memory hot payload tier size (0 disables)",
    )
    sv.add_argument(
        "--max-sweep-points",
        type=int,
        default=4096,
        metavar="N",
        help="largest point count one POST /v1/sweep may expand to",
    )

    bs = sub.add_parser(
        "bench-serve",
        help="load-test the serving layer: boot a server, fire "
        "concurrent synthetic clients over a zipf point "
        "distribution, verify byte-identity vs direct api.run_point, "
        "report throughput/latency/coalesce/hit rates",
    )
    bs.add_argument("--clients", type=int, default=500)
    bs.add_argument(
        "--requests",
        type=int,
        default=2,
        metavar="N",
        help="requests issued sequentially by each client",
    )
    bs.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="server worker processes (default min(8, cores))",
    )
    bs.add_argument("--batch-window-ms", type=float, default=5.0)
    bs.add_argument(
        "--point-scale",
        default="tiny",
        choices=("tiny", "small"),
        help="problem-size tier of the served point set",
    )
    bs.add_argument("--zipf", type=float, default=1.2)
    bs.add_argument("--seed", type=int, default=1234)
    bs.add_argument(
        "--in-process",
        action="store_true",
        help="drive the service without sockets (isolates resolution "
        "cost from HTTP overhead)",
    )
    bs.add_argument(
        "--naive-requests",
        type=int,
        default=0,
        metavar="N",
        help="also time N naive one-subprocess-per-request calls and "
        "report speedup_over_naive",
    )
    bs.add_argument(
        "--assert-coalesce",
        action="store_true",
        help="exit nonzero unless coalesce rate > 0 and no request "
        "failed (the CI serve-smoke gate)",
    )
    bs.add_argument(
        "--per-request",
        action="store_true",
        help="open a fresh connection per request (the PR 8 transport) "
        "instead of the default keep-alive sessions",
    )
    bs.add_argument(
        "--compare-connections",
        action="store_true",
        help="run the identical schedule over per-request connections "
        "AND keep-alive sessions; report keepalive_speedup",
    )
    bs.add_argument(
        "--bad-every",
        type=int,
        default=0,
        metavar="N",
        help="replace every Nth request with a known-invalid body to "
        "exercise the negative cache (its 400s are not failures)",
    )
    bs.add_argument(
        "--cache-max-entries",
        type=int,
        default=0,
        metavar="N",
        help="bound the server's result cache to N entries (evictions "
        "land in the report's server.cache stats)",
    )
    bs.add_argument(
        "--cache-max-bytes",
        type=int,
        default=0,
        metavar="B",
        help="bound the server's result cache to B bytes",
    )
    bs.add_argument("--out", metavar="PATH", default=None)

    ca = sub.add_parser(
        "cache",
        help="inspect or trim the on-disk result cache "
        "(stats | prune | clear)",
    )
    ca.add_argument(
        "action",
        choices=("stats", "prune", "clear"),
        help="stats: print the cache summary as JSON (the same shape "
        "GET /v1/stats nests under 'cache'); prune: LRU-evict down to "
        "the given bounds; clear: remove every entry",
    )
    ca.add_argument("--cache-dir", metavar="DIR", default=None)
    ca.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="B",
        help="prune: byte bound to enforce (0 = unbounded)",
    )
    ca.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="prune: entry bound to enforce (0 = unbounded)",
    )

    one = sub.add_parser("run", help="one application run, in detail")
    _add_common(one)
    one.add_argument("app", choices=registry.ALL_APP_NAMES)
    one.add_argument(
        "--variant",
        default="csm_poll",
        choices=[v.name for v in ALL_VARIANTS + EXTENSION_VARIANTS],
    )
    one.add_argument("--procs", type=int, default=8)
    one.add_argument(
        "--trace",
        action="store_true",
        help="print the protocol event trace",
    )
    one.add_argument(
        "--trace-limit",
        type=int,
        default=200,
        help="maximum trace events to print",
    )

    return parser


def _run_trace(ctx: ExperimentContext, args: argparse.Namespace) -> None:
    """The ``trace`` subcommand: run, summarize, and diff traces."""
    traces = {}
    for name in args.variants:
        variant = variant_by_name(name)
        result = ctx.run(args.app, variant, args.procs, trace=True)
        traces[name] = result.trace
        counts = result.trace.counts()
        print(
            f"{args.app} under {name} on {args.procs} processors: "
            f"{len(result.trace):,} events in "
            f"{result.exec_time / 1e6:.3f} simulated seconds"
        )
        for kind in sorted(counts):
            print(f"  {kind:<20}: {counts[kind]:,}")
        if args.limit:
            print(f"\nfirst {args.limit} events of {name}:")
            print(result.trace.render(limit=args.limit))
            print()
    if len(args.variants) == 2:
        a, b = args.variants
        print(f"\n--- trace diff: {a} vs {b} ---")
        print(diff_traces(traces[a], traces[b], a, b).render())


def _run_one(ctx: ExperimentContext, args: argparse.Namespace) -> None:
    from repro.stats import Category

    variant = variant_by_name(args.variant)
    sequential = ctx.sequential(args.app)
    result = ctx.run(args.app, variant, args.procs, trace=args.trace or ctx.trace)
    speedup = result.speedup_over(sequential.exec_time)
    print(f"{args.app} on {args.procs} processors under {variant.name}")
    print(f"  sequential : {sequential.exec_time / 1e6:10.3f} s")
    print(f"  parallel   : {result.exec_time / 1e6:10.3f} s "
          f"(speedup {speedup:.2f}x)")
    fractions = result.breakdown.fractions()
    print("  breakdown  : " + "  ".join(
        f"{c.value}={fractions[c]:.1%}" for c in Category
    ))
    agg = result.stats.aggregate_counters()
    interesting = (
        "read_faults", "write_faults", "page_transfers", "page_fetches",
        "twins_created", "diffs_created", "messages", "rdma_reads",
        "data_bytes", "write_through_bytes", "gc_rounds",
        "prefetches", "home_migrations",
    )
    for name in interesting:
        if agg[name]:
            print(f"  {name:<20}: {agg[name]:,}")
    if args.trace:
        print(f"\nfirst {args.trace_limit} protocol events:")
        print(result.trace.render(limit=args.trace_limit))


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: run the HTTP server until stopped."""
    import asyncio
    import signal

    from repro.serving import ExperimentServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        refresh=args.refresh,
        idle_timeout_s=args.idle_timeout,
        max_requests_per_conn=args.max_requests_per_conn,
        max_inflight=args.max_inflight,
        negative_ttl_s=args.negative_ttl,
        cache_max_bytes=args.cache_max_bytes,
        cache_max_entries=args.cache_max_entries,
        cache_sweep_interval_s=args.cache_sweep_interval,
        hot_entries=args.hot_entries,
        max_sweep_points=args.max_sweep_points,
    )

    async def run() -> None:
        server = ExperimentServer(config=config)
        host, port = await server.start()
        workers = (
            f"{config.jobs} worker process(es)"
            if config.jobs > 0
            else "1 in-process worker thread"
        )
        banner = (
            f"[serve] listening on http://{host}:{port} "
            f"({workers}, batch window {config.batch_window_ms}ms)"
        )
        cache = server.service.cache
        if cache is not None:
            summary = cache.summary()
            banner += (
                f"\n[serve] cache {summary['cache_dir']}: "
                f"{summary['entries']} entr(ies) in "
                f"{summary['shards']} shard(s)"
            )
            if summary["legacy_entries"]:
                banner += (
                    f", {summary['legacy_entries']} legacy flat "
                    f"entr(ies) pending migrate-on-hit"
                )
        else:
            banner += "\n[serve] result cache disabled"
        print(banner, file=sys.stderr)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:
                pass
        await stop.wait()
        print("[serve] draining in-flight requests...", file=sys.stderr)
        await server.shutdown(drain=True)
        print(
            f"[serve] done: {server.service.stats.as_dict()}",
            file=sys.stderr,
        )

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _run_bench_serve(args: argparse.Namespace) -> int:
    """The ``bench-serve`` subcommand: synthetic load + verification."""
    import json

    from repro.serving.loadgen import bench_serve

    report = bench_serve(
        clients=args.clients,
        requests_per_client=args.requests,
        jobs=args.jobs,
        window_ms=args.batch_window_ms,
        scale=args.point_scale,
        zipf_s=args.zipf,
        seed=args.seed,
        naive_requests=args.naive_requests,
        http=not args.in_process,
        keepalive=not args.per_request,
        compare_connections=args.compare_connections,
        bad_every=args.bad_every,
        cache_max_entries=args.cache_max_entries,
        cache_max_bytes=args.cache_max_bytes,
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"[bench-serve] wrote {args.out}", file=sys.stderr)
    if not report["identical_results"]:
        print(
            "[bench-serve] FAIL: served results diverge from direct "
            "api.run_point",
            file=sys.stderr,
        )
        return 1
    if args.assert_coalesce:
        if report["failed_requests"]:
            print(
                f"[bench-serve] FAIL: {report['failed_requests']} "
                f"request(s) failed",
                file=sys.stderr,
            )
            return 1
        if report["coalesce_rate"] <= 0 and report["cache_hit_rate"] <= 0:
            print(
                "[bench-serve] FAIL: no request coalesced or hit the "
                "cache",
                file=sys.stderr,
            )
            return 1
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    """The ``cache`` subcommand: stats / prune / clear as JSON."""
    import json

    if args.action == "stats":
        payload = api.cache_info(cache_dir=args.cache_dir)
    elif args.action == "prune":
        payload = api.cache_prune(
            max_bytes=args.max_bytes,
            max_entries=args.max_entries,
            cache_dir=args.cache_dir,
        )
    else:  # clear
        payload = api.cache_prune(cache_dir=args.cache_dir, clear=True)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "bench-serve":
        return _run_bench_serve(args)
    if args.command == "cache":
        return _run_cache(args)
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _dispatch(args)
        finally:
            profiler.disable()
            profiler.dump_stats(args.profile)
            print(
                f"[profile: wrote {args.profile}; inspect with "
                f"'python -m pstats {args.profile}' (try "
                f"'sort cumtime' then 'stats 25')]",
                file=sys.stderr,
            )
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    ctx = _context(args)
    started = time.time()
    if args.command in api.EXPERIMENTS:
        kwargs = {}
        if args.command == "table3":
            kwargs = {"apps": args.apps, "nprocs": args.procs}
        elif args.command == "figure5":
            counts = args.counts
            if args.full:
                counts = list(figure5.full_paper_counts())
            kwargs = {
                "apps": args.apps,
                "variants": _parse_variants(args.variants),
                "counts": counts,
            }
        elif args.command == "figure6":
            kwargs = {"apps": args.apps, "nprocs": args.procs}
        elif args.command == "sweep":
            kwargs = {"knob": args.knob, "app": args.app, "nprocs": args.procs}
        elif args.command == "scaling":
            kwargs = {
                "app": args.app,
                "mode": args.mode,
                "counts": args.counts,
                "variants": _parse_variants(args.variants),
            }
            if args.fanin is not None:
                kwargs["barrier_fanin"] = args.fanin
            if args.dir_shards is not None:
                kwargs["dir_shards"] = args.dir_shards
            if args.node_mem is not None:
                kwargs["node_mem_pages"] = args.node_mem
        elif args.command == "cross_era":
            kwargs = {
                "apps": args.apps,
                "variants": _parse_variants(args.variants),
                "counts": args.counts,
                "networks": args.networks,
            }
        elif args.command == "policies":
            kwargs = {
                "app": args.app,
                "variants": _parse_variants(args.variants),
                "nprocs": args.procs,
                # The study's sweet spot is the rdma backend; an
                # explicit --network still wins.
                "network": args.network or "rdma",
            }
        result = api.run_experiment(args.command, ctx=ctx, **kwargs)
        print(result.text)
        if getattr(args, "chart", False):
            from repro.harness import plots

            if args.command == "figure5":
                apps = []
                for curve in result.rows:
                    if curve.app not in apps:
                        apps.append(curve.app)
                for app in apps:
                    series = {
                        c.variant: c.points
                        for c in result.rows
                        if c.app == app
                    }
                    print()
                    print(plots.line_chart(series, title=f"Figure 5: {app}"))
            elif args.command == "figure6":
                print()
                print(plots.breakdown_chart(list(result.rows)))
            elif args.command == "cross_era":
                from repro.harness import cross_era

                print()
                print(cross_era.chart(list(result.rows)))
    elif args.command == "trace":
        _run_trace(ctx, args)
    elif args.command == "run":
        _run_one(ctx, args)
    if args.trace_out:
        fmt = (
            getattr(args, "format", None) or args.trace_format or "jsonl"
        )
        if ctx.trace_runs:
            try:
                export_runs(ctx.trace_runs, args.trace_out, format=fmt)
            except OSError as exc:
                print(
                    f"error: cannot write trace to {args.trace_out}: {exc}",
                    file=sys.stderr,
                )
                return 1
            total = sum(len(run.events) for run in ctx.trace_runs)
            print(
                f"[trace: {len(ctx.trace_runs)} run(s), {total:,} events "
                f"-> {args.trace_out} ({fmt})]",
                file=sys.stderr,
            )
        else:
            print(
                f"[trace: no runs recorded; nothing written to "
                f"{args.trace_out}]",
                file=sys.stderr,
            )
    footer = (
        f"\n[{args.command} regenerated in {time.time() - started:.1f}s "
        f"wall time, scale={args.scale}, jobs={args.jobs}"
    )
    if ctx.cache is not None:
        footer += f", cache: {ctx.cache.stats}"
    print(footer + "]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
