"""The common result object every experiment driver returns.

Before this module each driver handed back its own shape — lists of
``SpeedupCurve``, ``Table3Cell``, ``SweepPoint`` — and callers that
wanted counters, breakdowns, or provenance had to re-run points or poke
at driver internals.  :class:`DriverResult` is the one envelope:
typed driver rows stay available under ``rows``, and the envelope adds
the aggregate counters, the category breakdown, the rendered text, and
enough provenance to reproduce the run.

The trace/export layer is untouched: traced runs still land in
``ExperimentContext.trace_runs`` and flow through
``repro.stats.export`` exactly as before.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class DriverResult:
    """Outcome of one driver invocation (``repro.api.run_experiment``).

    ``driver``
        Which driver produced this ("figure5", "table2", "sweep", ...).
    ``config``
        The driver-level request: apps, variants, processor counts,
        swept knob — whatever parametrized :func:`generate`.
    ``rows``
        The driver's native typed cells (``SpeedupCurve``,
        ``BreakdownBar``, ``Table2Row``, ``Table3Cell``,
        ``SweepPoint``), in render order.
    ``counters``
        Protocol counters summed over every simulation the context
        executed (cache hits included): faults, messages, bytes, ...
    ``breakdown``
        Simulated microseconds per time category, summed the same way.
    ``provenance``
        Package version, scale, options, job/cache setup — what you
        need to know to rerun or trust the numbers.  When the context
        carried a result cache, ``provenance["cache_stats"]`` holds its
        hit/miss/coalesced counters (None otherwise), so load
        generators and CI assert on them instead of scraping stderr.
    ``text``
        The driver's rendered table/figure, byte-identical to what the
        CLI prints.
    """

    driver: str
    config: Dict[str, Any]
    rows: Tuple[Any, ...]
    counters: Dict[str, int]
    breakdown: Dict[str, float]
    provenance: Dict[str, Any]
    text: str

    def render(self) -> str:
        return self.text


def build(driver: str, ctx, rows, text: str, config: Dict[str, Any]) -> DriverResult:
    """Assemble a :class:`DriverResult` from a finished context.

    Counters and breakdown are the context's cumulative totals: for the
    usual one-driver-per-context lifetime (the CLI, ``run_experiment``)
    that is exactly this invocation's work.
    """
    import repro
    from repro import options as options_mod

    provenance = {
        "package_version": repro.__version__,
        "scale": ctx.scale,
        "warm_start": ctx.warm_start,
        "jobs": ctx.jobs,
        "cache": ctx.cache is not None,
        "cache_stats": (
            ctx.cache.stats.as_dict() if ctx.cache is not None else None
        ),
        "options": asdict(options_mod.current()),
        "simulations": ctx.runs_executed,
    }
    return DriverResult(
        driver=driver,
        config=dict(config),
        rows=tuple(rows),
        counters=dict(ctx.counters),
        breakdown=dict(ctx.breakdown_us),
        provenance=provenance,
        text=text,
    )
