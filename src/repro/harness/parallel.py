"""Parallel fan-out of independent experiment points.

The paper's artifacts are embarrassingly parallel: Figure 5 alone is
8 applications x 6 variants x 6 processor counts, every point an
independent deterministic simulation.  This module runs such points
across a :class:`concurrent.futures.ProcessPoolExecutor` while keeping
the harness semantics exactly serial:

* **Deterministic ordering** — results come back in submission order,
  whatever order workers finish in.
* **Bit-identical outcomes** — the simulator is deterministic across
  processes (no wall-clock, no unseeded randomness, no hash-order
  iteration), so a worker's ``RunResult`` equals the in-process one;
  ``tests/test_parallel_harness.py`` locks this in.
* **Trace collection** — traced runs carry their ``Tracer`` back in the
  pickled result; the runner merges them into
  ``ExperimentContext.trace_runs`` in point order.

Everything a worker needs travels in a :class:`PointSpec` — plain
dataclasses of config values, never live protocol objects — so specs
pickle cheaply under both fork and spawn start methods.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.config import ClusterConfig, CostModel, RunConfig, variant_by_name
from repro.options import SimOptions

#: Sentinel variant name marking a sequential (unlinked) baseline point.
SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class PointSpec:
    """One self-contained experiment point, ready to run anywhere."""

    app: str
    variant_name: str  # a protocol variant, or SEQUENTIAL
    nprocs: int
    params: Dict[str, Any]
    cluster: ClusterConfig
    costs: CostModel
    warm_start: bool = True
    trace: bool = False
    overrides: Dict[str, Any] = field(default_factory=dict)
    # Wall-clock toggles only (fast path, queue mode, debug checks):
    # every combination is bit-identical, so options never enter cache
    # keys.  Shipping them in the spec makes worker processes honour the
    # CLI flags under both fork and spawn start methods.
    options: Optional[SimOptions] = None

    @property
    def is_sequential(self) -> bool:
        return self.variant_name == SEQUENTIAL

    def run_config(self) -> RunConfig:
        if self.is_sequential:
            raise ValueError("sequential points carry no RunConfig")
        return RunConfig(
            variant=variant_by_name(self.variant_name),
            nprocs=self.nprocs,
            cluster=self.cluster,
            costs=self.costs,
            warm_start=self.warm_start,
            trace=self.trace,
            **self.overrides,
        )


def execute_point(spec: PointSpec):
    """Run one point to completion; the process-pool worker entry."""
    from repro.apps import registry
    from repro.core import run_program, run_sequential

    if spec.options is not None:
        spec.options.apply()
    module = registry.load(spec.app)
    if spec.is_sequential:
        return run_sequential(
            module.program(),
            spec.params,
            page_size=spec.cluster.page_size,
            costs=spec.costs,
        )
    return run_program(module.program(), spec.run_config(), spec.params)


def execute_point_timed(spec: PointSpec):
    """Run one point and return ``(result, seconds)``.

    The clock wraps only the simulation itself — app-module import and
    option application are excluded — so pool workers report the same
    quantity a serial caller would measure around :func:`execute_point`.
    """
    import time

    from repro.apps import registry
    from repro.core import run_program, run_sequential

    if spec.options is not None:
        spec.options.apply()
    module = registry.load(spec.app)
    started = time.perf_counter()
    if spec.is_sequential:
        result = run_sequential(
            module.program(),
            spec.params,
            page_size=spec.cluster.page_size,
            costs=spec.costs,
        )
    else:
        result = run_program(
            module.program(), spec.run_config(), spec.params
        )
    return result, time.perf_counter() - started


def persistent_pool(jobs: int) -> ProcessPoolExecutor:
    """A long-lived worker pool for repeated :func:`run_points` calls.

    Constructing a :class:`ProcessPoolExecutor` costs a fork/spawn plus
    a full interpreter warm-up per worker; callers that run many small
    batches (the serving layer's cold-point batcher, benchmark reruns)
    amortise that by building one pool here and passing it as
    ``run_points(..., pool=...)``.  The caller owns the lifetime —
    ``pool.shutdown()`` when done.
    """
    return ProcessPoolExecutor(max_workers=max(1, jobs))


def run_points(
    specs: Sequence[PointSpec],
    jobs: int = 1,
    max_workers: Optional[int] = None,
    timed: bool = False,
    pool: Optional[ProcessPoolExecutor] = None,
) -> List:
    """Execute every spec; results return in submission order.

    ``pool`` (an executor from :func:`persistent_pool`) takes priority:
    the batch fans across the caller's long-lived workers and the pool
    survives the call — nothing is constructed or torn down here, so
    back-to-back batches pay no per-call spin-up.  Otherwise
    ``jobs <= 1`` (or a single spec) runs in-process — no pool, no
    pickling — and ``jobs > 1`` builds a throwaway pool of
    ``min(jobs, len(specs))`` workers for just this call.
    ``Executor.map`` preserves order either way.

    With ``timed=True`` each entry is ``(result, seconds)`` from
    :func:`execute_point_timed`; note that concurrent workers share
    cores, so pooled timings carry scheduling noise that serial
    (``jobs=1``) timings do not.
    """
    specs = list(specs)
    runner = execute_point_timed if timed else execute_point
    if pool is not None:
        if not specs:
            return []
        return list(pool.map(runner, specs))
    if jobs <= 1 or len(specs) <= 1:
        return [runner(spec) for spec in specs]
    workers = max_workers or min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(runner, specs))
