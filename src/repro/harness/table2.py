"""Table 2: data-set sizes and sequential execution times.

The paper reports the unlinked sequential time of each application; the
reproduction reports the scaled-down problem size, its shared-memory
footprint, and the simulated sequential time, side by side with the
paper's values for reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps import registry
from repro.harness.runner import BatchPoint, ExperimentContext
from repro.memory import AddressSpace


@dataclass
class Table2Row:
    app: str
    problem_size: str
    shared_mbytes: float
    sequential_seconds: float
    paper_problem_size: str
    paper_sequential_seconds: float


def _problem_description(params: dict) -> str:
    return ", ".join(f"{k}={v}" for k, v in sorted(params.items()))


def generate(ctx: ExperimentContext = None) -> List[Table2Row]:
    ctx = ctx or ExperimentContext()
    # One independent sequential simulation per app; batch them so
    # ``--jobs`` and the result cache apply here too.
    ctx.run_batch([BatchPoint(spec.name, None) for spec in registry.APPS])
    rows = []
    for spec in registry.APPS:
        module = ctx.app(spec.name)
        params = ctx.params(spec.name)
        space = AddressSpace(ctx.cluster.page_size)
        module.setup(space, dict(params))
        seq = ctx.sequential(spec.name)
        rows.append(
            Table2Row(
                app=spec.name,
                problem_size=_problem_description(params),
                shared_mbytes=space.total_bytes / (1024.0 * 1024.0),
                sequential_seconds=seq.exec_time / 1e6,
                paper_problem_size=spec.paper_problem_size,
                paper_sequential_seconds=spec.paper_sequential_seconds,
            )
        )
    return rows


def run(ctx: ExperimentContext = None):
    """Generate Table 2 and wrap it in the common result envelope."""
    from repro.harness import results

    ctx = ctx or ExperimentContext()
    rows = generate(ctx)
    config = {"apps": [row.app for row in rows]}
    return results.build("table2", ctx, rows, render(rows), config)


def render(rows: List[Table2Row]) -> str:
    lines = [
        f"{'Program':<8}{'Problem (scaled)':<40}{'Shared MB':>10}"
        f"{'Seq time (s)':>14}{'Paper size':>22}{'Paper time (s)':>15}"
    ]
    for row in rows:
        lines.append(
            f"{row.app:<8}{row.problem_size:<40}{row.shared_mbytes:>10.2f}"
            f"{row.sequential_seconds:>14.3f}"
            f"{row.paper_problem_size:>22}{row.paper_sequential_seconds:>15.2f}"
        )
    return "\n".join(lines)
