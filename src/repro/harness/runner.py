"""Shared machinery for the per-table/figure experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.config import (
    ClusterConfig,
    CostModel,
    RunConfig,
    Variant,
)
from repro.core import Program, RunResult, run_program, run_sequential
from repro.apps import registry
from repro.harness.cache import ResultCache, key_for_spec
from repro.harness.parallel import SEQUENTIAL, PointSpec, run_points
from repro.options import SimOptions
from repro.stats.export import TraceRun


@dataclass(frozen=True)
class BatchPoint:
    """One experiment point for :meth:`ExperimentContext.run_batch`.

    ``variant=None`` requests the app's sequential (unlinked) baseline;
    ``costs=None`` uses the context's (app-adjusted) cost model — sweeps
    pass explicit swept models.  ``params``/``cluster`` (both normally
    None = the context's scale tier and cluster) let the scaling sweeps
    grow the problem and the machine per point: weak scaling re-sizes
    the input with the processor count, and counts past the base
    cluster's capacity ride on clusters grown via
    :func:`repro.harness.configs.cluster_for`.
    """

    app: str
    variant: Optional[Variant]
    nprocs: int = 1
    costs: Optional[CostModel] = None
    overrides: Tuple[Tuple[str, Any], ...] = ()
    params: Optional[Tuple[Tuple[str, Any], ...]] = None
    cluster: Optional[ClusterConfig] = None


@dataclass
class ExperimentContext:
    """Caches and configuration shared across one harness invocation."""

    scale: str = "small"
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    costs: CostModel = field(default_factory=CostModel)
    # Warm start is the faithful default at simulation scale: the
    # paper's minutes-long runs amortise cold data distribution to ~1%
    # of execution time, while at scaled-down sizes it can dominate
    # (see DESIGN.md, "Scaling methodology").
    warm_start: bool = True
    # With ``trace=True`` every run records protocol events and lands in
    # ``trace_runs`` (with full provenance metadata), ready for the
    # exporters in repro.stats.export — this is what the CLI's global
    # ``--trace-out`` flag switches on.
    trace: bool = False
    trace_runs: List[TraceRun] = field(default_factory=list)
    # Fan independent points of one driver invocation across this many
    # worker processes (the CLI's ``--jobs``).  1 = fully serial; the
    # results are bit-identical either way.
    jobs: int = 1
    # Optional persistent result cache (the CLI's ``--cache-dir`` /
    # ``--no-cache``); None disables on-disk caching entirely.
    cache: Optional[ResultCache] = None
    # Optional long-lived worker pool (repro.harness.parallel
    # .persistent_pool): when set, every run_batch fans across it and
    # no per-batch pool is constructed or torn down.  The caller owns
    # the pool's lifetime; ``jobs`` is ignored while it is set.
    pool: Optional[Any] = None
    # Wall-clock toggles (fast path, queue mode, debug checks) shipped
    # to worker processes inside every PointSpec.  None inherits the
    # process-wide repro.options.current().
    options: Optional[SimOptions] = None
    # Cumulative aggregates over every simulation this context has
    # executed, cached results included — the counters/breakdown fields
    # of the DriverResult envelope (see repro.harness.results).
    counters: Dict[str, int] = field(default_factory=dict)
    breakdown_us: Dict[str, float] = field(default_factory=dict)
    runs_executed: int = 0
    _sequential: Dict[Tuple, RunResult] = field(default_factory=dict)

    def app(self, name: str):
        return registry.load(name)

    def params(self, name: str) -> Dict:
        return self.app(name).default_params(self.scale)

    def sequential(self, name: str) -> RunResult:
        return self.run_batch([BatchPoint(name, None)])[0]

    def costs_for(self, name: str) -> CostModel:
        """The cost model for one app, honouring its scaled-cache
        overrides (see e.g. ``repro.apps.gauss.cost_overrides``)."""
        module = self.app(name)
        overrides = getattr(module, "cost_overrides", None)
        if overrides is None:
            return self.costs
        return replace(self.costs, **overrides(self.params(name)))

    def run(
        self,
        name: str,
        variant: Variant,
        nprocs: int,
        **overrides,
    ) -> RunResult:
        point = BatchPoint(
            name, variant, nprocs, overrides=tuple(sorted(overrides.items()))
        )
        return self.run_batch([point])[0]

    def run_batch(self, points: Iterable[BatchPoint]) -> List[RunResult]:
        """Run every point; results return in point order.

        The single entry point for all experiment execution: memoizes
        sequential baselines, consults the on-disk result cache, fans
        cache misses across ``self.jobs`` worker processes, stores fresh
        results back, and merges traces into ``trace_runs`` in point
        order.
        """
        points = list(points)
        specs = [self._spec_for(point) for point in points]
        keys = [self._key_for(spec) for spec in specs]

        results: List[Optional[RunResult]] = [None] * len(points)
        missing: List[int] = []
        for i, spec in enumerate(specs):
            cached = self._lookup(spec, keys[i])
            if cached is not None:
                results[i] = cached
            else:
                missing.append(i)

        fresh = run_points(
            [specs[i] for i in missing], jobs=self.jobs, pool=self.pool
        )
        for i, result in zip(missing, fresh):
            results[i] = result
            self._store(specs[i], keys[i], result)

        for spec, result in zip(specs, results):
            if spec.is_sequential:
                self._sequential.setdefault(self._seq_memo_key(spec), result)
            elif spec.trace:
                self.trace_runs.append(
                    TraceRun.from_result(result, scale=self.scale)
                )
            self._accumulate(result)
        return results

    def _accumulate(self, result: RunResult) -> None:
        self.runs_executed += 1
        for name, value in result.stats.aggregate_counters().items():
            if value:
                self.counters[name] = self.counters.get(name, 0) + value
        for category, us in result.breakdown.as_dict().items():
            if us:
                self.breakdown_us[category] = (
                    self.breakdown_us.get(category, 0.0) + us
                )

    def speedup(self, name: str, variant: Variant, nprocs: int, **kw) -> float:
        seq = self.sequential(name)
        par = self.run(name, variant, nprocs, **kw)
        return par.speedup_over(seq.exec_time)

    def max_procs(self, variant: Variant) -> int:
        cfg = RunConfig(variant=variant, nprocs=1, cluster=self.cluster)
        return cfg.compute_cpus_available

    # -- internals -----------------------------------------------------

    def _spec_for(self, point: BatchPoint) -> PointSpec:
        overrides = dict(point.overrides)
        trace = overrides.pop("trace", self.trace)
        if self.options is not None:
            # The network backend and the sharing-policy triple change
            # simulated results, so they ride in the RunConfig overrides
            # (and hence the cache key), not just in the shipped
            # SimOptions.
            overrides.setdefault("network", self.options.network)
            overrides.setdefault("granularity", self.options.granularity)
            overrides.setdefault("prefetch", self.options.prefetch)
            overrides.setdefault("homing", self.options.homing)
        return PointSpec(
            app=point.app,
            variant_name=(
                SEQUENTIAL if point.variant is None else point.variant.name
            ),
            nprocs=point.nprocs,
            params=(
                dict(point.params) if point.params is not None
                else self.params(point.app)
            ),
            cluster=point.cluster if point.cluster is not None else self.cluster,
            costs=(
                point.costs if point.costs is not None
                else self.costs_for(point.app)
            ),
            warm_start=self.warm_start,
            trace=trace,
            overrides=overrides,
            options=self.options,
        )

    def _key_for(self, spec: PointSpec) -> Optional[str]:
        if self.cache is None:
            return None
        return key_for_spec(spec)

    def _seq_memo_key(self, spec: PointSpec) -> Tuple:
        # Keyed by (app, exact params): the baseline never touches the
        # network, so swept cost models share one baseline (contexts
        # created by the sweep drivers share this dict), while scaling
        # sweeps with per-point params get distinct baselines.
        return (spec.app, tuple(sorted(spec.params.items())))

    def _lookup(self, spec: PointSpec, key: Optional[str]):
        if spec.is_sequential:
            memo = self._sequential.get(self._seq_memo_key(spec))
            if memo is not None:
                return memo
        if key is None:
            return None
        return self.cache.get(key)

    def _store(self, spec: PointSpec, key: Optional[str], result) -> None:
        if key is not None:
            self.cache.put(key, result)


def feasible_counts(
    counts: Iterable[int], variant: Variant, ctx: ExperimentContext
) -> List[int]:
    limit = ctx.max_procs(variant)
    return [n for n in counts if n <= limit]
