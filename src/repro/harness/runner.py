"""Shared machinery for the per-table/figure experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import (
    ClusterConfig,
    CostModel,
    RunConfig,
    Variant,
)
from repro.core import Program, RunResult, run_program, run_sequential
from repro.apps import registry
from repro.stats.export import TraceRun


@dataclass
class ExperimentContext:
    """Caches and configuration shared across one harness invocation."""

    scale: str = "small"
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    costs: CostModel = field(default_factory=CostModel)
    # Warm start is the faithful default at simulation scale: the
    # paper's minutes-long runs amortise cold data distribution to ~1%
    # of execution time, while at scaled-down sizes it can dominate
    # (see DESIGN.md, "Scaling methodology").
    warm_start: bool = True
    # With ``trace=True`` every run records protocol events and lands in
    # ``trace_runs`` (with full provenance metadata), ready for the
    # exporters in repro.stats.export — this is what the CLI's global
    # ``--trace-out`` flag switches on.
    trace: bool = False
    trace_runs: List[TraceRun] = field(default_factory=list)
    _sequential: Dict[Tuple[str, str], RunResult] = field(default_factory=dict)

    def app(self, name: str):
        return registry.load(name)

    def params(self, name: str) -> Dict:
        return self.app(name).default_params(self.scale)

    def sequential(self, name: str) -> RunResult:
        key = (name, self.scale)
        cached = self._sequential.get(key)
        if cached is None:
            module = self.app(name)
            cached = run_sequential(
                module.program(),
                self.params(name),
                page_size=self.cluster.page_size,
                costs=self.costs_for(name),
            )
            self._sequential[key] = cached
        return cached

    def costs_for(self, name: str) -> CostModel:
        """The cost model for one app, honouring its scaled-cache
        overrides (see e.g. ``repro.apps.gauss.cost_overrides``)."""
        module = self.app(name)
        overrides = getattr(module, "cost_overrides", None)
        if overrides is None:
            return self.costs
        from dataclasses import replace

        return replace(self.costs, **overrides(self.params(name)))

    def run(
        self,
        name: str,
        variant: Variant,
        nprocs: int,
        **overrides,
    ) -> RunResult:
        module = self.app(name)
        run_cfg = RunConfig(
            variant=variant,
            nprocs=nprocs,
            cluster=self.cluster,
            costs=self.costs_for(name),
            warm_start=self.warm_start,
            trace=overrides.pop("trace", self.trace),
            **overrides,
        )
        result = run_program(module.program(), run_cfg, self.params(name))
        if run_cfg.trace:
            self.trace_runs.append(
                TraceRun.from_result(result, scale=self.scale)
            )
        return result

    def speedup(self, name: str, variant: Variant, nprocs: int, **kw) -> float:
        seq = self.sequential(name)
        par = self.run(name, variant, nprocs, **kw)
        return par.speedup_over(seq.exec_time)

    def max_procs(self, variant: Variant) -> int:
        cfg = RunConfig(variant=variant, nprocs=1, cluster=self.cluster)
        return cfg.compute_cpus_available


def feasible_counts(
    counts: Iterable[int], variant: Variant, ctx: ExperimentContext
) -> List[int]:
    limit = ctx.max_procs(variant)
    return [n for n in counts if n <= limit]
