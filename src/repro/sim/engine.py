"""Deterministic discrete-event simulation engine.

The design follows SimPy's process/event model, reduced to exactly what
the DSM simulation needs:

* :class:`Event` — one-shot; processes wait on it by yielding it.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`AnyOf` — fires as soon as any child event fires.
* :class:`Process` — wraps a generator; is itself an event that fires
  when the generator returns.  Supports :meth:`Process.interrupt`, which
  the cluster model uses to deliver remote requests into a running
  compute block.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class DeadlockError(RuntimeError):
    """Raised when live processes remain but no event can ever fire."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event; fires at most once with an optional value."""

    __slots__ = ("engine", "callbacks", "_triggered", "value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event now; waiters resume at the current sim time."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self.value = value
        self.engine._schedule_callbacks(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated microseconds from now."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(engine)
        self.delay = delay
        engine._schedule_at(engine.now + delay, self)


class AnyOf(Event):
    """Fires when the first of ``events`` fires; value is that event."""

    __slots__ = ("events",)

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf needs at least one event")
        fired = next((e for e in self.events if e.triggered), None)
        if fired is not None:
            self.succeed(fired)
            return
        for event in self.events:
            event.callbacks.append(self._child_fired)

    def _child_fired(self, event: Event) -> None:
        if self._triggered:
            return
        # Detach from the children that did not fire; long-lived events
        # (processor mailboxes, lock grants) would otherwise accumulate
        # one dead callback per wait.
        for child in self.events:
            if child is not event:
                _remove_callback(child, self._child_fired)
        self.succeed(event)


class Process(Event):
    """A running generator process.  Fires (as an event) on return."""

    __slots__ = (
        "generator",
        "name",
        "daemon",
        "_waiting_on",
        "_interrupt_pending",
    )

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, Any, Any],
        name: str = "proc",
        daemon: bool = False,
    ):
        super().__init__(engine)
        self.generator = generator
        self.name = name
        self.daemon = daemon
        self._waiting_on: Optional[Event] = None
        self._interrupt_pending: Optional[Interrupt] = None
        engine._schedule_now(self._start)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name}")
        if self._interrupt_pending is not None:
            return  # coalesce; one wakeup is enough
        self._interrupt_pending = Interrupt(cause)
        self.engine._schedule_now(self._deliver_interrupt)

    # -- internals ----------------------------------------------------

    def _start(self) -> None:
        self._step(lambda: self.generator.send(None))

    def _deliver_interrupt(self) -> None:
        interrupt = self._interrupt_pending
        self._interrupt_pending = None
        if interrupt is None or self._triggered:
            return
        waited = self._waiting_on
        self._waiting_on = None
        if waited is not None:
            _remove_callback(waited, self._resume)
        self._step(lambda: self.generator.throw(interrupt))

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup (we were interrupted away from it)
        self._waiting_on = None
        self._step(lambda: self.generator.send(event.value))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"
            )
        if target.triggered:
            self.engine._schedule_now(lambda: self._resume_immediate(target))
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)

    def _resume_immediate(self, event: Event) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        self._step(lambda: self.generator.send(event.value))


def _remove_callback(event: Event, callback: Callable) -> None:
    try:
        event.callbacks.remove(callback)
    except ValueError:
        pass


class Engine:
    """The event loop: a time-ordered heap of pending callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List = []
        self._seq = 0
        self._processes: List[Process] = []

    # -- public construction helpers ----------------------------------

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: str = "proc",
        daemon: bool = False,
    ) -> Process:
        proc = Process(self, generator, name, daemon)
        self._processes.append(proc)
        return proc

    def call_at(self, when: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute sim time ``when``."""
        if when < self.now:
            raise ValueError("cannot schedule in the past")
        self._push(when, action)

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- running -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until no work remains (or ``until`` sim time); return now."""
        while self._heap:
            when, _seq, action = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            if when < self.now:
                raise RuntimeError("event scheduled in the past")
            self.now = when
            action()
        stuck = [
            p.name for p in self._processes if p.is_alive and not p.daemon
        ]
        if stuck:
            raise DeadlockError(
                f"no events pending but processes still alive: {stuck}"
            )
        return self.now

    # -- internals -----------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        self._push(when, lambda: event.succeed())

    def _schedule_now(self, action: Callable[[], None]) -> None:
        self._push(self.now, action)

    def _schedule_callbacks(self, event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, []

        def fire() -> None:
            for callback in callbacks:
                callback(event)

        self._push(self.now, fire)

    def _push(self, when: float, action: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, action))
