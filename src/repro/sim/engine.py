"""Deterministic discrete-event simulation engine.

The design follows SimPy's process/event model, reduced to exactly what
the DSM simulation needs:

* :class:`Event` — one-shot; processes wait on it by yielding it.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`AnyOf` — fires as soon as any child event fires.
* :class:`Process` — wraps a generator; is itself an event that fires
  when the generator returns.  Supports :meth:`Process.interrupt`, which
  the cluster model uses to deliver remote requests into a running
  compute block.

The inner loop is deliberately allocation-light, and (as of the PR 4
overhaul) the scheduler itself is a **bucketed calendar queue**: pending
callbacks are grouped into per-timestamp buckets (a dict keyed by the
exact firing time, with a small heap ordering the distinct times), so
the extremely common same-timestamp schedules — event fire delivery,
barrier wake-ups of every waiting processor, interrupt posting —
are O(1) list appends instead of O(log n) heap pushes of fresh tuples.
Within a bucket, entries fire in push order, which is exactly the
``(when, seq)`` order the old binary heap produced, so simulated
results are bit-identical (``tests/test_engine_queue.py`` proves the
orders equal on random schedules; the goldens run in both modes).

Two further allocation levers ride on the same switch:

* **Event pooling** — :meth:`Engine.timeout` and :meth:`Engine.any_of`
  recycle their objects through per-engine free lists.  An event
  returns to the pool at the end of its fire delivery (when no live
  reference can observe its state anymore — waiters resume *during*
  delivery); each reuse bumps a generation counter and resets the
  callback list, so callbacks can never leak across generations
  (property-tested in ``tests/test_engine_queue.py``).
* **No closures on the hot path** — heap entries are plain
  ``(when, func, arg)``; callback registration hands out *cells*
  cancelled in O(1) by tombstoning rather than ``list.remove``.
* **Bare-delay yields** — a process may yield a plain ``float``/``int``
  instead of a :class:`Timeout`: "resume me in this many microseconds,
  value ``None``".  The engine schedules the resume with the *same two
  queue hops* a Timeout takes (fire entry at ``now + delay``, resume
  entry appended when it pops), so relative ordering against every
  other same-time entry is bit-identical — but with no event object,
  no callback cell, and no pool traffic.  ``Processor.busy`` (the
  single hottest wait in full runs: every protocol-handler occupancy
  and doubled write goes through it) rides this channel.

Escape hatch: ``SimOptions(calqueue=False)`` (CLI ``--no-calqueue``,
deprecated alias ``REPRO_DSM_NO_CALQUEUE=1``) restores the plain binary
heap and per-event allocation for A/B verification.

PR 7 shards the calendar queue for 64–1024-processor clusters
(``SimOptions(shard=True)``, the default; CLI ``--no-shard`` restores
the PR 4 flat calendar queue for A/B verification):

* **Same-timestamp cascade ring** (level 0) — entries scheduled for
  exactly the current time during delivery (the second hop of every
  bare delay, fire deliveries, interrupt posts, and the barrier wake
  storms that grow O(P)) land in a plain ring list instead of opening
  a fresh bucket: no heap round trip, no dict traffic, no allocation.
  At 256 processors ~46% of all pushes ride this channel.
* **Bucket free list** — drained per-timestamp buckets (and ring
  batches) are recycled through a bounded pool, so the allocation in
  ``_push_bucket`` (the last profiled engine lever) disappears.
* **Small top-level time index** — with the cascade ring absorbing
  every same-timestamp push, the top-level heap holds only *distinct
  future* times, which stays small (~130 entries at 256 processors —
  the simulated cluster's event horizon, not its event count).  An
  epoch-sharded wheel over that heap was prototyped and measured
  *slower* (the epoch indexing cost more than a heappush into a
  ~100-entry heap saves), so the top level deliberately stays a flat
  heap; the measurement lives in BENCH_PR7.json's design notes.

Entries from different nodes at the same timestamp are **not**
commutative (messenger queues are served in arrival order), so the
shards preserve one global drain order — bit-identical simulated
results in all three queue modes is the contract, enforced by the
goldens.  What stays node-local is the accounting: processes carry a
``shard`` tag (their node id), and :meth:`Engine.enable_shard_meter`
turns on per-shard delivery meters (fired-event counts, last-delivery
times) that the scaling invariant tests check — global time never
moves backwards across shards.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class DeadlockError(RuntimeError):
    """Raised when live processes remain but no event can ever fire."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: A registered callback: a one-element list so cancellation is a single
#: store (``cell[0] = None``) instead of an O(n) list removal.
Cell = List[Optional[Callable]]

#: Compact an event's callback list only once tombstones both exceed
#: this count and outnumber the live entries.
_COMPACT_MIN_DEAD = 8

#: Sentinel ``_waiting_on`` value while a process sleeps on a bare
#: delay (no event object to register a callback with).
_BUSY_WAIT = object()

#: Sharded-queue tuning: bound on the recycled-list pool (drained
#: buckets and cascade-ring batches are reused instead of reallocated).
_POOL_MAX = 128


def _succeed(event: "Event") -> None:
    event.succeed()


def _invoke(action: Callable[[], None]) -> None:
    action()


def _fire(event: "Event") -> None:
    """Deliver a fired event to the callbacks registered at fire time.

    Pooled events are recycled *after* the delivery loop: every waiter
    has resumed (resumption happens synchronously inside its callback),
    so no live code can observe the object's state afterwards — only
    identity comparisons against still-held references, which reuse
    does not disturb.
    """
    cells, event.callbacks = event.callbacks, None
    for cell in cells:
        callback = cell[0]
        if callback is not None:
            callback(event)
    pool = event._recycle_list
    if pool is not None:
        pool.append(event)


class Event:
    """A one-shot event; fires at most once with an optional value."""

    __slots__ = (
        "engine",
        "callbacks",
        "_dead",
        "_triggered",
        "value",
        "_gen",
        "_recycle_list",
    )

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: Optional[List[Cell]] = []
        self._dead = 0
        self._triggered = False
        self.value: Any = None
        self._gen = 0
        self._recycle_list: Optional[list] = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def generation(self) -> int:
        """How many times this object has been recycled (pooled events)."""
        return self._gen

    def _reset_for_reuse(self) -> None:
        """Re-arm a recycled event: fresh callbacks, next generation."""
        self.callbacks = []
        self._dead = 0
        self._triggered = False
        self.value = None
        self._gen += 1

    def add_callback(self, callback: Callable[["Event"], None]) -> Cell:
        """Register ``callback`` for the fire; returns its cancel cell."""
        cell: Cell = [callback]
        self.callbacks.append(cell)
        return cell

    def cancel_callback(self, cell: Cell) -> None:
        """Cancel a registration in O(1) by tombstoning its cell."""
        if cell[0] is None:
            return
        cell[0] = None
        callbacks = self.callbacks
        if callbacks is None:
            return  # already fired; the tombstone alone suffices
        self._dead += 1
        if (
            self._dead > _COMPACT_MIN_DEAD
            and self._dead * 2 > len(callbacks)
        ):
            self.callbacks = [c for c in callbacks if c[0] is not None]
            self._dead = 0

    def live_callbacks(self) -> List[Callable]:
        """The still-registered callbacks (testing/introspection)."""
        return [c[0] for c in (self.callbacks or ()) if c[0] is not None]

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event now; waiters resume at the current sim time."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self.value = value
        if self.callbacks:
            self.engine._push(self.engine.now, _fire, self)
        else:
            # No waiters: never delivered, so never recycled — the
            # caller may still hold the object and inspect its state.
            self.callbacks = None
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated microseconds from now."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(engine)
        self.delay = delay
        engine._push(engine.now + delay, _succeed, self)


class AnyOf(Event):
    """Fires when the first of ``events`` fires; value is that event."""

    __slots__ = ("events", "_cells")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._arm(events)

    def _arm(self, events: Iterable[Event]) -> None:
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf needs at least one event")
        fired = None
        for e in self.events:
            if e._triggered:
                fired = e
                break
        if fired is not None:
            self._cells = ()
            self.succeed(fired)
            return
        self._cells = [e.add_callback(self._child_fired) for e in self.events]

    def _child_fired(self, event: Event) -> None:
        if self._triggered:
            return
        # Detach from the children that did not fire; long-lived events
        # (processor mailboxes, lock grants) would otherwise accumulate
        # one dead callback per wait.
        for child, cell in zip(self.events, self._cells):
            if child is not event:
                child.cancel_callback(cell)
        self.succeed(event)


class Process(Event):
    """A running generator process.  Fires (as an event) on return."""

    __slots__ = (
        "generator",
        "name",
        "daemon",
        "shard",
        "_waiting_on",
        "_wait_cell",
        "_interrupt_pending",
        "_pending_value",
        "_wait_token",
    )

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, Any, Any],
        name: str = "proc",
        daemon: bool = False,
        shard: int = 0,
    ):
        super().__init__(engine)
        self.generator = generator
        self.name = name
        self.daemon = daemon
        #: Event-shard tag (the owning node id on cluster runs); only
        #: read by the per-shard delivery meters, never by scheduling.
        self.shard = shard
        self._waiting_on: Optional[Event] = None
        self._wait_cell: Optional[Cell] = None
        self._interrupt_pending: Optional[Interrupt] = None
        self._pending_value: Any = None
        self._wait_token = 0
        engine._push(engine.now, Process._start, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name}")
        if self._interrupt_pending is not None:
            return  # coalesce; one wakeup is enough
        self._interrupt_pending = Interrupt(cause)
        self.engine._push(self.engine.now, Process._deliver_interrupt, self)

    # -- internals ----------------------------------------------------

    def _start(self) -> None:
        self._step_send(None)

    def _deliver_interrupt(self) -> None:
        interrupt = self._interrupt_pending
        self._interrupt_pending = None
        if interrupt is None or self._triggered:
            return
        waited = self._waiting_on
        self._waiting_on = None
        if waited is _BUSY_WAIT:
            # Invalidate the in-flight delay entries; a new token makes
            # the stale _delay_fire/_delay_resume pair a no-op.
            self._wait_token += 1
        elif waited is not None:
            waited.cancel_callback(self._wait_cell)
        try:
            target = self.generator.throw(interrupt)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        self._wait_for(target)

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup (we were interrupted away from it)
        self._waiting_on = None
        self._step_send(event.value)

    def _step_send(self, value: Any) -> None:
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        # Bare delays inline (the dominant resume target on full runs);
        # everything else through the shared classifier.
        if type(target) is float or type(target) is int:
            if target < 0:
                raise ValueError(f"negative delay {target!r}")
            self._wait_token += 1
            self._waiting_on = _BUSY_WAIT
            engine = self.engine
            engine._push(
                engine.now + target, _delay_fire, (self, self._wait_token)
            )
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        # Bare delays first: with busy/compute riding the delay channel
        # they outnumber event waits on full runs.
        if type(target) is float or type(target) is int:
            # Bare-delay fast channel: resume with value None after
            # ``target`` microseconds, through the same two queue hops
            # a Timeout would take (see module docstring).
            if target < 0:
                raise ValueError(f"negative delay {target!r}")
            self._wait_token += 1
            self._waiting_on = _BUSY_WAIT
            self.engine._push(
                self.engine.now + target,
                _delay_fire,
                (self, self._wait_token),
            )
            return
        if isinstance(target, Event):
            if target._triggered:
                # Capture the value now rather than at delivery: a fired
                # value can never change, and holding no reference to the
                # event lets pooled events recycle safely.
                self._pending_value = target.value
                self.engine._push(
                    self.engine.now, Process._resume_immediate, self
                )
            else:
                self._waiting_on = target
                self._wait_cell = target.add_callback(self._resume)
            return
        raise TypeError(
            f"process {self.name!r} yielded {target!r}; "
            "processes must yield Event instances or bare delays"
        )

    def _resume_immediate(self) -> None:
        value, self._pending_value = self._pending_value, None
        if self._triggered:
            return
        self._waiting_on = None
        self._step_send(value)


def _is_pure_delay(bucket: list, n: int) -> bool:
    """True when every entry of the batch is a bare-delay first hop."""
    i = 0
    while i < n:
        if bucket[i] is not _delay_fire:
            return False
        i += 2
    return True


def _delay_fire(pair) -> None:
    """First hop of a bare delay (the Timeout ``_succeed`` stand-in)."""
    proc = pair[0]
    if proc._wait_token != pair[1]:
        return  # interrupted away from this delay
    proc.engine._push(proc.engine.now, _delay_resume, pair)


def _delay_resume(pair) -> None:
    """Second hop of a bare delay (the ``_fire`` -> resume stand-in)."""
    proc = pair[0]
    if proc._wait_token != pair[1]:
        return
    proc._wait_token += 1
    proc._waiting_on = None
    proc._step_send(None)


class Engine:
    """The event loop.

    Two interchangeable schedulers (selected by
    :class:`repro.options.SimOptions`, default calendar queue):

    * **calendar queue** — per-timestamp buckets (``_buckets``: exact
      firing time -> flat ``[func, arg, func, arg, ...]`` list) with a
      heap of distinct times (``_times``).  Same-time schedules append;
      within a bucket, entries fire in push order — identical global
      order to the binary heap's ``(when, seq)``.
    * **binary heap** — the original time-ordered heap of
      ``(when, seq, func, arg)`` tuples (the A/B escape hatch).
    """

    def __init__(self, options=None) -> None:
        if options is None:
            from repro import options as _options_mod

            options = _options_mod.current()
        self.now: float = 0.0
        self.calqueue: bool = bool(getattr(options, "calqueue", True))
        self.sharded: bool = self.calqueue and bool(
            getattr(options, "shard", True)
        )
        # binary-heap state
        self._heap: List = []
        self._seq = 0
        # calendar-queue state
        self._times: List[float] = []
        self._buckets: dict = {}
        # sharded-queue state: same-timestamp cascade ring and the
        # recycled list pool (drained buckets and ring batches).
        self._ring: List = []
        self._list_pool: List[list] = []
        #: Delivered (func, arg) entries, all queue modes — the
        #: denominator of the wall-clock-per-simulated-event metric.
        self.events_fired: int = 0
        # per-shard delivery meters (None unless enabled by tests /
        # the scaling smoke checks; see enable_shard_meter)
        self._shard_meter: Optional[dict] = None
        self._shard_violations: List = []
        self._processes: List[Process] = []
        # free lists for pooled events (calendar-queue mode only; the
        # escape hatch restores per-event allocation wholesale)
        self._timeout_pool: List[Timeout] = []
        self._anyof_pool: List[AnyOf] = []
        if self.sharded:
            self._push = self._push_shard  # type: ignore[method-assign]
        elif self.calqueue:
            self._push = self._push_bucket  # type: ignore[method-assign]

    # -- public construction helpers ----------------------------------

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: str = "proc",
        daemon: bool = False,
        shard: int = 0,
    ) -> Process:
        proc = Process(self, generator, name, daemon, shard)
        self._processes.append(proc)
        return proc

    def enable_shard_meter(self) -> dict:
        """Turn on per-shard delivery meters (test instrumentation).

        Returns the live meter dict: shard id -> ``[fired_count,
        last_delivery_time]``.  A delivery at a time earlier than the
        shard's last recorded delivery is appended to
        :attr:`shard_violations` — the invariant the 256p scaling
        smoke test checks is that this list stays empty (global time
        never moves backwards across shards).
        """
        if self._shard_meter is None:
            self._shard_meter = {}
        return self._shard_meter

    @property
    def shard_violations(self) -> List:
        return self._shard_violations

    def call_at(self, when: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute sim time ``when``."""
        if when < self.now:
            raise ValueError("cannot schedule in the past")
        self._push(when, _invoke, action)

    def schedule(
        self, when: float, func: Callable[[Any], None], arg: Any = None
    ) -> None:
        """Run ``func(arg)`` at absolute sim time ``when``.

        The closure-free sibling of :meth:`call_at`: hot paths
        (messaging continuations, lock grants, barrier releases) push
        a plain ``(func, arg)`` pair instead of building a lambda.
        """
        if when < self.now:
            raise ValueError("cannot schedule in the past")
        self._push(when, func, arg)

    def succeed_at(self, when: float, event: Event) -> None:
        """Fire ``event`` (with no value) at absolute sim time ``when``."""
        if when < self.now:
            raise ValueError("cannot schedule in the past")
        self._push(when, _succeed, event)

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float) -> Timeout:
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay!r}")
            t = pool.pop()
            t._reset_for_reuse()
            t.delay = delay
            self._push(self.now + delay, _succeed, t)
            return t
        t = Timeout(self, delay)
        if self.calqueue:
            t._recycle_list = pool
        return t

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        pool = self._anyof_pool
        if pool:
            a = pool.pop()
            a._reset_for_reuse()
            a._arm(events)
            return a
        a = AnyOf(self, events)
        if self.calqueue:
            a._recycle_list = pool
        return a

    # -- running -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until no work remains (or ``until`` sim time); return now."""
        if self.sharded:
            exhausted = self._run_shard(until)
        elif self.calqueue:
            exhausted = self._run_calqueue(until)
        else:
            exhausted = self._run_heap(until)
        if not exhausted:
            return self.now  # stopped at ``until`` with work pending
        stuck = [
            p.name for p in self._processes if p.is_alive and not p.daemon
        ]
        if stuck:
            raise DeadlockError(
                f"no events pending but processes still alive: {stuck}"
            )
        return self.now

    def _run_heap(self, until: Optional[float]) -> bool:
        heap = self._heap
        pop = heapq.heappop
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                self.now = until
                return False
            _when, _seq, func, arg = pop(heap)
            if when < self.now:
                raise RuntimeError("event scheduled in the past")
            self.now = when
            self.events_fired += 1
            func(arg)
        return True

    def _run_calqueue(self, until: Optional[float]) -> bool:
        times = self._times
        buckets = self._buckets
        pop = heapq.heappop
        while times:
            when = times[0]
            if until is not None and when > until:
                self.now = until
                return False
            if when < self.now:
                raise RuntimeError("event scheduled in the past")
            pop(times)
            self.now = when
            # Entries scheduled for this same time *during* delivery
            # open a fresh bucket (this one is already detached), which
            # the loop drains on its next iteration — preserving global
            # push order exactly.
            bucket = buckets.pop(when)
            n = len(bucket)
            i = 0
            while i < n:
                func = bucket[i]
                arg = bucket[i + 1]
                i += 2
                if func is _delay_fire:
                    # A bare delay's first hop.  Its second hop would be
                    # appended to the fresh bucket for this same time;
                    # when this is the last entry of the current bucket
                    # and no fresh bucket exists, that append position
                    # is provably "run next" — so skip the heap round
                    # trip and deliver the resume inline.  (Identical
                    # firing order either way; the detour is only an
                    # allocation/heap saving.)
                    if i == n and when not in buckets:
                        self.events_fired += 1
                        _delay_resume(arg)
                    else:
                        _delay_fire(arg)
                else:
                    func(arg)
            self.events_fired += n >> 1
        return True

    def _run_shard(self, until: Optional[float]) -> bool:
        """The sharded scheduler: cascade ring over the bucketed heap.

        Drain order is identical to :meth:`_run_calqueue`: the ring
        holds exactly the entries that would have opened a fresh
        bucket for the current time (drained next in push order), and
        the heap yields the distinct future times in the same numeric
        order either way.
        """
        times = self._times
        buckets = self._buckets
        pool = self._list_pool
        pop = heapq.heappop
        while True:
            batch = self._ring
            if batch:
                # Cascade entries at self.now: detach the ring (fresh
                # pushes during delivery open the next one) and drain.
                self._ring = pool.pop() if pool else []
            else:
                if not times:
                    return True
                when = times[0]
                if until is not None and when > until:
                    self.now = until
                    return False
                if when < self.now:
                    raise RuntimeError("event scheduled in the past")
                pop(times)
                self.now = when
                batch = buckets.pop(when)
            n = len(batch)
            if self._shard_meter is not None:
                self.events_fired += n >> 1
                self._deliver_metered(batch)
            elif not self._ring and _is_pure_delay(batch, n):
                # Whole-batch resume: every entry is a bare-delay first
                # hop and the ring is empty, so the original schedule is
                # provably [fire1..fireK][resume1..resumeK] with the
                # fires side-effect-free (they only push their resume,
                # token permitting; tokens never regress, so checking
                # once at resume time gives the same outcome).  Deliver
                # the resumes directly in push order — this turns the
                # O(P) barrier/compute wake storms at large P into one
                # pass with no second queue hop at all.
                self.events_fired += n  # fires + their direct resumes
                i = 1
                while i < n:
                    _delay_resume(batch[i])
                    i += 2
            else:
                self.events_fired += n >> 1
                i = 0
                while i < n:
                    func = batch[i]
                    arg = batch[i + 1]
                    i += 2
                    if func is _delay_fire:
                        # Same inline-resume saving as _run_calqueue:
                        # when this bare-delay fire is the last entry
                        # of the batch and the cascade ring is empty,
                        # its resume is provably the next entry to run
                        # — deliver it without the ring detour.
                        if i == n and not self._ring:
                            self.events_fired += 1
                            _delay_resume(arg)
                        else:
                            _delay_fire(arg)
                    else:
                        func(arg)
            if len(pool) < _POOL_MAX:
                batch.clear()
                pool.append(batch)

    def _deliver_metered(self, bucket: list) -> None:
        """The shard-metered drain (test instrumentation path only)."""
        n = len(bucket)
        i = 0
        while i < n:
            func = bucket[i]
            arg = bucket[i + 1]
            i += 2
            self._meter_entry(arg)
            if func is _delay_fire:
                if i == n and not self._ring:
                    _delay_resume(arg)
                else:
                    _delay_fire(arg)
            else:
                func(arg)

    def _meter_entry(self, arg: Any) -> None:
        obj = arg[0] if type(arg) is tuple else arg
        shard = getattr(obj, "shard", 0)
        meter = self._shard_meter
        rec = meter.get(shard)
        if rec is None:
            meter[shard] = [1, self.now]
        else:
            if self.now < rec[1]:
                self._shard_violations.append((shard, rec[1], self.now))
            rec[0] += 1
            rec[1] = self.now

    # -- internals -----------------------------------------------------

    def _push(self, when: float, func: Callable[[Any], None], arg: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, func, arg))

    def _push_bucket(
        self, when: float, func: Callable[[Any], None], arg: Any
    ) -> None:
        bucket = self._buckets.get(when)
        if bucket is None:
            heapq.heappush(self._times, when)
            self._buckets[when] = [func, arg]
        else:
            bucket.append(func)
            bucket.append(arg)

    def _push_shard(
        self, when: float, func: Callable[[Any], None], arg: Any
    ) -> None:
        if when == self.now:
            # Same-timestamp cascade: stays in the ring, drained next
            # in push order — never touches the heap or the buckets.
            ring = self._ring
            ring.append(func)
            ring.append(arg)
            return
        bucket = self._buckets.get(when)
        if bucket is not None:
            bucket.append(func)
            bucket.append(arg)
            return
        # First entry at this exact future time: index it in the heap
        # of distinct times, reusing a drained list when one is free.
        heapq.heappush(self._times, when)
        pool = self._list_pool
        if pool:
            bucket = pool.pop()
            bucket.append(func)
            bucket.append(arg)
            self._buckets[when] = bucket
        else:
            self._buckets[when] = [func, arg]
