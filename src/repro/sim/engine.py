"""Deterministic discrete-event simulation engine.

The design follows SimPy's process/event model, reduced to exactly what
the DSM simulation needs:

* :class:`Event` — one-shot; processes wait on it by yielding it.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`AnyOf` — fires as soon as any child event fires.
* :class:`Process` — wraps a generator; is itself an event that fires
  when the generator returns.  Supports :meth:`Process.interrupt`, which
  the cluster model uses to deliver remote requests into a running
  compute block.

The inner loop is deliberately allocation-light, and (as of the PR 4
overhaul) the scheduler itself is a **bucketed calendar queue**: pending
callbacks are grouped into per-timestamp buckets (a dict keyed by the
exact firing time, with a small heap ordering the distinct times), so
the extremely common same-timestamp schedules — event fire delivery,
barrier wake-ups of every waiting processor, interrupt posting —
are O(1) list appends instead of O(log n) heap pushes of fresh tuples.
Within a bucket, entries fire in push order, which is exactly the
``(when, seq)`` order the old binary heap produced, so simulated
results are bit-identical (``tests/test_engine_queue.py`` proves the
orders equal on random schedules; the goldens run in both modes).

Two further allocation levers ride on the same switch:

* **Event pooling** — :meth:`Engine.timeout` and :meth:`Engine.any_of`
  recycle their objects through per-engine free lists.  An event
  returns to the pool at the end of its fire delivery (when no live
  reference can observe its state anymore — waiters resume *during*
  delivery); each reuse bumps a generation counter and resets the
  callback list, so callbacks can never leak across generations
  (property-tested in ``tests/test_engine_queue.py``).
* **No closures on the hot path** — heap entries are plain
  ``(when, func, arg)``; callback registration hands out *cells*
  cancelled in O(1) by tombstoning rather than ``list.remove``.
* **Bare-delay yields** — a process may yield a plain ``float``/``int``
  instead of a :class:`Timeout`: "resume me in this many microseconds,
  value ``None``".  The engine schedules the resume with the *same two
  queue hops* a Timeout takes (fire entry at ``now + delay``, resume
  entry appended when it pops), so relative ordering against every
  other same-time entry is bit-identical — but with no event object,
  no callback cell, and no pool traffic.  ``Processor.busy`` (the
  single hottest wait in full runs: every protocol-handler occupancy
  and doubled write goes through it) rides this channel.

Escape hatch: ``SimOptions(calqueue=False)`` (CLI ``--no-calqueue``,
deprecated alias ``REPRO_DSM_NO_CALQUEUE=1``) restores the plain binary
heap and per-event allocation for A/B verification.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class DeadlockError(RuntimeError):
    """Raised when live processes remain but no event can ever fire."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: A registered callback: a one-element list so cancellation is a single
#: store (``cell[0] = None``) instead of an O(n) list removal.
Cell = List[Optional[Callable]]

#: Compact an event's callback list only once tombstones both exceed
#: this count and outnumber the live entries.
_COMPACT_MIN_DEAD = 8

#: Sentinel ``_waiting_on`` value while a process sleeps on a bare
#: delay (no event object to register a callback with).
_BUSY_WAIT = object()


def _succeed(event: "Event") -> None:
    event.succeed()


def _invoke(action: Callable[[], None]) -> None:
    action()


def _fire(event: "Event") -> None:
    """Deliver a fired event to the callbacks registered at fire time.

    Pooled events are recycled *after* the delivery loop: every waiter
    has resumed (resumption happens synchronously inside its callback),
    so no live code can observe the object's state afterwards — only
    identity comparisons against still-held references, which reuse
    does not disturb.
    """
    cells, event.callbacks = event.callbacks, None
    for cell in cells:
        callback = cell[0]
        if callback is not None:
            callback(event)
    pool = event._recycle_list
    if pool is not None:
        pool.append(event)


class Event:
    """A one-shot event; fires at most once with an optional value."""

    __slots__ = (
        "engine",
        "callbacks",
        "_dead",
        "_triggered",
        "value",
        "_gen",
        "_recycle_list",
    )

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: Optional[List[Cell]] = []
        self._dead = 0
        self._triggered = False
        self.value: Any = None
        self._gen = 0
        self._recycle_list: Optional[list] = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def generation(self) -> int:
        """How many times this object has been recycled (pooled events)."""
        return self._gen

    def _reset_for_reuse(self) -> None:
        """Re-arm a recycled event: fresh callbacks, next generation."""
        self.callbacks = []
        self._dead = 0
        self._triggered = False
        self.value = None
        self._gen += 1

    def add_callback(self, callback: Callable[["Event"], None]) -> Cell:
        """Register ``callback`` for the fire; returns its cancel cell."""
        cell: Cell = [callback]
        self.callbacks.append(cell)
        return cell

    def cancel_callback(self, cell: Cell) -> None:
        """Cancel a registration in O(1) by tombstoning its cell."""
        if cell[0] is None:
            return
        cell[0] = None
        callbacks = self.callbacks
        if callbacks is None:
            return  # already fired; the tombstone alone suffices
        self._dead += 1
        if (
            self._dead > _COMPACT_MIN_DEAD
            and self._dead * 2 > len(callbacks)
        ):
            self.callbacks = [c for c in callbacks if c[0] is not None]
            self._dead = 0

    def live_callbacks(self) -> List[Callable]:
        """The still-registered callbacks (testing/introspection)."""
        return [c[0] for c in (self.callbacks or ()) if c[0] is not None]

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event now; waiters resume at the current sim time."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self.value = value
        if self.callbacks:
            self.engine._push(self.engine.now, _fire, self)
        else:
            # No waiters: never delivered, so never recycled — the
            # caller may still hold the object and inspect its state.
            self.callbacks = None
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated microseconds from now."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(engine)
        self.delay = delay
        engine._push(engine.now + delay, _succeed, self)


class AnyOf(Event):
    """Fires when the first of ``events`` fires; value is that event."""

    __slots__ = ("events", "_cells")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._arm(events)

    def _arm(self, events: Iterable[Event]) -> None:
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf needs at least one event")
        fired = None
        for e in self.events:
            if e._triggered:
                fired = e
                break
        if fired is not None:
            self._cells = ()
            self.succeed(fired)
            return
        self._cells = [e.add_callback(self._child_fired) for e in self.events]

    def _child_fired(self, event: Event) -> None:
        if self._triggered:
            return
        # Detach from the children that did not fire; long-lived events
        # (processor mailboxes, lock grants) would otherwise accumulate
        # one dead callback per wait.
        for child, cell in zip(self.events, self._cells):
            if child is not event:
                child.cancel_callback(cell)
        self.succeed(event)


class Process(Event):
    """A running generator process.  Fires (as an event) on return."""

    __slots__ = (
        "generator",
        "name",
        "daemon",
        "_waiting_on",
        "_wait_cell",
        "_interrupt_pending",
        "_pending_value",
        "_wait_token",
    )

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, Any, Any],
        name: str = "proc",
        daemon: bool = False,
    ):
        super().__init__(engine)
        self.generator = generator
        self.name = name
        self.daemon = daemon
        self._waiting_on: Optional[Event] = None
        self._wait_cell: Optional[Cell] = None
        self._interrupt_pending: Optional[Interrupt] = None
        self._pending_value: Any = None
        self._wait_token = 0
        engine._push(engine.now, Process._start, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name}")
        if self._interrupt_pending is not None:
            return  # coalesce; one wakeup is enough
        self._interrupt_pending = Interrupt(cause)
        self.engine._push(self.engine.now, Process._deliver_interrupt, self)

    # -- internals ----------------------------------------------------

    def _start(self) -> None:
        self._step_send(None)

    def _deliver_interrupt(self) -> None:
        interrupt = self._interrupt_pending
        self._interrupt_pending = None
        if interrupt is None or self._triggered:
            return
        waited = self._waiting_on
        self._waiting_on = None
        if waited is _BUSY_WAIT:
            # Invalidate the in-flight delay entries; a new token makes
            # the stale _delay_fire/_delay_resume pair a no-op.
            self._wait_token += 1
        elif waited is not None:
            waited.cancel_callback(self._wait_cell)
        try:
            target = self.generator.throw(interrupt)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        self._wait_for(target)

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup (we were interrupted away from it)
        self._waiting_on = None
        self._step_send(event.value)

    def _step_send(self, value: Any) -> None:
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        # Bare delays inline (the dominant resume target on full runs);
        # everything else through the shared classifier.
        if type(target) is float or type(target) is int:
            if target < 0:
                raise ValueError(f"negative delay {target!r}")
            self._wait_token += 1
            self._waiting_on = _BUSY_WAIT
            engine = self.engine
            engine._push(
                engine.now + target, _delay_fire, (self, self._wait_token)
            )
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        # Bare delays first: with busy/compute riding the delay channel
        # they outnumber event waits on full runs.
        if type(target) is float or type(target) is int:
            # Bare-delay fast channel: resume with value None after
            # ``target`` microseconds, through the same two queue hops
            # a Timeout would take (see module docstring).
            if target < 0:
                raise ValueError(f"negative delay {target!r}")
            self._wait_token += 1
            self._waiting_on = _BUSY_WAIT
            self.engine._push(
                self.engine.now + target,
                _delay_fire,
                (self, self._wait_token),
            )
            return
        if isinstance(target, Event):
            if target._triggered:
                # Capture the value now rather than at delivery: a fired
                # value can never change, and holding no reference to the
                # event lets pooled events recycle safely.
                self._pending_value = target.value
                self.engine._push(
                    self.engine.now, Process._resume_immediate, self
                )
            else:
                self._waiting_on = target
                self._wait_cell = target.add_callback(self._resume)
            return
        raise TypeError(
            f"process {self.name!r} yielded {target!r}; "
            "processes must yield Event instances or bare delays"
        )

    def _resume_immediate(self) -> None:
        value, self._pending_value = self._pending_value, None
        if self._triggered:
            return
        self._waiting_on = None
        self._step_send(value)


def _delay_fire(pair) -> None:
    """First hop of a bare delay (the Timeout ``_succeed`` stand-in)."""
    proc = pair[0]
    if proc._wait_token != pair[1]:
        return  # interrupted away from this delay
    proc.engine._push(proc.engine.now, _delay_resume, pair)


def _delay_resume(pair) -> None:
    """Second hop of a bare delay (the ``_fire`` -> resume stand-in)."""
    proc = pair[0]
    if proc._wait_token != pair[1]:
        return
    proc._wait_token += 1
    proc._waiting_on = None
    proc._step_send(None)


class Engine:
    """The event loop.

    Two interchangeable schedulers (selected by
    :class:`repro.options.SimOptions`, default calendar queue):

    * **calendar queue** — per-timestamp buckets (``_buckets``: exact
      firing time -> flat ``[func, arg, func, arg, ...]`` list) with a
      heap of distinct times (``_times``).  Same-time schedules append;
      within a bucket, entries fire in push order — identical global
      order to the binary heap's ``(when, seq)``.
    * **binary heap** — the original time-ordered heap of
      ``(when, seq, func, arg)`` tuples (the A/B escape hatch).
    """

    def __init__(self, options=None) -> None:
        if options is None:
            from repro import options as _options_mod

            options = _options_mod.current()
        self.now: float = 0.0
        self.calqueue: bool = bool(getattr(options, "calqueue", True))
        # binary-heap state
        self._heap: List = []
        self._seq = 0
        # calendar-queue state
        self._times: List[float] = []
        self._buckets: dict = {}
        self._processes: List[Process] = []
        # free lists for pooled events (calendar-queue mode only; the
        # escape hatch restores per-event allocation wholesale)
        self._timeout_pool: List[Timeout] = []
        self._anyof_pool: List[AnyOf] = []
        if self.calqueue:
            self._push = self._push_bucket  # type: ignore[method-assign]

    # -- public construction helpers ----------------------------------

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: str = "proc",
        daemon: bool = False,
    ) -> Process:
        proc = Process(self, generator, name, daemon)
        self._processes.append(proc)
        return proc

    def call_at(self, when: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute sim time ``when``."""
        if when < self.now:
            raise ValueError("cannot schedule in the past")
        self._push(when, _invoke, action)

    def schedule(
        self, when: float, func: Callable[[Any], None], arg: Any = None
    ) -> None:
        """Run ``func(arg)`` at absolute sim time ``when``.

        The closure-free sibling of :meth:`call_at`: hot paths
        (messaging continuations, lock grants, barrier releases) push
        a plain ``(func, arg)`` pair instead of building a lambda.
        """
        if when < self.now:
            raise ValueError("cannot schedule in the past")
        self._push(when, func, arg)

    def succeed_at(self, when: float, event: Event) -> None:
        """Fire ``event`` (with no value) at absolute sim time ``when``."""
        if when < self.now:
            raise ValueError("cannot schedule in the past")
        self._push(when, _succeed, event)

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float) -> Timeout:
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay!r}")
            t = pool.pop()
            t._reset_for_reuse()
            t.delay = delay
            self._push(self.now + delay, _succeed, t)
            return t
        t = Timeout(self, delay)
        if self.calqueue:
            t._recycle_list = pool
        return t

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        pool = self._anyof_pool
        if pool:
            a = pool.pop()
            a._reset_for_reuse()
            a._arm(events)
            return a
        a = AnyOf(self, events)
        if self.calqueue:
            a._recycle_list = pool
        return a

    # -- running -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until no work remains (or ``until`` sim time); return now."""
        if self.calqueue:
            exhausted = self._run_calqueue(until)
        else:
            exhausted = self._run_heap(until)
        if not exhausted:
            return self.now  # stopped at ``until`` with work pending
        stuck = [
            p.name for p in self._processes if p.is_alive and not p.daemon
        ]
        if stuck:
            raise DeadlockError(
                f"no events pending but processes still alive: {stuck}"
            )
        return self.now

    def _run_heap(self, until: Optional[float]) -> bool:
        heap = self._heap
        pop = heapq.heappop
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                self.now = until
                return False
            _when, _seq, func, arg = pop(heap)
            if when < self.now:
                raise RuntimeError("event scheduled in the past")
            self.now = when
            func(arg)
        return True

    def _run_calqueue(self, until: Optional[float]) -> bool:
        times = self._times
        buckets = self._buckets
        pop = heapq.heappop
        while times:
            when = times[0]
            if until is not None and when > until:
                self.now = until
                return False
            if when < self.now:
                raise RuntimeError("event scheduled in the past")
            pop(times)
            self.now = when
            # Entries scheduled for this same time *during* delivery
            # open a fresh bucket (this one is already detached), which
            # the loop drains on its next iteration — preserving global
            # push order exactly.
            bucket = buckets.pop(when)
            n = len(bucket)
            i = 0
            while i < n:
                func = bucket[i]
                arg = bucket[i + 1]
                i += 2
                if func is _delay_fire:
                    # A bare delay's first hop.  Its second hop would be
                    # appended to the fresh bucket for this same time;
                    # when this is the last entry of the current bucket
                    # and no fresh bucket exists, that append position
                    # is provably "run next" — so skip the heap round
                    # trip and deliver the resume inline.  (Identical
                    # firing order either way; the detour is only an
                    # allocation/heap saving.)
                    if i == n and when not in buckets:
                        _delay_resume(arg)
                    else:
                        _delay_fire(arg)
                else:
                    func(arg)
        return True

    # -- internals -----------------------------------------------------

    def _push(self, when: float, func: Callable[[Any], None], arg: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, func, arg))

    def _push_bucket(
        self, when: float, func: Callable[[Any], None], arg: Any
    ) -> None:
        bucket = self._buckets.get(when)
        if bucket is None:
            heapq.heappush(self._times, when)
            self._buckets[when] = [func, arg]
        else:
            bucket.append(func)
            bucket.append(arg)
