"""The pluggable sharing-policy layer: what the unit of sharing is,
how units are fetched, and where their homes live.

The paper's protocols hard-code three choices: coherence acts on 8 KB
VM pages, data moves strictly on demand (one unit per fault), and home
assignment is first-touch.  This module makes each choice a named
policy knob on :class:`~repro.config.RunConfig`:

``granularity``
    The unit of sharing — sub-page blocks, the VM page, or multi-page
    regions.  The coherence stack (permission bitmaps, twins, diffs,
    directory entries, fetches) is keyed on *units* throughout; at the
    default ``page`` the unit **is** the VM page and every simulated
    result is bit-identical to the pre-policy tree.

``prefetch``
    Software prefetch issued after a demand fault: ``none`` (the
    paper), ``seq`` (fetch the next units after a fault), or ``stride``
    (a per-processor stride predictor that fetches ahead once a stride
    repeats).  Prefetched units are validated to READ without paying
    the ``page_fault`` kernel trap — the win the user-level-DSM
    prefetch literature reports on RDMA-class networks.

``homing``
    Home/manager placement: ``first-touch`` (the paper's Cashmere
    policy), ``round-robin`` (page-interleaved), or ``dynamic``
    (first-touch plus re-homing to a node that establishes a remote
    fetch majority).  TreadMarks has no data home (diffs live with
    their writers); its round-robin *manager* map is unaffected by
    this knob (see docs/POLICIES.md).

Every knob changes simulated results (except the documented identity
at the default triple), so all three enter the result-cache key.  The
knob tables in ``docs/POLICIES.md`` are enforced against
:func:`describe_granularity` / :func:`describe_prefetch` /
:func:`describe_homing` by ``tests/test_policy_docs.py``.

This module is deliberately import-light (stdlib only): ``config.py``
imports it for validation, so it must not import anything from
``repro``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Accepted ``granularity`` values, coarsest default last in docs order.
GRANULARITIES = ("block256", "block1k", "block2k", "page", "region2", "region4")

#: Unit size in bytes for the fixed sub-page granularities; the
#: page-relative ones (``page``/``region2``/``region4``) resolve against
#: the cluster's VM page size in :func:`resolve_unit_size`.
_BLOCK_BYTES = {"block256": 256, "block1k": 1024, "block2k": 2048}
_REGION_PAGES = {"page": 1, "region2": 2, "region4": 4}

#: Accepted ``prefetch`` values.
PREFETCHES = ("none", "seq", "stride")

#: Units fetched ahead per demand fault by the sequential prefetcher.
SEQ_PREFETCH_DEPTH = 4

#: Units fetched ahead per confirmed-stride fault by the stride
#: prefetcher, and the number of identical consecutive strides that
#: confirm a stream.
STRIDE_PREFETCH_DEPTH = 2
STRIDE_CONFIRM = 2

#: Accepted ``homing`` values.
HOMINGS = ("first-touch", "round-robin", "dynamic")

#: Dynamic re-homing trigger: a non-home node that accumulates this
#: many fetches of one unit since its last (re-)homing — strictly more
#: than any other node over the same window — becomes the new home.
MIGRATE_AFTER = 4

#: Migrations allowed per unit over a run, bounding ping-pong.
MIGRATE_LIMIT = 8


def validate_granularity(value: str) -> str:
    if value not in GRANULARITIES:
        known = ", ".join(GRANULARITIES)
        raise ValueError(
            f"unknown granularity {value!r}; known: {known}"
        )
    return value


def validate_prefetch(value: str) -> str:
    if value not in PREFETCHES:
        known = ", ".join(PREFETCHES)
        raise ValueError(f"unknown prefetch {value!r}; known: {known}")
    return value


def validate_homing(value: str) -> str:
    if value not in HOMINGS:
        known = ", ".join(HOMINGS)
        raise ValueError(f"unknown homing {value!r}; known: {known}")
    return value


def resolve_unit_size(granularity: str, vm_page_size: int) -> Optional[int]:
    """The sharing-unit size in bytes, or ``None`` for the VM page.

    ``None`` (not ``vm_page_size``) marks the default so callers can
    build the address space exactly as the pre-policy tree did — the
    bit-identity guarantee is "same construction", not merely "same
    value".  A resolved unit must divide the VM page or be a whole
    multiple of it, so every VM page maps to whole units (or units to
    whole pages) and the unit↔page mapping stays exact.
    """
    validate_granularity(granularity)
    if granularity == "page":
        return None
    if granularity in _BLOCK_BYTES:
        unit = _BLOCK_BYTES[granularity]
    else:
        unit = _REGION_PAGES[granularity] * vm_page_size
    if unit < 64 or unit % 8:
        raise ValueError(
            f"granularity {granularity!r} resolves to {unit} bytes; "
            "units must be multiples of 8 and >= 64"
        )
    if vm_page_size % unit and unit % vm_page_size:
        raise ValueError(
            f"granularity {granularity!r} ({unit} bytes) neither divides "
            f"nor is a multiple of the {vm_page_size}-byte VM page"
        )
    return unit


# -- prefetchers --------------------------------------------------------


class SeqPrefetcher:
    """Fetch the next :data:`SEQ_PREFETCH_DEPTH` units after a fault.

    Stateless: the prediction is a pure function of the faulting unit,
    so it is trivially deterministic across processes and replays.
    """

    def predict(self, pid: int, unit: int, n_units: int) -> List[int]:
        hi = min(unit + 1 + SEQ_PREFETCH_DEPTH, n_units)
        return list(range(unit + 1, hi))


class StridePrefetcher:
    """Classic per-processor stride predictor.

    Tracks each processor's last faulting unit and last stride; once
    the same non-zero stride repeats :data:`STRIDE_CONFIRM` times the
    stream is confirmed and the next :data:`STRIDE_PREFETCH_DEPTH`
    units along it are fetched.  A stride break resets confirmation.
    State is keyed by pid only — deterministic because each simulated
    processor's fault sequence is deterministic.
    """

    def __init__(self) -> None:
        self._last: Dict[int, int] = {}
        self._stride: Dict[int, int] = {}
        self._confirmed: Dict[int, int] = {}

    def predict(self, pid: int, unit: int, n_units: int) -> List[int]:
        last = self._last.get(pid)
        self._last[pid] = unit
        if last is None:
            return []
        stride = unit - last
        if stride != 0 and stride == self._stride.get(pid):
            self._confirmed[pid] = self._confirmed.get(pid, 0) + 1
        else:
            self._confirmed[pid] = 0
        self._stride[pid] = stride
        if stride == 0 or self._confirmed[pid] < STRIDE_CONFIRM:
            return []
        out = []
        nxt = unit
        for _ in range(STRIDE_PREFETCH_DEPTH):
            nxt += stride
            if not (0 <= nxt < n_units):
                break
            out.append(nxt)
        return out


def make_prefetcher(prefetch: str):
    """A fresh prefetcher instance for one run, or ``None`` for
    ``"none"`` — and ``None`` means the protocols never call the
    prefetch hook, keeping the default bit-identical by construction."""
    validate_prefetch(prefetch)
    if prefetch == "none":
        return None
    if prefetch == "seq":
        return SeqPrefetcher()
    return StridePrefetcher()


# -- knob descriptions (docs/POLICIES.md contract) ----------------------


def describe_granularity() -> Dict[str, Dict[str, str]]:
    """Constants ``docs/POLICIES.md`` must table, per granularity."""
    out: Dict[str, Dict[str, str]] = {}
    for name in GRANULARITIES:
        if name in _BLOCK_BYTES:
            unit = f"{_BLOCK_BYTES[name]} B"
        elif name == "page":
            unit = "1 VM page"
        else:
            unit = f"{_REGION_PAGES[name]} VM pages"
        out[name] = {"unit": unit}
    return out


def describe_prefetch() -> Dict[str, Dict[str, str]]:
    """Constants ``docs/POLICIES.md`` must table, per prefetch mode."""
    return {
        "none": {"depth": "0"},
        "seq": {"depth": str(SEQ_PREFETCH_DEPTH)},
        "stride": {
            "depth": (
                f"{STRIDE_PREFETCH_DEPTH} after {STRIDE_CONFIRM} "
                "confirming strides"
            )
        },
    }


def describe_homing() -> Dict[str, Dict[str, str]]:
    """Constants ``docs/POLICIES.md`` must table, per homing mode."""
    return {
        "first-touch": {"trigger": "first fault"},
        "round-robin": {"trigger": "unit index (HLRC) / assignment order (CSM)"},
        "dynamic": {
            "trigger": (
                f"{MIGRATE_AFTER} remote fetches (majority), "
                f"max {MIGRATE_LIMIT} moves"
            )
        },
    }
