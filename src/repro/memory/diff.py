"""Word-granularity run-length diffs, exactly as TreadMarks makes them.

A diff is the run-length encoding of the words that differ between a
page's *twin* (the pristine copy saved at the first write) and its
current contents.  Diffs are created lazily when another processor asks
for a page's changes, and applied in causal order at the requester.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

WORD = 8  # Alpha quadword, the diffing granularity

# Each encoded run carries one descriptor word (offset + length) plus the
# changed data itself.
RUN_HEADER_BYTES = 8


@dataclass(frozen=True)
class Diff:
    """Changed byte runs of one page: ``[(byte_offset, data), ...]``."""

    runs: Tuple[Tuple[int, bytes], ...]

    @property
    def encoded_size(self) -> int:
        """Bytes on the wire: run descriptors plus changed data."""
        return sum(RUN_HEADER_BYTES + len(data) for _, data in self.runs)

    @property
    def dirty_bytes(self) -> int:
        return sum(len(data) for _, data in self.runs)

    @property
    def is_empty(self) -> bool:
        return not self.runs


def make_diff(
    twin: np.ndarray, current: np.ndarray, scratch: np.ndarray = None
) -> Diff:
    """Encode the words of ``current`` that differ from ``twin``.

    Both arguments are uint8 arrays of the same page-sized, word-aligned
    length.  Run boundaries are found entirely in NumPy: a run starts
    wherever the gap between consecutive changed-word indices exceeds
    one, so the Python-level work is one loop over *runs*, not words.

    ``scratch`` — an optional reusable bool array of one element per
    word — receives the changed-word mask, avoiding the per-call
    allocation on the diff-serving hot path (wall-clock only; callers
    own the buffer and must not hold the mask across calls).
    """
    if twin.shape != current.shape:
        raise ValueError("twin and current page must be the same size")
    if len(twin) % WORD:
        raise ValueError(f"page size must be a multiple of {WORD}")
    changed = np.not_equal(
        twin.view(np.uint64), current.view(np.uint64), out=scratch
    )
    idx = np.flatnonzero(changed)
    if idx.size == 0:
        return Diff(())
    breaks = np.flatnonzero(np.diff(idx) != 1)
    starts = np.empty(breaks.size + 1, idx.dtype)
    stops = np.empty(breaks.size + 1, idx.dtype)
    starts[0] = idx[0]
    starts[1:] = idx[breaks + 1]
    stops[:-1] = idx[breaks]
    stops[-1] = idx[-1]
    starts *= WORD
    stops = (stops + 1) * WORD
    runs: List[Tuple[int, bytes]] = [
        (start, current[start:stop].tobytes())
        for start, stop in zip(starts.tolist(), stops.tolist())
    ]
    return Diff(tuple(runs))


def apply_diff(target: np.ndarray, diff: Diff) -> None:
    """Merge ``diff`` into ``target`` (a page-sized uint8 array)."""
    for offset, data in diff.runs:
        if offset + len(data) > len(target):
            raise ValueError("diff run exceeds page bounds")
        target[offset : offset + len(data)] = np.frombuffer(data, np.uint8)


def apply_diff_versioned(
    targets,
    diff: Diff,
    word_tags: np.ndarray,
    tag: int,
) -> None:
    """Merge ``diff`` into each array in ``targets``, word-versioned.

    A word is overwritten only if ``tag`` exceeds its recorded version;
    winning words take the new version.  Cumulative diffs can leak a
    write from an interval later than the one a requester asked for, so
    an *older* concurrent diff arriving afterwards must not regress such
    words — for race-free programs, writes to one word are totally
    ordered by synchronization, and the causal tags preserve that order
    (see ``TmkPage.lamport``).

    The runs of one diff never overlap (run-length-encoding invariant),
    so all runs are merged in a single vectorized pass: one gather of
    the word versions, one scatter of the winning words per target.
    """
    runs = diff.runs
    if not runs:
        return
    page_len = len(targets[0])
    for offset, data in runs:
        if offset + len(data) > page_len:
            raise ValueError("diff run exceeds page bounds")
    if len(runs) == 1:
        offset, data = runs[0]
        first = offset // WORD
        n_words = len(data) // WORD
        tag_seg = word_tags[first : first + n_words]
        if n_words and tag_seg.max() < tag:
            # Every word wins (the overwhelmingly common case for
            # race-free programs): contiguous slice stores, no index
            # vectors, no boolean gathers.
            tag_seg[:] = tag
            flat = np.frombuffer(data, np.uint8)
            end = offset + len(data)
            for target in targets:
                target[offset:end] = flat
            return
        word_idx = np.arange(first, first + n_words)
        raw = np.frombuffer(data, np.uint8).reshape(n_words, WORD)
    else:
        word_idx = np.concatenate([
            np.arange(offset // WORD, (offset + len(data)) // WORD)
            for offset, data in runs
        ])
        raw = np.frombuffer(
            b"".join(data for _, data in runs), np.uint8
        ).reshape(-1, WORD)
    winners = word_tags[word_idx] < tag
    if winners.all():
        win_idx, win_raw = word_idx, raw
        word_tags[win_idx] = tag
    elif not winners.any():
        return
    else:
        win_idx = word_idx[winners]
        word_tags[win_idx] = tag
        win_raw = raw[winners]
    for target in targets:
        if len(target) % WORD == 0 and target.flags.c_contiguous:
            view = target.view()
            view.shape = (-1, WORD)
            view[win_idx] = win_raw
        else:  # odd-sized or strided target: scatter byte-by-byte
            byte_idx = (
                win_idx[:, None] * WORD + np.arange(WORD)
            ).ravel()
            target[byte_idx] = win_raw.ravel()
