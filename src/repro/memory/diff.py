"""Word-granularity run-length diffs, exactly as TreadMarks makes them.

A diff is the run-length encoding of the words that differ between a
page's *twin* (the pristine copy saved at the first write) and its
current contents.  Diffs are created lazily when another processor asks
for a page's changes, and applied in causal order at the requester.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

WORD = 8  # Alpha quadword, the diffing granularity

# Each encoded run carries one descriptor word (offset + length) plus the
# changed data itself.
RUN_HEADER_BYTES = 8


@dataclass(frozen=True)
class Diff:
    """Changed byte runs of one page: ``[(byte_offset, data), ...]``."""

    runs: Tuple[Tuple[int, bytes], ...]

    @property
    def encoded_size(self) -> int:
        """Bytes on the wire: run descriptors plus changed data."""
        return sum(RUN_HEADER_BYTES + len(data) for _, data in self.runs)

    @property
    def dirty_bytes(self) -> int:
        return sum(len(data) for _, data in self.runs)

    @property
    def is_empty(self) -> bool:
        return not self.runs


def make_diff(twin: np.ndarray, current: np.ndarray) -> Diff:
    """Encode the words of ``current`` that differ from ``twin``.

    Both arguments are uint8 arrays of the same page-sized, word-aligned
    length.
    """
    if twin.shape != current.shape:
        raise ValueError("twin and current page must be the same size")
    if len(twin) % WORD:
        raise ValueError(f"page size must be a multiple of {WORD}")
    changed = twin.view(np.uint64) != current.view(np.uint64)
    if not changed.any():
        return Diff(())
    idx = np.flatnonzero(changed)
    runs: List[Tuple[int, bytes]] = []
    run_start = idx[0]
    prev = idx[0]
    for word in idx[1:]:
        if word != prev + 1:
            runs.append(_encode_run(current, run_start, prev))
            run_start = word
        prev = word
    runs.append(_encode_run(current, run_start, prev))
    return Diff(tuple(runs))


def _encode_run(
    current: np.ndarray, first_word: int, last_word: int
) -> Tuple[int, bytes]:
    start = int(first_word) * WORD
    stop = (int(last_word) + 1) * WORD
    return start, current[start:stop].tobytes()


def apply_diff(target: np.ndarray, diff: Diff) -> None:
    """Merge ``diff`` into ``target`` (a page-sized uint8 array)."""
    for offset, data in diff.runs:
        if offset + len(data) > len(target):
            raise ValueError("diff run exceeds page bounds")
        target[offset : offset + len(data)] = np.frombuffer(data, np.uint8)


def apply_diff_versioned(
    targets,
    diff: Diff,
    word_tags: np.ndarray,
    tag: int,
) -> None:
    """Merge ``diff`` into each array in ``targets``, word-versioned.

    A word is overwritten only if ``tag`` exceeds its recorded version;
    winning words take the new version.  Cumulative diffs can leak a
    write from an interval later than the one a requester asked for, so
    an *older* concurrent diff arriving afterwards must not regress such
    words — for race-free programs, writes to one word are totally
    ordered by synchronization, and the causal tags preserve that order
    (see ``TmkPage.lamport``).
    """
    for offset, data in diff.runs:
        if offset + len(data) > len(targets[0]):
            raise ValueError("diff run exceeds page bounds")
        first = offset // WORD
        n_words = len(data) // WORD
        tags = word_tags[first : first + n_words]
        winners = tags < tag
        if not winners.any():
            continue
        tags[winners] = tag
        raw = np.frombuffer(data, np.uint8).reshape(n_words, WORD)
        for target in targets:
            view = target[offset : offset + len(data)].reshape(n_words, WORD)
            view[winners] = raw[winners]
