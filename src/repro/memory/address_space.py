"""The shared virtual address space, divided into sharing units.

The address space is a flat byte range carved into aligned regions.
It owns the *backing store*: the initial contents of every unit, set up
by the application's (untimed) initialization phase, exactly as the
paper's applications initialize shared data before the timed parallel
section begins.

Since PR 10 the "page" the coherence stack indexes by is really the
*sharing unit* of the run's :mod:`~repro.memory.policy` — a sub-page
block, the VM page (the default, and then everything below is exactly
the paper's page machinery), or a multi-page region.  ``page_size``
deliberately keeps its name and means "unit size": every consumer of
the space's page math (permission bitmaps, span faulting, twins,
diffs, directory entries, fetch sizes) re-keys on units with no
further changes.  The true VM page is ``vm_page_size`` — the value
layout decisions (app padding, region alignment) must use, so data
layout never varies with the sharing policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np


@dataclass(frozen=True)
class SharedRegion:
    """A named, page-aligned slice of the shared address space."""

    name: str
    offset: int
    nbytes: int
    space: "AddressSpace"

    @property
    def first_page(self) -> int:
        return self.offset // self.space.page_size

    @property
    def n_pages(self) -> int:
        ps = self.space.page_size
        return (self.nbytes + ps - 1) // ps

    @property
    def pages(self) -> range:
        return range(self.first_page, self.first_page + self.n_pages)

    def initialize(self, data: np.ndarray) -> None:
        """Set the region's initial contents (untimed init phase)."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        if raw.nbytes > self.nbytes:
            raise ValueError(
                f"{raw.nbytes} bytes do not fit region {self.name!r} "
                f"of {self.nbytes} bytes"
            )
        self.space.write_backing(self.offset, raw)

    def read_backing(self, dtype, count: int) -> np.ndarray:
        """Read the region's backing contents as ``count`` items."""
        itemsize = np.dtype(dtype).itemsize
        raw = self.space.read_backing(self.offset, count * itemsize)
        return raw.view(dtype)


class AddressSpace:
    """Flat shared byte space: allocation, unit math, backing store.

    ``page_size`` is the *sharing unit* size (see the module
    docstring); ``vm_page_size`` is the hardware VM page.  They are
    equal unless a non-default granularity passes ``unit_size``.
    """

    def __init__(self, page_size: int = 8192, unit_size: int = None):
        if page_size < 64 or page_size % 8:
            raise ValueError("page size must be a multiple of 8 and >= 64")
        self.vm_page_size = page_size
        if unit_size is not None:
            if unit_size < 64 or unit_size % 8:
                raise ValueError(
                    "unit size must be a multiple of 8 and >= 64"
                )
            if page_size % unit_size and unit_size % page_size:
                raise ValueError(
                    f"unit size {unit_size} neither divides nor is a "
                    f"multiple of the {page_size}-byte VM page"
                )
        self.page_size = unit_size if unit_size is not None else page_size
        # Regions align to the coarser of VM page and unit: sub-page
        # units keep the exact pre-policy layout (page alignment), and
        # multi-page units keep ``_brk`` a whole number of units so the
        # unit count below is exact.
        self._align = max(self.page_size, self.vm_page_size)
        self._brk = 0
        self.regions: Dict[str, SharedRegion] = {}
        self._backing: Dict[int, np.ndarray] = {}

    # -- allocation -------------------------------------------------------

    def alloc(self, name: str, nbytes: int) -> SharedRegion:
        """Allocate an aligned region of at least ``nbytes``."""
        if nbytes <= 0:
            raise ValueError("region must have positive size")
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        ps = self._align
        size = ((nbytes + ps - 1) // ps) * ps
        region = SharedRegion(name, self._brk, size, self)
        self._brk += size
        self.regions[name] = region
        return region

    @property
    def n_pages(self) -> int:
        return self._brk // self.page_size

    @property
    def total_bytes(self) -> int:
        return self._brk

    # -- page math ----------------------------------------------------------

    def page_of(self, offset: int) -> int:
        return offset // self.page_size

    def page_spans(
        self, offset: int, nbytes: int
    ) -> Iterator[Tuple[int, int, int]]:
        """Split ``[offset, offset+nbytes)`` into per-page pieces.

        Yields ``(page_index, start_within_page, length)``.
        """
        if offset < 0 or nbytes < 0 or offset + nbytes > self._brk:
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) outside address space"
            )
        ps = self.page_size
        pos = offset
        end = offset + nbytes
        while pos < end:
            page = pos // ps
            start = pos - page * ps
            length = min(ps - start, end - pos)
            yield page, start, length
            pos += length

    def pages_in(self, offset: int, nbytes: int) -> List[int]:
        return [page for page, _, _ in self.page_spans(offset, nbytes)]

    def span_bounds(self, offset: int, nbytes: int) -> Tuple[int, int]:
        """Page-index bounds ``[lo, hi)`` of ``[offset, offset+nbytes)``.

        The O(1) counterpart of :meth:`page_spans` for the fast path:
        two divisions instead of a generator.  ``nbytes == 0`` yields an
        empty range (``lo == hi``), matching ``page_spans`` yielding
        nothing.
        """
        if offset < 0 or nbytes < 0 or offset + nbytes > self._brk:
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) outside address space"
            )
        ps = self.page_size
        lo = offset // ps
        if nbytes == 0:
            return lo, lo
        return lo, (offset + nbytes - 1) // ps + 1

    def page_spans_list(
        self, offset: int, nbytes: int
    ) -> List[Tuple[int, int, int]]:
        """:meth:`page_spans` materialized as a list, computed without a
        generator (the slow path walks it twice: faults, then bytes)."""
        lo, hi = self.span_bounds(offset, nbytes)
        ps = self.page_size
        if hi - lo == 1:  # one page: the overwhelmingly common case
            return [(lo, offset - lo * ps, nbytes)]
        end = offset + nbytes
        spans = []
        pos = offset
        for page in range(lo, hi):
            start = pos - page * ps
            length = min(ps - start, end - pos)
            spans.append((page, start, length))
            pos += length
        return spans

    # -- backing store ----------------------------------------------------

    def backing_page(self, page: int) -> np.ndarray:
        """The initial contents of ``page`` (zeros until written)."""
        if not (0 <= page < self.n_pages):
            raise ValueError(f"page {page} out of range")
        data = self._backing.get(page)
        if data is None:
            data = np.zeros(self.page_size, np.uint8)
            self._backing[page] = data
        return data

    def write_backing(self, offset: int, raw: np.ndarray) -> None:
        pos = 0
        for page, start, length in self.page_spans(offset, raw.nbytes):
            self.backing_page(page)[start : start + length] = raw[
                pos : pos + length
            ]
            pos += length

    def read_backing(self, offset: int, nbytes: int) -> np.ndarray:
        out = np.empty(nbytes, np.uint8)
        pos = 0
        for page, start, length in self.page_spans(offset, nbytes):
            out[pos : pos + length] = self.backing_page(page)[
                start : start + length
            ]
            pos += length
        return out
