"""Page protection states, as a hardware MMU would hold them.

"Page" here (and throughout the protocol layer) means one *coherence
unit* of the address space — the VM page by default, but a sub-page
block or multi-page region under a non-default granularity policy
(docs/POLICIES.md).  Sub-page protection is the policy layer's one
idealisation: real MMUs protect whole pages, so a fine-grained port
would need ECC tricks or instrumentation (Shasta-style) instead.
"""

from __future__ import annotations

import enum


class Protection(enum.IntEnum):
    """Access rights of one processor's mapping of one page.

    Ordering is meaningful: ``NONE < READ < READ_WRITE``.
    """

    NONE = 0
    READ = 1
    READ_WRITE = 2

    def allows_read(self) -> bool:
        return self >= Protection.READ

    def allows_write(self) -> bool:
        return self >= Protection.READ_WRITE
