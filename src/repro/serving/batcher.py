"""Cold-point batching over one long-lived worker pool.

Points that miss both the cache and the singleflight are *cold*: a
simulation has to run.  Spawning execution machinery per request is
what the naive path does (and what makes it slow); the batcher instead
groups cold arrivals inside a small window — one timer, not one pool,
per batch — and fans the whole group across a worker pool that lives
as long as the server (:func:`repro.harness.parallel.persistent_pool`).

Each point's completion resolves independently: the batch groups
*submission*, never *completion*, so a quick point never waits for a
slow batchmate and the server streams results back as they land.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, List, Optional, Tuple


class ColdPointBatcher:
    """Window-batched admission to a persistent executor.

    ``submit``
        ``spec -> concurrent.futures.Future`` — typically
        ``pool.submit(execute_point_timed, spec)`` bound to the
        server's long-lived pool.
    ``on_done``
        ``(key, outcome, error) -> None`` — called on the event loop as
        each point completes; the service uses it to store the result
        and resolve the singleflight.
    ``window_s``
        Arrival window: the first admission after a flush arms one
        timer; everything admitted before it fires joins the batch.
        ``0`` still batches arrivals from the same event-loop
        iteration (the timer fires on the next).
    ``max_batch``
        Flush early once this many points are pending, so a burst
        never waits out the window behind a full batch.
    """

    def __init__(
        self,
        submit: Callable,
        on_done: Callable,
        window_s: float = 0.005,
        max_batch: int = 32,
    ) -> None:
        self._submit = submit
        self._on_done = on_done
        self.window_s = window_s
        self.max_batch = max(1, max_batch)
        self._pending: List[Tuple[str, Any]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._loop = asyncio.get_running_loop()
        self._inflight: set = set()
        #: Batches flushed / points flushed / largest single flush.
        self.batches = 0
        self.points = 0
        self.largest_batch = 0

    @property
    def inflight(self) -> int:
        """Points submitted to the pool and not yet completed."""
        return len(self._inflight)

    def admit(self, key: str, spec) -> None:
        """Queue one cold point; it flushes within the window."""
        self._pending.append((key, spec))
        if len(self._pending) >= self.max_batch:
            self.flush()
        elif self._timer is None:
            self._timer = self._loop.call_later(self.window_s, self.flush)

    def flush(self) -> None:
        """Close the current window and submit its batch to the pool."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.batches += 1
        self.points += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        for key, spec in batch:
            try:
                pool_future = self._submit(spec)
            except Exception as exc:  # pool already shut down
                self._on_done(key, None, exc)
                continue
            task = self._loop.create_task(
                self._finish(key, asyncio.wrap_future(pool_future))
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _finish(self, key: str, future: asyncio.Future) -> None:
        try:
            outcome = await future
        except Exception as exc:
            self._on_done(key, None, exc)
        else:
            self._on_done(key, outcome, None)

    async def drain(self) -> None:
        """Flush now and wait for every submitted point to complete."""
        self.flush()
        while self._inflight:
            await asyncio.gather(*list(self._inflight))
