"""One in-flight computation per fingerprint, N awaiters.

The classic singleflight pattern, asyncio flavour: the first request
for a cache key becomes the *leader* and owns the computation; every
identical request that arrives before the leader finishes awaits the
same :class:`asyncio.Future` instead of starting another simulation.
The simulator is deterministic, so the N awaiters are not getting an
approximation — they get exactly the bytes their own run would have
produced, minus the run.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Tuple


class SingleFlight:
    """In-flight futures keyed by result-cache fingerprint."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}
        #: Requests that joined an existing flight instead of leading.
        self.coalesced = 0
        #: Flights started (leaders admitted downstream).
        self.led = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def begin(self, key: str) -> Tuple[asyncio.Future, bool]:
        """Join the flight for ``key``; returns ``(future, leader)``.

        ``leader`` is True for exactly the first caller per key: that
        caller must arrange for :meth:`resolve` or :meth:`fail` to be
        called (typically by admitting the point to the batcher).
        """
        future = self._inflight.get(key)
        if future is not None:
            self.coalesced += 1
            return future, False
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.led += 1
        return future, True

    def resolve(self, key: str, outcome) -> None:
        """Deliver ``outcome`` to every awaiter and retire the flight."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(outcome)

    def fail(self, key: str, error: BaseException) -> None:
        """Deliver ``error`` to every awaiter and retire the flight."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(error)

    def outstanding(self) -> List[asyncio.Future]:
        """The live futures (graceful shutdown drains these)."""
        return list(self._inflight.values())
