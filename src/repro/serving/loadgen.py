"""Synthetic multi-tenant load for the experiment server.

The workload models what the ROADMAP's north-star service sees: many
clients, a zipf-ish point popularity curve (a few hot points absorb
most requests; a long tail stays cold), arrivals bursty enough to
coalesce.  :func:`run_load` drives any client exposing
``resolve(request)`` — in-process or HTTP, shared or per-client via
``client_factory`` (the keep-alive mode: every simulated client owns
one persistent session) — and reports throughput, latency
percentiles, coalesce rate, and cache-hit rate; ``bad_every`` salts
the schedule with a known-invalid request so negative-cache behaviour
is measured under load.  :func:`verify_against_direct` then replays
every distinct point through plain :func:`repro.api.run_point` and
byte-compares the served results, and :func:`naive_baseline` measures
the pre-serving alternative (one fresh subprocess per request) that
the ≥5x throughput claim in ``BENCH_PR8.json`` was made against.
:func:`bench_serve` with ``compare_connections=True`` runs the same
schedule over per-request connections and over keep-alive sessions,
isolating the connection-setup cost (``BENCH_PR9.json``).

Everything is seeded: the same (seed, clients, requests) schedule hits
the same points in the same order.
"""

from __future__ import annotations

import asyncio
import os
import random
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.serving.codec import ServingError

#: The deterministic invalid request ``bad_every`` injects.  One fixed
#: body, so its first rejection populates the negative cache and every
#: repeat is served from it.
BAD_POINT: Dict[str, Any] = {"app": "no-such-app", "nprocs": 1}


def default_point_set(
    scale: str = "tiny", extra_cold: bool = True
) -> List[Dict[str, Any]]:
    """A mixed hot/cold request set over fast tiny-scale points.

    Ordered hottest-first (rank 0 gets the largest zipf weight): the
    sor/water front is the hot set; the gauss/lu tail stays cold
    enough that most of its requests arrive after the cache warmed.
    """
    points: List[Dict[str, Any]] = []
    for app in ("sor", "water"):
        for variant in ("csm_poll", "tmk_mc_poll"):
            for nprocs in (4, 1):
                points.append(
                    {
                        "app": app,
                        "variant": variant,
                        "nprocs": nprocs,
                        "scale": scale,
                    }
                )
    if extra_cold:
        for app in ("gauss", "lu"):
            for variant in ("csm_poll", "tmk_mc_poll"):
                points.append(
                    {
                        "app": app,
                        "variant": variant,
                        "nprocs": 4,
                        "scale": scale,
                    }
                )
    return points


def zipf_weights(n: int, s: float = 1.2) -> List[float]:
    """Normalised zipf(s) weights for ranks 0..n-1."""
    raw = [1.0 / (rank + 1) ** s for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


async def run_load(
    client,
    points: Optional[List[Dict[str, Any]]] = None,
    clients: int = 100,
    requests_per_client: int = 2,
    zipf_s: float = 1.2,
    seed: int = 1234,
    concurrency: int = 256,
    client_factory: Optional[Callable[[], Any]] = None,
    bad_every: int = 0,
) -> Dict[str, Any]:
    """Fire the synthetic fleet and collect the serving report.

    ``clients`` concurrent tasks each issue ``requests_per_client``
    sequential requests drawn from the zipf distribution over
    ``points``.  ``concurrency`` bounds simultaneous in-flight
    requests (HTTP mode: open sockets).  ``client_factory`` gives each
    simulated client its own transport — the keep-alive mode, where a
    client's session holds one connection across its requests — and
    ``client`` may then be None.  ``bad_every`` replaces every Nth
    request (global schedule order) with :data:`BAD_POINT`; its
    HTTP 400s count as ``invalid_rejected``, not failures.  The
    report's ``digests`` map each point index to the set of result
    digests observed — exactly one per point unless determinism broke.
    """
    points = points if points is not None else default_point_set()
    weights = zipf_weights(len(points), zipf_s)
    rng = random.Random(seed)
    schedule = [
        rng.choices(range(len(points)), weights=weights,
                    k=requests_per_client)
        for _ in range(clients)
    ]
    bad_requests = 0
    if bad_every:
        position = 0
        for indices in schedule:
            for j in range(len(indices)):
                position += 1
                if position % bad_every == 0:
                    indices[j] = -1  # -1 marks the invalid request
                    bad_requests += 1
    gate = asyncio.Semaphore(concurrency)
    latencies: List[float] = []
    sources: Dict[str, int] = {}
    digests: Dict[int, set] = {}
    failures: List[str] = []
    invalid_rejected = 0
    result_bytes: Dict[int, bytes] = {}

    async def one_client(point_indices: List[int]) -> None:
        import json as _json

        nonlocal invalid_rejected
        own = client_factory() if client_factory is not None else None
        driver = own if own is not None else client
        try:
            for index in point_indices:
                request = BAD_POINT if index < 0 else points[index]
                async with gate:
                    begin = time.perf_counter()
                    try:
                        payload = await driver.resolve(request)
                    except ServingError as exc:
                        if index < 0 and exc.status == 400:
                            invalid_rejected += 1
                        else:
                            failures.append(f"point {index}: {exc}")
                        continue
                    except Exception as exc:
                        failures.append(f"point {index}: {exc}")
                        continue
                    latencies.append(time.perf_counter() - begin)
                if index < 0:
                    failures.append("invalid request was served")
                    continue
                sources[payload["source"]] = (
                    sources.get(payload["source"], 0) + 1
                )
                digests.setdefault(index, set()).add(payload["digest"])
                if index not in result_bytes:
                    # Canonicalise only the first sighting of a point
                    # (``one_digest_per_point`` covers the repeats) —
                    # ``setdefault`` would eagerly re-encode the result
                    # grid on every request and dominate client cost.
                    result_bytes[index] = _json.dumps(
                        payload["result"],
                        sort_keys=True,
                        separators=(",", ":"),
                    ).encode()
        finally:
            if own is not None and hasattr(own, "close"):
                await own.close()

    started = time.perf_counter()
    await asyncio.gather(
        *(one_client(indices) for indices in schedule)
    )
    wall_s = time.perf_counter() - started

    completed = len(latencies)
    latencies.sort()
    total_requests = clients * requests_per_client
    coalesced = sources.get("coalesced", 0)
    hits = sources.get("cache", 0)
    return {
        "points": len(points),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "zipf_s": zipf_s,
        "seed": seed,
        "requests": total_requests,
        "completed": completed,
        "bad_requests": bad_requests,
        "invalid_rejected": invalid_rejected,
        "failed_requests": len(failures),
        "failures": failures[:10],
        "wall_seconds": round(wall_s, 4),
        "throughput_rps": round(completed / wall_s, 2) if wall_s else 0.0,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p90": round(_percentile(latencies, 0.90) * 1e3, 3),
            "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
        },
        "sources": sources,
        "coalesce_rate": (
            round(coalesced / completed, 4) if completed else 0.0
        ),
        "cache_hit_rate": (
            round(hits / completed, 4) if completed else 0.0
        ),
        "one_digest_per_point": all(
            len(seen) == 1 for seen in digests.values()
        ),
        "_result_bytes": result_bytes,  # stripped before JSON reports
    }


def verify_against_direct(
    points: List[Dict[str, Any]], result_bytes: Dict[int, bytes]
) -> Dict[str, Any]:
    """Replay each served point through ``api.run_point``, byte-diff.

    Returns ``{"identical": bool, "mismatches": [...], "checked": n}``.
    The direct run uses the identical request decoding
    (:func:`repro.serving.codec.request_kwargs`), so any byte
    difference is a real serving-layer divergence, not a config skew.
    """
    from repro import api
    from repro.serving.codec import encode_result, request_kwargs

    mismatches = []
    checked = 0
    for index, served in sorted(result_bytes.items()):
        direct = api.run_point(**request_kwargs(points[index]))
        checked += 1
        if encode_result(direct) != served:
            mismatches.append(points[index])
    return {
        "identical": not mismatches,
        "checked": checked,
        "mismatches": mismatches,
    }


def _strip_private(report: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in report.items() if not k.startswith("_")}


def bench_serve(
    clients: int = 500,
    requests_per_client: int = 2,
    jobs: Optional[int] = None,
    window_ms: float = 5.0,
    scale: str = "tiny",
    zipf_s: float = 1.2,
    seed: int = 1234,
    naive_requests: int = 0,
    http: bool = True,
    cache_dir: Optional[str] = None,
    keepalive: bool = True,
    compare_connections: bool = False,
    bad_every: int = 0,
    cache_max_entries: int = 0,
    cache_max_bytes: int = 0,
) -> Dict[str, Any]:
    """Boot a server, fire the fleet, verify, and report.

    The one benchmark entry shared by ``repro-dsm bench-serve`` and
    ``bench_wallclock.py --pr8/--pr9``.  Boots a real
    :class:`~repro.serving.server.ExperimentServer` on an ephemeral
    port (``http=False`` skips the sockets and drives the service
    in-process), warms every point once, runs :func:`run_load`, and
    byte-verifies every distinct point against direct
    ``api.run_point``.  ``keepalive`` picks the HTTP transport;
    ``compare_connections=True`` runs the identical schedule over
    per-request connections *and* keep-alive sessions and reports
    ``keepalive_speedup``.  ``cache_max_entries``/``cache_max_bytes``
    bound the server's result cache (evictions land in the stats), and
    ``bad_every`` injects :data:`BAD_POINT` so the negative cache is
    exercised.  With ``naive_requests > 0`` the naive one-subprocess-
    per-request baseline is measured for ``speedup_over_naive``.
    """
    import tempfile

    from repro.serving.client import ServingClient
    from repro.serving.server import ExperimentServer, ServerConfig

    if jobs is None:
        jobs = min(8, os.cpu_count() or 1)
    points = default_point_set(scale)

    async def run_mode(host, port, mode):
        factory = None
        shared = None
        if mode == "in-process":
            shared = in_process_client
        else:
            use_keepalive = mode == "keepalive"
            factory = lambda: ServingClient(  # noqa: E731
                host, port, keepalive=use_keepalive
            )
        report = await run_load(
            shared,
            points,
            clients=clients,
            requests_per_client=requests_per_client,
            zipf_s=zipf_s,
            seed=seed,
            client_factory=factory,
            bad_every=bad_every,
        )
        report["transport"] = mode
        return report

    async def go(cdir: str):
        nonlocal in_process_client
        config = ServerConfig(
            host="127.0.0.1",
            port=0,
            jobs=jobs,
            batch_window_ms=window_ms,
            cache_dir=cdir,
            cache_max_entries=cache_max_entries,
            cache_max_bytes=cache_max_bytes,
        )
        server = ExperimentServer(config=config)
        host, port = await server.start()
        in_process_client = ServingClient(service=server.service)
        # Warm pass: compute every point once, so each timed mode
        # measures the warm serving path rather than whichever mode
        # happened to run first paying the cold simulations.
        await asyncio.gather(
            *(in_process_client.resolve(dict(p)) for p in points)
        )
        if http:
            modes = (
                ["per_request", "keepalive"]
                if compare_connections
                else (["keepalive"] if keepalive else ["per_request"])
            )
        else:
            modes = ["in-process"]
        reports = {}
        for mode in modes:
            reports[mode] = await run_mode(host, port, mode)
        stats = server.service.stats_payload()
        stats["http"] = server.http_stats()
        await server.shutdown(drain=True)
        return reports, stats

    in_process_client = None
    if cache_dir is not None:
        reports, stats = asyncio.run(go(cache_dir))
    else:
        with tempfile.TemporaryDirectory(
            prefix="repro-dsm-serve-bench-"
        ) as tmp:
            reports, stats = asyncio.run(go(tmp))

    # The primary mode (the last one run) becomes the top-level report.
    primary = list(reports)[-1]
    report = dict(reports[primary])
    all_bytes: Dict[int, bytes] = {}
    cross_mode_identical = True
    for mode_report in reports.values():
        for index, served in mode_report.pop("_result_bytes").items():
            if all_bytes.setdefault(index, served) != served:
                cross_mode_identical = False
    report.pop("_result_bytes", None)
    identity = verify_against_direct(points, all_bytes)
    report["identity"] = identity
    report["identical_results"] = (
        identity["identical"]
        and cross_mode_identical
        and all(r["one_digest_per_point"] for r in reports.values())
    )
    if len(reports) > 1:
        report["modes"] = {
            mode: _strip_private(r) for mode, r in reports.items()
        }
        per = reports.get("per_request", {}).get("throughput_rps", 0)
        ka = reports.get("keepalive", {}).get("throughput_rps", 0)
        if per:
            report["keepalive_speedup"] = round(ka / per, 2)
    report["server"] = stats
    if naive_requests > 0:
        baseline = naive_baseline(points, requests=naive_requests)
        report["naive_baseline"] = baseline
        if baseline["throughput_rps"]:
            report["speedup_over_naive"] = round(
                report["throughput_rps"] / baseline["throughput_rps"], 1
            )
    return report


def naive_baseline(
    points: List[Dict[str, Any]], requests: int = 4
) -> Dict[str, Any]:
    """Throughput of the pre-serving path: one subprocess per request.

    This is what "run an experiment point for me" cost before PR 8:
    every request pays interpreter start-up, ``repro`` + NumPy import,
    and a full simulation — no cache, no coalescing, no shared pool.
    Measured over the *hottest* point, which is the baseline's best
    case (the cheapest simulation in the set).
    """
    hottest = points[0]
    src = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(src)
    )
    code = (
        "import json,sys\n"
        "from repro import api\n"
        "from repro.serving.codec import request_kwargs\n"
        "request = json.loads(sys.argv[1])\n"
        "api.run_point(**request_kwargs(request))\n"
    )
    import json as _json

    request_json = _json.dumps(hottest)
    started = time.perf_counter()
    for _ in range(requests):
        subprocess.run(
            [sys.executable, "-c", code, request_json],
            check=True,
            env=env,
            stdout=subprocess.DEVNULL,
        )
    wall_s = time.perf_counter() - started
    return {
        "requests": requests,
        "point": hottest,
        "wall_seconds": round(wall_s, 3),
        "throughput_rps": round(requests / wall_s, 3),
    }
