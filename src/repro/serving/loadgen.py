"""Synthetic multi-tenant load for the experiment server.

The workload models what the ROADMAP's north-star service sees: many
clients, a zipf-ish point popularity curve (a few hot points absorb
most requests; a long tail stays cold), arrivals bursty enough to
coalesce.  :func:`run_load` drives any client exposing
``resolve(request)`` — in-process or HTTP — and reports throughput,
latency percentiles, coalesce rate, and cache-hit rate;
:func:`verify_against_direct` then replays every distinct point
through plain :func:`repro.api.run_point` and byte-compares the served
results, and :func:`naive_baseline` measures the pre-serving
alternative (one fresh subprocess per request) that the ≥5x
throughput claim in ``BENCH_PR8.json`` is made against.

Everything is seeded: the same (seed, clients, requests) schedule hits
the same points in the same order.
"""

from __future__ import annotations

import asyncio
import os
import random
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence


def default_point_set(
    scale: str = "tiny", extra_cold: bool = True
) -> List[Dict[str, Any]]:
    """A mixed hot/cold request set over fast tiny-scale points.

    Ordered hottest-first (rank 0 gets the largest zipf weight): the
    sor/water front is the hot set; the gauss/lu tail stays cold
    enough that most of its requests arrive after the cache warmed.
    """
    points: List[Dict[str, Any]] = []
    for app in ("sor", "water"):
        for variant in ("csm_poll", "tmk_mc_poll"):
            for nprocs in (4, 1):
                points.append(
                    {
                        "app": app,
                        "variant": variant,
                        "nprocs": nprocs,
                        "scale": scale,
                    }
                )
    if extra_cold:
        for app in ("gauss", "lu"):
            for variant in ("csm_poll", "tmk_mc_poll"):
                points.append(
                    {
                        "app": app,
                        "variant": variant,
                        "nprocs": 4,
                        "scale": scale,
                    }
                )
    return points


def zipf_weights(n: int, s: float = 1.2) -> List[float]:
    """Normalised zipf(s) weights for ranks 0..n-1."""
    raw = [1.0 / (rank + 1) ** s for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


async def run_load(
    client,
    points: Optional[List[Dict[str, Any]]] = None,
    clients: int = 100,
    requests_per_client: int = 2,
    zipf_s: float = 1.2,
    seed: int = 1234,
    concurrency: int = 256,
) -> Dict[str, Any]:
    """Fire the synthetic fleet and collect the serving report.

    ``clients`` concurrent tasks each issue ``requests_per_client``
    sequential requests drawn from the zipf distribution over
    ``points``.  ``concurrency`` bounds simultaneous in-flight
    requests (HTTP mode: open sockets).  The report's ``digests`` map
    each point index to the set of result digests observed — exactly
    one per point unless determinism broke.
    """
    points = points if points is not None else default_point_set()
    weights = zipf_weights(len(points), zipf_s)
    rng = random.Random(seed)
    schedule = [
        rng.choices(range(len(points)), weights=weights,
                    k=requests_per_client)
        for _ in range(clients)
    ]
    gate = asyncio.Semaphore(concurrency)
    latencies: List[float] = []
    sources: Dict[str, int] = {}
    digests: Dict[int, set] = {}
    failures: List[str] = []
    result_bytes: Dict[int, bytes] = {}

    async def one_client(point_indices: List[int]) -> None:
        import json as _json

        for index in point_indices:
            async with gate:
                begin = time.perf_counter()
                try:
                    payload = await client.resolve(points[index])
                except Exception as exc:
                    failures.append(f"point {index}: {exc}")
                    continue
                latencies.append(time.perf_counter() - begin)
            sources[payload["source"]] = (
                sources.get(payload["source"], 0) + 1
            )
            digests.setdefault(index, set()).add(payload["digest"])
            result_bytes.setdefault(
                index,
                _json.dumps(
                    payload["result"],
                    sort_keys=True,
                    separators=(",", ":"),
                ).encode(),
            )

    started = time.perf_counter()
    await asyncio.gather(
        *(one_client(indices) for indices in schedule)
    )
    wall_s = time.perf_counter() - started

    completed = len(latencies)
    latencies.sort()
    total_requests = clients * requests_per_client
    coalesced = sources.get("coalesced", 0)
    hits = sources.get("cache", 0)
    return {
        "points": len(points),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "zipf_s": zipf_s,
        "seed": seed,
        "requests": total_requests,
        "completed": completed,
        "failed_requests": len(failures),
        "failures": failures[:10],
        "wall_seconds": round(wall_s, 4),
        "throughput_rps": round(completed / wall_s, 2) if wall_s else 0.0,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p90": round(_percentile(latencies, 0.90) * 1e3, 3),
            "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
        },
        "sources": sources,
        "coalesce_rate": (
            round(coalesced / completed, 4) if completed else 0.0
        ),
        "cache_hit_rate": (
            round(hits / completed, 4) if completed else 0.0
        ),
        "one_digest_per_point": all(
            len(seen) == 1 for seen in digests.values()
        ),
        "_result_bytes": result_bytes,  # stripped before JSON reports
    }


def verify_against_direct(
    points: List[Dict[str, Any]], result_bytes: Dict[int, bytes]
) -> Dict[str, Any]:
    """Replay each served point through ``api.run_point``, byte-diff.

    Returns ``{"identical": bool, "mismatches": [...], "checked": n}``.
    The direct run uses the identical request decoding
    (:func:`repro.serving.codec.request_kwargs`), so any byte
    difference is a real serving-layer divergence, not a config skew.
    """
    from repro import api
    from repro.serving.codec import encode_result, request_kwargs

    mismatches = []
    checked = 0
    for index, served in sorted(result_bytes.items()):
        direct = api.run_point(**request_kwargs(points[index]))
        checked += 1
        if encode_result(direct) != served:
            mismatches.append(points[index])
    return {
        "identical": not mismatches,
        "checked": checked,
        "mismatches": mismatches,
    }


def bench_serve(
    clients: int = 500,
    requests_per_client: int = 2,
    jobs: Optional[int] = None,
    window_ms: float = 5.0,
    scale: str = "tiny",
    zipf_s: float = 1.2,
    seed: int = 1234,
    naive_requests: int = 0,
    http: bool = True,
    cache_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Boot a server, fire the fleet, verify, and report.

    The one benchmark entry shared by ``repro-dsm bench-serve`` and
    ``bench_wallclock.py --pr8``.  Boots a real
    :class:`~repro.serving.server.ExperimentServer` on an ephemeral
    port (``http=False`` skips the sockets and drives the service
    in-process), runs :func:`run_load`, byte-verifies every distinct
    point against direct ``api.run_point``, and (with
    ``naive_requests > 0``) measures the naive one-subprocess-per-
    request baseline for the ``speedup_over_naive`` figure.
    """
    import tempfile

    from repro.serving.client import HttpClient, InProcessClient
    from repro.serving.server import ExperimentServer, ServerConfig

    if jobs is None:
        jobs = min(8, os.cpu_count() or 1)
    points = default_point_set(scale)

    async def go(cdir: str):
        config = ServerConfig(
            host="127.0.0.1",
            port=0,
            jobs=jobs,
            batch_window_ms=window_ms,
            cache_dir=cdir,
        )
        server = ExperimentServer(config=config)
        host, port = await server.start()
        client = (
            HttpClient(host, port)
            if http
            else InProcessClient(server.service)
        )
        report = await run_load(
            client,
            points,
            clients=clients,
            requests_per_client=requests_per_client,
            zipf_s=zipf_s,
            seed=seed,
        )
        stats = server.service.stats_payload()
        await server.shutdown(drain=True)
        return report, stats

    if cache_dir is not None:
        report, stats = asyncio.run(go(cache_dir))
    else:
        with tempfile.TemporaryDirectory(
            prefix="repro-dsm-serve-bench-"
        ) as tmp:
            report, stats = asyncio.run(go(tmp))

    result_bytes = report.pop("_result_bytes")
    identity = verify_against_direct(points, result_bytes)
    report["identity"] = identity
    report["identical_results"] = (
        identity["identical"] and report["one_digest_per_point"]
    )
    report["transport"] = "http" if http else "in-process"
    report["server"] = stats
    if naive_requests > 0:
        baseline = naive_baseline(points, requests=naive_requests)
        report["naive_baseline"] = baseline
        if baseline["throughput_rps"]:
            report["speedup_over_naive"] = round(
                report["throughput_rps"] / baseline["throughput_rps"], 1
            )
    return report


def naive_baseline(
    points: List[Dict[str, Any]], requests: int = 4
) -> Dict[str, Any]:
    """Throughput of the pre-serving path: one subprocess per request.

    This is what "run an experiment point for me" cost before PR 8:
    every request pays interpreter start-up, ``repro`` + NumPy import,
    and a full simulation — no cache, no coalescing, no shared pool.
    Measured over the *hottest* point, which is the baseline's best
    case (the cheapest simulation in the set).
    """
    hottest = points[0]
    src = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(src)
    )
    code = (
        "import json,sys\n"
        "from repro import api\n"
        "from repro.serving.codec import request_kwargs\n"
        "request = json.loads(sys.argv[1])\n"
        "api.run_point(**request_kwargs(request))\n"
    )
    import json as _json

    request_json = _json.dumps(hottest)
    started = time.perf_counter()
    for _ in range(requests):
        subprocess.run(
            [sys.executable, "-c", code, request_json],
            check=True,
            env=env,
            stdout=subprocess.DEVNULL,
        )
    wall_s = time.perf_counter() - started
    return {
        "requests": requests,
        "point": hottest,
        "wall_seconds": round(wall_s, 3),
        "throughput_rps": round(requests / wall_s, 3),
    }
