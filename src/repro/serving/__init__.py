"""Multi-tenant experiment-serving layer (PR 8).

``repro.serving`` turns the content-addressed result cache (PR 2), the
parallel harness (PR 2/PR 5), and the ``repro.api`` facade (PR 4) into
an asyncio front end that serves experiment points to many concurrent
clients.  Every request resolves through a three-tier fast path:

1. **Sharded on-disk cache** — a prior run of the identical point
   (same app, params, ``RunConfig``, code fingerprint) is unpickled
   and served without simulating anything.
2. **Singleflight coalescing** — an identical point already in flight
   gains one more awaiter instead of one more simulation
   (:mod:`repro.serving.singleflight`).
3. **Cold-point batching** — genuinely new points are grouped inside a
   small arrival window and fanned across one long-lived worker pool
   (:mod:`repro.serving.batcher` over
   :func:`repro.harness.parallel.persistent_pool`), streaming back as
   each point completes.

Served results are byte-for-byte identical to direct
:func:`repro.api.run_point` calls: requests are decoded through the
same :func:`repro.api.point_spec` builder the facade uses, and the
simulator is deterministic.  See ``docs/SERVING.md`` for the protocol,
semantics, and deployment knobs.
"""

from repro.serving.batcher import ColdPointBatcher
from repro.serving.client import (
    HttpClient,
    InProcessClient,
    ServingClient,
)
from repro.serving.codec import (
    WIRE_VERSION,
    NegativeCache,
    ServingError,
    decode_request,
    encode_result,
    expand_sweep,
    request_kwargs,
    result_digest,
    result_payload,
    upconvert_request,
    validate_request,
)
from repro.serving.server import (
    ExperimentServer,
    ExperimentService,
    ServeStats,
    ServerConfig,
)
from repro.serving.singleflight import SingleFlight

__all__ = [
    "ColdPointBatcher",
    "ExperimentServer",
    "ExperimentService",
    "HttpClient",
    "InProcessClient",
    "NegativeCache",
    "ServeStats",
    "ServerConfig",
    "ServingClient",
    "ServingError",
    "SingleFlight",
    "WIRE_VERSION",
    "decode_request",
    "encode_result",
    "expand_sweep",
    "request_kwargs",
    "result_digest",
    "result_payload",
    "upconvert_request",
    "validate_request",
]
