"""Request decoding and canonical result encoding for the server.

A request is a plain JSON object naming one experiment point::

    {"app": "sor", "variant": "csm_poll", "nprocs": 4,
     "scale": "tiny", "params": {...}, "warm_start": true,
     "options": {"fastpath": false}, "overrides": {"network": "rdma"}}

Only ``app`` is required.  :func:`decode_request` funnels the request
through :func:`repro.api.point_spec` — the exact builder behind
``api.run_point`` — so a served point and a direct call construct the
same :class:`~repro.harness.parallel.PointSpec`, and the deterministic
simulator does the rest: the served result is byte-for-byte the direct
result.

:func:`encode_result` is that byte-for-byte claim made concrete: a
canonical JSON encoding (sorted keys, no whitespace, NumPy values
converted losslessly) of everything a client consumes from a
:class:`~repro.core.runtime.program.RunResult` — simulated time,
counters, breakdown, and the application's return values.  Identity
tests and the load generator compare these bytes (or the SHA-256
:func:`result_digest` over them) between served payloads and direct
``api.run_point`` output.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.options import SimOptions

#: The current wire-schema version.  v2 requests carry ``"v": 2``;
#: bodies without a ``v`` field (or with ``"v": 1``) are the PR 8
#: schema and are up-converted in :func:`upconvert_request` — the one
#: place v1 acceptance lives, shared by the point, batch, and sweep
#: routes.
WIRE_VERSION = 2

#: Top-level request fields the decoder accepts.
REQUEST_FIELDS = (
    "v",
    "app",
    "variant",
    "nprocs",
    "scale",
    "params",
    "warm_start",
    "options",
    "overrides",
)

#: ``options`` sub-object fields (the SimOptions surface).
OPTION_FIELDS = (
    "fastpath",
    "debug_checks",
    "calqueue",
    "kernels",
    "shard",
    "network",
    "granularity",
    "prefetch",
    "homing",
)

#: Sharing-policy fields (docs/POLICIES.md), validated eagerly wherever
#: they appear — in ``options`` or in ``overrides`` — so an unknown
#: policy value is a negative-cacheable 400, not a worker-side crash.
_POLICY_VALIDATORS = {
    "granularity": "validate_granularity",
    "prefetch": "validate_prefetch",
    "homing": "validate_homing",
}


def _validate_policy_fields(container: Dict[str, Any], where: str) -> None:
    from repro.memory import policy as sharing_policy

    for field, validator in _POLICY_VALIDATORS.items():
        if field in container:
            try:
                getattr(sharing_policy, validator)(container[field])
            except (TypeError, ValueError) as exc:
                raise ServingError(f"bad {where}: {exc}") from exc


class ServingError(Exception):
    """A request the server refuses; ``status`` is the HTTP code.

    ``retry_after`` (seconds) is set on backpressure rejections (429)
    and becomes the HTTP ``Retry-After`` header.
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def upconvert_request(request: Any) -> Dict[str, Any]:
    """Normalise any accepted wire version to the v2 schema.

    The one place v1 bodies are accepted: a request without ``v`` (or
    with ``"v": 1``) is the PR 8 shape, which is a strict subset of
    v2, so up-conversion just stamps ``"v": 2``.  Unknown versions are
    rejected here, before any field validation.
    """
    if not isinstance(request, dict):
        raise ServingError("request must be a JSON object")
    version = request.get("v", 1)
    if version not in (1, WIRE_VERSION):
        raise ServingError(
            f"unsupported wire version {version!r}; this server speaks "
            f"v1 (implicit) and v{WIRE_VERSION}"
        )
    upgraded = dict(request)
    upgraded["v"] = WIRE_VERSION
    return upgraded


def request_kwargs(request: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a request and return ``api.run_point`` keyword args.

    Rejects unknown fields loudly (a typo like ``"procs"`` must not
    silently serve the default point).  ``options`` is always
    materialised into a :class:`SimOptions` — absent means *defaults*,
    never "whatever the previous request left applied in a pool
    worker".
    """
    request = upconvert_request(request)
    unknown = set(request) - set(REQUEST_FIELDS)
    if unknown:
        raise ServingError(
            f"unknown request field(s) {sorted(unknown)}; "
            f"accepted: {list(REQUEST_FIELDS)}"
        )
    app = request.get("app")
    if not isinstance(app, str) or not app:
        raise ServingError("request needs an 'app' (string)")
    from repro.apps import registry

    if app not in registry.ALL_APP_NAMES:
        raise ServingError(
            f"unknown app {app!r}; known: {list(registry.ALL_APP_NAMES)}"
        )
    variant = request.get("variant")
    if variant is not None:
        from repro.config import variant_by_name

        try:
            variant_by_name(variant)
        except (KeyError, ValueError) as exc:
            raise ServingError(f"unknown variant {variant!r}") from exc
    nprocs = request.get("nprocs", 1)
    if not isinstance(nprocs, int) or nprocs < 1:
        raise ServingError("'nprocs' must be a positive integer")
    raw_options = request.get("options") or {}
    unknown = set(raw_options) - set(OPTION_FIELDS)
    if unknown:
        raise ServingError(
            f"unknown options field(s) {sorted(unknown)}; "
            f"accepted: {list(OPTION_FIELDS)}"
        )
    _validate_policy_fields(raw_options, "options")
    try:
        options = SimOptions(**raw_options)
    except TypeError as exc:
        raise ServingError(f"bad options object: {exc}") from exc
    overrides = request.get("overrides") or {}
    if not isinstance(overrides, dict):
        raise ServingError("'overrides' must be an object")
    _validate_policy_fields(overrides, "overrides")
    kwargs: Dict[str, Any] = {
        "app": app,
        "variant": variant,
        "nprocs": nprocs,
        "scale": request.get("scale", "small"),
        "warm_start": bool(request.get("warm_start", True)),
        "options": options,
    }
    params = request.get("params")
    if params is not None:
        if not isinstance(params, dict):
            raise ServingError("'params' must be an object")
        kwargs["params"] = params
    kwargs.update(overrides)
    return kwargs


validate_request = request_kwargs
"""Alias naming the v2 contract: the one validation entry shared by
the point, batch, and sweep routes (each sweep expansion line is
validated through it when resolved).  Pairs with :func:`encode_result`
— requests come in through ``validate_request``, results leave through
``encode_result``."""


def decode_request(request: Dict[str, Any]):
    """A validated request, as the :class:`PointSpec` it names."""
    from repro import api

    kwargs = request_kwargs(request)
    try:
        return api.point_spec(**kwargs)
    except (TypeError, ValueError, KeyError) as exc:
        raise ServingError(f"bad request: {exc}") from exc


# -- negative-result cache ---------------------------------------------


def negative_key(request: Any) -> Optional[str]:
    """Canonical fingerprint of a request *body* (not its spec).

    Spec fingerprints (``key_for_spec``) exist only for requests that
    validate; the negative cache needs a key for requests that do
    *not*, so it hashes the canonical JSON of the body itself.  Returns
    None for bodies that cannot be canonicalised (unhashable request
    shapes are not worth caching).
    """
    try:
        encoded = json.dumps(
            request, sort_keys=True, separators=(",", ":"), default=repr
        )
    except (TypeError, ValueError):
        return None
    return hashlib.sha256(encoded.encode()).hexdigest()


class NegativeCache:
    """Bounded TTL memo of request bodies known to be invalid.

    Validation is pure CPU, but not free: unknown-app and
    unknown-variant checks import registry modules, and a client stuck
    in a retry loop re-pays that on every attempt.  The serving layer
    stores each validation failure (HTTP 400) here, keyed by
    :func:`negative_key`, and rejects repeats from memory — no
    decoding, no registry, and definitely no worker pool.

    Entries expire after ``ttl_s`` (code and registry state are static
    per process, but a bounded lifetime keeps the contract honest) and
    the oldest entries are dropped past ``max_entries``.  All clocks
    are ``time.monotonic`` — wall-clock jumps cannot mass-expire or
    immortalise entries.
    """

    def __init__(self, ttl_s: float = 60.0, max_entries: int = 1024):
        self.ttl_s = ttl_s
        self.max_entries = max(1, max_entries)
        self._entries: Dict[str, Tuple[float, str, int]] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.expired = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Optional[str]) -> Optional[Tuple[str, int]]:
        """The memoised ``(message, status)`` for ``key``, or None."""
        if key is None:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        stamp, message, status = entry
        if time.monotonic() - stamp > self.ttl_s:
            del self._entries[key]
            self.expired += 1
            self.misses += 1
            return None
        self.hits += 1
        return message, status

    def put(self, key: Optional[str], message: str, status: int) -> None:
        if key is None:
            return
        while len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = (time.monotonic(), message, status)
        self.stores += 1

    def as_dict(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "expired": self.expired,
        }


# -- server-side sweep expansion ---------------------------------------

#: Sweep kinds ``POST /v1/sweep`` accepts.
SWEEP_KINDS = ("figure5", "scaling")

#: Top-level fields a sweep request accepts (superset; kind-specific
#: validation happens in :func:`expand_sweep`).
SWEEP_FIELDS = (
    "v",
    "kind",
    "apps",
    "app",
    "variants",
    "counts",
    "mode",
    "scale",
    "baselines",
    "warm_start",
    "options",
    "overrides",
)


def _sweep_variants(names, default):
    from repro.config import variant_by_name

    if names is None:
        return list(default)
    if not isinstance(names, list) or not names:
        raise ServingError("'variants' must be a non-empty list of names")
    resolved = []
    for name in names:
        try:
            resolved.append(variant_by_name(name))
        except (KeyError, ValueError) as exc:
            raise ServingError(f"unknown variant {name!r}") from exc
    return resolved


def _sweep_counts(counts, default):
    if counts is None:
        return list(default)
    if (
        not isinstance(counts, list)
        or not counts
        or not all(isinstance(n, int) and n >= 1 for n in counts)
    ):
        raise ServingError(
            "'counts' must be a non-empty list of positive integers"
        )
    return sorted(set(counts))


def expand_sweep(
    request: Dict[str, Any], max_points: int = 4096
) -> List[Dict[str, Any]]:
    """Expand one sweep request into its v2 point-request list.

    The server-side twin of the figure5/scaling drivers: the same
    feasibility rules (``csm_pp`` capped below 32 processors by the
    protocol CPU) and the same weak-scaling parameter growth
    (:func:`repro.harness.scaling.weak_params` over the app's registry
    defaults), but emitting wire requests instead of running anything —
    each expanded point then flows through the ordinary
    ``validate_request`` → cache → coalesce → batch path.
    """
    request = upconvert_request(request)
    unknown = set(request) - set(SWEEP_FIELDS)
    if unknown:
        raise ServingError(
            f"unknown sweep field(s) {sorted(unknown)}; "
            f"accepted: {list(SWEEP_FIELDS)}"
        )
    kind = request.get("kind")
    if kind not in SWEEP_KINDS:
        raise ServingError(
            f"sweep needs a 'kind' in {list(SWEEP_KINDS)}, got {kind!r}"
        )
    scale = request.get("scale", "small")
    common: Dict[str, Any] = {"v": WIRE_VERSION, "scale": scale}
    for passthrough in ("warm_start", "options", "overrides"):
        if passthrough in request:
            common[passthrough] = request[passthrough]

    from repro.apps import registry

    points: List[Dict[str, Any]] = []
    if kind == "figure5":
        from repro.config import ALL_VARIANTS
        from repro.harness.figure5 import DEFAULT_COUNTS

        apps = request.get("apps") or list(registry.APP_NAMES)
        if not isinstance(apps, list):
            raise ServingError("'apps' must be a list of app names")
        for app in apps:
            if app not in registry.ALL_APP_NAMES:
                raise ServingError(
                    f"unknown app {app!r}; "
                    f"known: {list(registry.ALL_APP_NAMES)}"
                )
        variants = _sweep_variants(request.get("variants"), ALL_VARIANTS)
        counts = _sweep_counts(request.get("counts"), DEFAULT_COUNTS)
        baselines = bool(request.get("baselines", True))
        for app in apps:
            if baselines:
                points.append(dict(common, app=app, nprocs=1))
            for variant in variants:
                limit = _paper_max_procs(variant)
                for nprocs in counts:
                    if nprocs > limit:
                        continue
                    points.append(
                        dict(
                            common,
                            app=app,
                            variant=variant.name,
                            nprocs=nprocs,
                        )
                    )
    else:  # scaling
        from repro.config import CSM_POLL, TMK_MC_POLL
        from repro.harness.scaling import (
            DEFAULT_COUNTS as SCALING_COUNTS,
            MODES,
            weak_params,
        )

        app = request.get("app", "sor")
        if app not in registry.ALL_APP_NAMES:
            raise ServingError(
                f"unknown app {app!r}; "
                f"known: {list(registry.ALL_APP_NAMES)}"
            )
        mode = request.get("mode", "weak")
        if mode not in MODES:
            raise ServingError(
                f"unknown scaling mode {mode!r}; known: {list(MODES)}"
            )
        variants = _sweep_variants(
            request.get("variants"), (CSM_POLL, TMK_MC_POLL)
        )
        counts = _sweep_counts(request.get("counts"), SCALING_COUNTS)
        ref = counts[0]
        base = registry.load(app).default_params(scale)
        for nprocs in counts:
            if mode == "weak":
                try:
                    params = weak_params(app, base, ref, nprocs)
                except ValueError as exc:
                    raise ServingError(str(exc)) from exc
            else:
                params = base
            for variant in variants:
                points.append(
                    dict(
                        common,
                        app=app,
                        variant=variant.name,
                        nprocs=nprocs,
                        params=dict(params),
                    )
                )
    if not points:
        raise ServingError("sweep expands to zero points")
    if len(points) > max_points:
        raise ServingError(
            f"sweep expands to {len(points)} points, over the server's "
            f"max_sweep_points={max_points}",
            status=413,
        )
    return points


def _paper_max_procs(variant) -> int:
    """Compute CPUs ``variant`` gets on the paper's fixed cluster.

    Figure 5 sweeps keep the eight-node AlphaServer topology (the
    driver's :func:`~repro.harness.runner.feasible_counts` rule), so
    ``csm_pp`` tops out at 24 processors — its protocol CPUs are not
    available for compute.  Scaling sweeps auto-grow instead.
    """
    from repro.config import ClusterConfig, RunConfig

    cfg = RunConfig(variant=variant, nprocs=1, cluster=ClusterConfig())
    return cfg.compute_cpus_available


def _jsonable(value: Any) -> Any:
    """Lossless JSON conversion for result values (NumPy included)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    tolist = getattr(value, "tolist", None)  # ndarray and NumPy scalars
    if callable(tolist):
        return tolist()
    return repr(value)


def result_payload(result) -> Dict[str, Any]:
    """The canonical client-facing view of one :class:`RunResult`.

    Everything here is a pure function of the simulation — no serving
    metadata, no wall-clock, no ``extras`` — so the payload of a cache
    hit, a coalesced await, and a fresh computation are identical.
    """
    cfg = result.config
    return {
        "program": result.program,
        "variant": cfg.variant.name if cfg is not None else "sequential",
        "nprocs": cfg.nprocs if cfg is not None else 1,
        "exec_time_us": result.exec_time,
        "network_bytes": result.network_bytes,
        "counters": {
            k: int(v)
            for k, v in sorted(result.stats.aggregate_counters().items())
            if v
        },
        "breakdown_us": result.breakdown.as_dict(),
        "values": _jsonable(result.values),
    }


def encode_result(result) -> bytes:
    """Canonical bytes of :func:`result_payload` (sorted, compact)."""
    return json.dumps(
        result_payload(result), sort_keys=True, separators=(",", ":")
    ).encode()


def result_digest(result) -> str:
    """SHA-256 hexdigest over :func:`encode_result`."""
    return hashlib.sha256(encode_result(result)).hexdigest()
