"""Request decoding and canonical result encoding for the server.

A request is a plain JSON object naming one experiment point::

    {"app": "sor", "variant": "csm_poll", "nprocs": 4,
     "scale": "tiny", "params": {...}, "warm_start": true,
     "options": {"fastpath": false}, "overrides": {"network": "rdma"}}

Only ``app`` is required.  :func:`decode_request` funnels the request
through :func:`repro.api.point_spec` — the exact builder behind
``api.run_point`` — so a served point and a direct call construct the
same :class:`~repro.harness.parallel.PointSpec`, and the deterministic
simulator does the rest: the served result is byte-for-byte the direct
result.

:func:`encode_result` is that byte-for-byte claim made concrete: a
canonical JSON encoding (sorted keys, no whitespace, NumPy values
converted losslessly) of everything a client consumes from a
:class:`~repro.core.runtime.program.RunResult` — simulated time,
counters, breakdown, and the application's return values.  Identity
tests and the load generator compare these bytes (or the SHA-256
:func:`result_digest` over them) between served payloads and direct
``api.run_point`` output.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from repro.options import SimOptions

#: Top-level request fields the decoder accepts.
REQUEST_FIELDS = (
    "app",
    "variant",
    "nprocs",
    "scale",
    "params",
    "warm_start",
    "options",
    "overrides",
)

#: ``options`` sub-object fields (the SimOptions surface).
OPTION_FIELDS = (
    "fastpath",
    "debug_checks",
    "calqueue",
    "kernels",
    "shard",
    "network",
)


class ServingError(Exception):
    """A request the server refuses; ``status`` is the HTTP code."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def request_kwargs(request: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a request and return ``api.run_point`` keyword args.

    Rejects unknown fields loudly (a typo like ``"procs"`` must not
    silently serve the default point).  ``options`` is always
    materialised into a :class:`SimOptions` — absent means *defaults*,
    never "whatever the previous request left applied in a pool
    worker".
    """
    if not isinstance(request, dict):
        raise ServingError("request must be a JSON object")
    unknown = set(request) - set(REQUEST_FIELDS)
    if unknown:
        raise ServingError(
            f"unknown request field(s) {sorted(unknown)}; "
            f"accepted: {list(REQUEST_FIELDS)}"
        )
    app = request.get("app")
    if not isinstance(app, str) or not app:
        raise ServingError("request needs an 'app' (string)")
    from repro.apps import registry

    if app not in registry.APP_NAMES:
        raise ServingError(
            f"unknown app {app!r}; known: {list(registry.APP_NAMES)}"
        )
    variant = request.get("variant")
    if variant is not None:
        from repro.config import variant_by_name

        try:
            variant_by_name(variant)
        except (KeyError, ValueError) as exc:
            raise ServingError(f"unknown variant {variant!r}") from exc
    nprocs = request.get("nprocs", 1)
    if not isinstance(nprocs, int) or nprocs < 1:
        raise ServingError("'nprocs' must be a positive integer")
    raw_options = request.get("options") or {}
    unknown = set(raw_options) - set(OPTION_FIELDS)
    if unknown:
        raise ServingError(
            f"unknown options field(s) {sorted(unknown)}; "
            f"accepted: {list(OPTION_FIELDS)}"
        )
    try:
        options = SimOptions(**raw_options)
    except TypeError as exc:
        raise ServingError(f"bad options object: {exc}") from exc
    overrides = request.get("overrides") or {}
    if not isinstance(overrides, dict):
        raise ServingError("'overrides' must be an object")
    kwargs: Dict[str, Any] = {
        "app": app,
        "variant": variant,
        "nprocs": nprocs,
        "scale": request.get("scale", "small"),
        "warm_start": bool(request.get("warm_start", True)),
        "options": options,
    }
    params = request.get("params")
    if params is not None:
        if not isinstance(params, dict):
            raise ServingError("'params' must be an object")
        kwargs["params"] = params
    kwargs.update(overrides)
    return kwargs


def decode_request(request: Dict[str, Any]):
    """A validated request, as the :class:`PointSpec` it names."""
    from repro import api

    kwargs = request_kwargs(request)
    try:
        return api.point_spec(**kwargs)
    except (TypeError, ValueError, KeyError) as exc:
        raise ServingError(f"bad request: {exc}") from exc


def _jsonable(value: Any) -> Any:
    """Lossless JSON conversion for result values (NumPy included)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    tolist = getattr(value, "tolist", None)  # ndarray and NumPy scalars
    if callable(tolist):
        return tolist()
    return repr(value)


def result_payload(result) -> Dict[str, Any]:
    """The canonical client-facing view of one :class:`RunResult`.

    Everything here is a pure function of the simulation — no serving
    metadata, no wall-clock, no ``extras`` — so the payload of a cache
    hit, a coalesced await, and a fresh computation are identical.
    """
    cfg = result.config
    return {
        "program": result.program,
        "variant": cfg.variant.name if cfg is not None else "sequential",
        "nprocs": cfg.nprocs if cfg is not None else 1,
        "exec_time_us": result.exec_time,
        "network_bytes": result.network_bytes,
        "counters": {
            k: int(v)
            for k, v in sorted(result.stats.aggregate_counters().items())
            if v
        },
        "breakdown_us": result.breakdown.as_dict(),
        "values": _jsonable(result.values),
    }


def encode_result(result) -> bytes:
    """Canonical bytes of :func:`result_payload` (sorted, compact)."""
    return json.dumps(
        result_payload(result), sort_keys=True, separators=(",", ":")
    ).encode()


def result_digest(result) -> str:
    """SHA-256 hexdigest over :func:`encode_result`."""
    return hashlib.sha256(encode_result(result)).hexdigest()
