"""The experiment server: service core plus stdlib-only HTTP front end.

Two layers, deliberately separable:

:class:`ExperimentService`
    The event-loop core.  ``resolve(request)`` takes one decoded JSON
    request through the fast path — hot in-memory payload, sharded
    disk cache, singleflight coalesce, cold-point batch — and returns
    the payload dict.  Known-invalid request bodies are rejected from
    a negative cache without touching any of that.  Tests and
    in-process clients drive it directly with no sockets
    (``repro.serving.client.ServingClient(service=...)``).

:class:`ExperimentServer`
    A hand-rolled HTTP/1.1 front end on :func:`asyncio.start_server`
    (stdlib only).  Connections are **keep-alive** (v2): JSON
    responses are Content-Length framed and the connection is reused
    until the client sends ``Connection: close``, goes idle past
    ``idle_timeout_s``, or hits ``max_requests_per_conn``.  Streaming
    responses (``/v1/points``, ``/v1/sweep``) stay close-delimited.
    Routes are in :data:`ROUTES`; when ``max_inflight`` is set,
    saturated single-point requests get ``429`` + ``Retry-After``.

Deployment knobs live in :class:`ServerConfig`; ``docs/SERVING.md``
documents every field and route (enforced by
``tests/test_serving_docs.py``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.cache import ResultCache, key_for_spec
from repro.harness.parallel import execute_point_timed, persistent_pool
from repro.serving.batcher import ColdPointBatcher
from repro.serving.codec import (
    NegativeCache,
    ServingError,
    decode_request,
    expand_sweep,
    negative_key,
    result_digest,
    result_payload,
)
from repro.serving.singleflight import SingleFlight

#: Route table of the HTTP front end: (method, path) -> summary.
#: docs/SERVING.md must document every row (tests/test_serving_docs.py).
ROUTES = {
    ("GET", "/v1/healthz"): "liveness probe ({'status': 'ok'})",
    ("GET", "/v1/stats"): "serving, cache, and batcher statistics",
    ("POST", "/v1/point"): "resolve one experiment point (JSON in/out)",
    ("POST", "/v1/points"): (
        "resolve a list of points; streams JSONL in completion order"
    ),
    ("POST", "/v1/sweep"): (
        "expand a figure5/scaling sweep server-side; streams JSONL"
    ),
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServerConfig:
    """Deployment knobs (CLI: ``repro-dsm serve``; docs/SERVING.md).

    ``jobs=0`` executes points on a single in-process worker thread —
    zero fork cost, right for tests and one-shot scripts; ``jobs>0``
    builds a :func:`~repro.harness.parallel.persistent_pool` of that
    many worker processes, the production configuration.

    The zero-valued knobs follow one convention: ``0`` disables the
    bound (unlimited requests per connection, unbounded in-flight
    admission, unbounded cache, no background sweep).
    """

    host: str = "127.0.0.1"
    port: int = 8377
    jobs: int = 0
    batch_window_ms: float = 5.0
    max_batch: int = 32
    cache_dir: Optional[str] = None
    no_cache: bool = False
    refresh: bool = False
    drain_timeout_s: float = 60.0
    idle_timeout_s: float = 30.0
    max_requests_per_conn: int = 0
    max_inflight: int = 0
    retry_after_s: float = 0.5
    negative_ttl_s: float = 60.0
    negative_entries: int = 1024
    cache_max_bytes: int = 0
    cache_max_entries: int = 0
    cache_sweep_interval_s: float = 0.0
    hot_entries: int = 256
    max_sweep_points: int = 4096

    @classmethod
    def describe(cls) -> Dict[str, str]:
        """``{field: repr(default)}`` — the docs table contract."""
        return {
            f.name: repr(f.default) for f in dataclasses.fields(cls)
        }


@dataclass
class ServeStats:
    """Per-server counters, surfaced by ``GET /v1/stats``.

    ``requests`` counts every point request received; each successful
    one lands in exactly one of ``cache_hits`` (tier 1 — ``hot_hits``
    sub-counts the in-memory payload tier), ``coalesced`` (tier 2), or
    ``computed`` (tier 3, once its simulation finishes).
    ``negative_hits`` are requests rejected from the negative cache,
    ``rejected`` are admission-control 429s, and ``errors`` are
    simulations that raised.
    """

    requests: int = 0
    cache_hits: int = 0
    hot_hits: int = 0
    coalesced: int = 0
    computed: int = 0
    negative_hits: int = 0
    rejected: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


def _warm_worker() -> int:
    """Pool-worker warm-up: pre-import the simulation stack.

    Submitted once per worker at :meth:`ExperimentService.start`, for
    two reasons.  First, latency: the first real request should not
    pay the NumPy/``repro`` import.  Second, and critically, fork
    safety: the executor forks workers lazily on first submit, and by
    then the event loop may have spawned helper threads (asyncio's
    ``getaddrinfo`` runs in the default thread executor) whose held
    locks a forked child would inherit mid-acquire and deadlock on.
    Forcing every fork here — while the process is still
    single-threaded — sidesteps that entirely.
    """
    from repro.apps import registry  # noqa: F401  (import cost is the point)
    from repro.core import run_program  # noqa: F401
    import os

    return os.getpid()

#: Envelope fields memoised by the hot payload tier (everything that is
#: a pure function of the request; per-request fields are layered on).
_HOT_FIELDS = ("key", "app", "variant", "nprocs", "digest", "result")

#: Placeholder the body encoder swaps for a pre-serialised result.  No
#: legitimate envelope value can contain it (keys/digests are hex, the
#: rest are registry names and numbers).
_SPLICE = "__repro_result_splice__"


def encode_payload(payload: Any) -> bytes:
    """Serialise one response payload to its canonical JSON bytes.

    Hot-tier payloads carry ``_result_json`` — the ``result`` field
    already serialised (it dominates the body, hundreds of times the
    envelope).  Splicing it into a dumps of the small envelope is
    byte-identical to serialising the whole payload, and turns the
    per-request encode cost from O(result) into O(envelope).  The
    transport-private ``_result_json`` key never reaches the wire.
    """
    raw = payload.pop("_result_json", None) if isinstance(payload, dict) else None
    if raw is None:
        return json.dumps(payload, sort_keys=True).encode()
    head = json.dumps(dict(payload, result=_SPLICE), sort_keys=True)
    return head.replace(f'"{_SPLICE}"', raw, 1).encode()


class ExperimentService:
    """The multi-tier resolver behind every serving entry point."""

    def __init__(
        self,
        config: ServerConfig = ServerConfig(),
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.config = config
        if cache is None and not config.no_cache:
            cache = ResultCache(
                cache_dir=(
                    Path(config.cache_dir) if config.cache_dir else None
                ),
                refresh=config.refresh,
                max_bytes=config.cache_max_bytes,
                max_entries=config.cache_max_entries,
            )
        self.cache = cache
        self.stats = ServeStats()
        self.negative = NegativeCache(
            ttl_s=config.negative_ttl_s,
            max_entries=config.negative_entries,
        )
        # Hot payload tier: canonical request body -> ready-to-send
        # envelope fields.  A hot hit skips request decoding, the spec
        # fingerprint, the disk unpickle, and the digest — the request
        # costs one dict lookup.  Disabled under ``refresh`` (which
        # promises recomputation) and ``no_cache``.
        self._hot: Dict[str, Dict[str, Any]] = {}
        self._hot_limit = (
            config.hot_entries
            if (self.cache is not None and not config.refresh)
            else 0
        )
        self.flight: Optional[SingleFlight] = None
        self.batcher: Optional[ColdPointBatcher] = None
        self.inflight = 0
        self.cache_sweeps = 0
        self._pool = None
        self._sweeper: Optional[asyncio.Task] = None
        self._started = False
        self._closed = False

    async def start(self) -> "ExperimentService":
        """Bind to the running loop: build the pool and the batcher."""
        if self._started:
            return self
        if self.config.jobs > 0:
            self._pool = persistent_pool(self.config.jobs)
            # Fork/warm every worker now, while single-threaded (see
            # _warm_worker).  One submit per worker spawns the full
            # complement; gather keeps start() honest about readiness.
            await asyncio.gather(
                *(
                    asyncio.wrap_future(self._pool.submit(_warm_worker))
                    for _ in range(self.config.jobs)
                )
            )
        else:
            # Single in-process worker thread: serialized execution, so
            # per-spec SimOptions never race on the process globals.
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
        self.flight = SingleFlight()
        self.batcher = ColdPointBatcher(
            submit=lambda spec: self._pool.submit(
                execute_point_timed, spec
            ),
            on_done=self._point_done,
            window_s=self.config.batch_window_ms / 1000.0,
            max_batch=self.config.max_batch,
        )
        if self.cache is not None and self.config.cache_sweep_interval_s > 0:
            self._sweeper = asyncio.get_running_loop().create_task(
                self._sweep_cache()
            )
        self._started = True
        return self

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError(
                "ExperimentService.start() must run inside the event "
                "loop before the first resolve()"
            )
        if self._closed:
            raise ServingError("server is shutting down", status=503)

    async def _sweep_cache(self) -> None:
        """Background eviction sweep: enforce cache bounds off-request.

        Eviction already runs inline on every ``put`` (the bound holds
        even mid-burst); the sweep additionally reclaims entries
        written by *other* processes sharing the cache directory,
        which inline eviction cannot see.
        """
        while True:
            await asyncio.sleep(self.config.cache_sweep_interval_s)
            try:
                await asyncio.to_thread(self.cache.prune)
                self.cache_sweeps += 1
            except Exception:
                pass  # a sweep failure must never take the server down

    def _point_done(self, key: str, outcome, error) -> None:
        """Batcher completion: store, then wake every awaiter."""
        if error is not None:
            self.stats.errors += 1
            self.flight.fail(key, error)
            return
        result, seconds = outcome
        self.stats.computed += 1
        if self.cache is not None:
            try:
                self.cache.put(key, result)
            except OSError:
                pass  # read-only cache dir: serve without storing
        self.flight.resolve(key, (result, seconds))

    # -- hot payload tier ----------------------------------------------

    def _hot_get(self, body_key: Optional[str]):
        if not self._hot_limit or body_key is None:
            return None
        entry = self._hot.pop(body_key, None)
        if entry is not None:
            self._hot[body_key] = entry  # LRU touch
        return entry

    def _hot_put(self, body_key: Optional[str], payload: Dict) -> None:
        if not self._hot_limit or body_key is None:
            return
        self._hot.pop(body_key, None)
        while len(self._hot) >= self._hot_limit:
            self._hot.pop(next(iter(self._hot)))
        entry = {k: payload[k] for k in _HOT_FIELDS}
        # Serialise the result once at insertion; every hot hit ships
        # these bytes instead of re-encoding the grid (encode_payload).
        entry["_result_json"] = json.dumps(
            payload["result"], sort_keys=True
        )
        self._hot[body_key] = entry

    # -- resolution ----------------------------------------------------

    async def resolve(
        self, request: Dict[str, Any], admitted: bool = False
    ) -> Dict[str, Any]:
        """One request through the tiers; returns the payload.

        ``admitted=True`` marks server-originated work (batch and
        sweep expansion points) that is bounded by the stream's own
        semaphore — it bypasses the 429 admission check so a stream
        can never reject its own points.
        """
        self._require_started()
        self.stats.requests += 1
        started = time.perf_counter()
        body_key = negative_key(request)
        memo = self.negative.get(body_key)
        if memo is not None:
            self.stats.negative_hits += 1
            message, status = memo
            raise ServingError(message, status=status)
        hot = self._hot_get(body_key)
        if hot is not None:
            self.stats.cache_hits += 1
            self.stats.hot_hits += 1
            return dict(
                hot,
                source="cache",
                compute_seconds=None,
                serve_seconds=time.perf_counter() - started,
            )
        limit = self.config.max_inflight
        if not admitted and limit and self.inflight >= limit:
            self.stats.rejected += 1
            raise ServingError(
                f"server saturated ({self.inflight} requests in flight, "
                f"max_inflight={limit}); retry after "
                f"{self.config.retry_after_s}s",
                status=429,
                retry_after=self.config.retry_after_s,
            )
        self.inflight += 1
        try:
            try:
                spec = decode_request(request)
            except ServingError as exc:
                if exc.status == 400:
                    # Deterministically invalid: memoise the refusal.
                    self.negative.put(body_key, str(exc), exc.status)
                raise
            key = key_for_spec(spec)
            if self.cache is not None:
                result = self.cache.get(key)
                if result is not None:
                    self.stats.cache_hits += 1
                    payload = self._payload(
                        key, spec, result, "cache", None, started
                    )
                    self._hot_put(body_key, payload)
                    return payload
            future, leader = self.flight.begin(key)
            if leader:
                self.batcher.admit(key, spec)
            else:
                if self.cache is not None:
                    self.cache.stats.coalesced += 1
                self.stats.coalesced += 1
            result, seconds = await future
            source = "computed" if leader else "coalesced"
            payload = self._payload(
                key, spec, result, source, seconds, started
            )
            if leader:
                self._hot_put(body_key, payload)
            return payload
        finally:
            self.inflight -= 1

    def _payload(
        self, key, spec, result, source, compute_seconds, started
    ) -> Dict[str, Any]:
        # Everything under "result" (and its "digest") is a pure
        # function of the simulation; the envelope around it records
        # how *this* request was served.
        return {
            "key": key,
            "app": spec.app,
            "variant": spec.variant_name,
            "nprocs": spec.nprocs,
            "source": source,
            "compute_seconds": compute_seconds,
            "serve_seconds": time.perf_counter() - started,
            "digest": result_digest(result),
            "result": result_payload(result),
        }

    async def resolve_many(
        self,
        requests: List[Dict[str, Any]],
        concurrency: Optional[int] = None,
    ):
        """Async-iterate payloads in completion order (JSONL feed).

        Each yielded payload carries ``index``, its position in the
        request list, so clients can reorder; errors yield an
        ``{"index": i, "error": ..., "status": ...}`` line instead of
        killing the stream.  Points are admitted through a bounded
        semaphore (``concurrency``, default ``max_inflight`` or
        ``4 * max_batch``) rather than the 429 path — a stream queues
        its own excess instead of rejecting it.  Abandoning the
        iterator (client disconnect) cancels every unfinished point.
        """
        self._require_started()
        limit = concurrency or (
            self.config.max_inflight or 4 * self.config.max_batch
        )
        gate = asyncio.Semaphore(max(1, limit))

        async def one(i: int, request: Dict[str, Any]):
            async with gate:
                try:
                    payload = await self.resolve(request, admitted=True)
                    payload["index"] = i
                    return payload
                except ServingError as exc:
                    return {
                        "index": i,
                        "error": str(exc),
                        "status": exc.status,
                    }
                except Exception as exc:
                    return {"index": i, "error": str(exc), "status": 500}

        tasks = [
            asyncio.ensure_future(one(i, request))
            for i, request in enumerate(requests)
        ]
        try:
            for completed in asyncio.as_completed(tasks):
                yield await completed
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()

    def expand(self, request: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Expand one sweep request, bounded by ``max_sweep_points``."""
        return expand_sweep(
            request, max_points=self.config.max_sweep_points
        )

    def stats_payload(self) -> Dict[str, Any]:
        """The ``GET /v1/stats`` body: serving + caches + batcher."""
        payload: Dict[str, Any] = {
            "serving": self.stats.as_dict(),
            "inflight": len(self.flight) if self.flight else 0,
            "admitted_inflight": self.inflight,
            "batcher": (
                {
                    "batches": self.batcher.batches,
                    "points": self.batcher.points,
                    "largest_batch": self.batcher.largest_batch,
                    "window_ms": self.config.batch_window_ms,
                }
                if self.batcher
                else None
            ),
            "negative": self.negative.as_dict(),
            "hot": {
                "entries": len(self._hot),
                "max_entries": self._hot_limit,
            },
            "cache": None,
        }
        if self.cache is not None:
            payload["cache"] = {
                "stats": self.cache.stats.as_dict(),
                "sweeps": self.cache_sweeps,
                **self.cache.summary(),
            }
        return payload

    async def shutdown(self, drain: bool = True) -> None:
        """Stop admitting, optionally drain in-flight work, stop pool.

        ``drain=True`` (the graceful path) flushes the batcher and
        waits — bounded by ``config.drain_timeout_s`` — until every
        in-flight request has its result; clients already awaiting
        (including streaming sweeps) get their payloads.
        ``drain=False`` fails outstanding flights immediately.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        if self._sweeper is not None:
            self._sweeper.cancel()
        if drain:
            try:
                await asyncio.wait_for(
                    self.batcher.drain(),
                    timeout=self.config.drain_timeout_s,
                )
            except asyncio.TimeoutError:
                pass
        for key_future in self.flight.outstanding():
            if not key_future.done():
                key_future.set_exception(
                    ServingError("server shut down", status=503)
                )
        self._pool.shutdown(wait=drain)


class ExperimentServer:
    """HTTP/1.1 keep-alive front end over an :class:`ExperimentService`."""

    def __init__(
        self,
        service: Optional[ExperimentService] = None,
        config: Optional[ServerConfig] = None,
    ) -> None:
        if service is None:
            service = ExperimentService(config or ServerConfig())
        self.service = service
        self.config = service.config
        self._server: Optional[asyncio.base_events.Server] = None
        #: Actual bound address, available after :meth:`start`
        #: (``port=0`` requests an ephemeral port).
        self.address: Optional[Tuple[str, int]] = None
        self._closing = False
        self._conns: set = set()  # every open connection's writer
        self._busy: set = set()  # writers mid-request/mid-stream
        self.connections_total = 0
        self.requests_total = 0
        self.requests_reused = 0  # served on an already-used connection

    async def start(self) -> Tuple[str, int]:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, close idle connections, drain busy ones.

        Idle keep-alive connections are closed immediately (their next
        read sees EOF).  Busy connections — including in-progress
        sweep/points streams — get up to ``drain_timeout_s`` to flush
        before the service itself drains; points a stream already
        admitted thus complete and reach the client.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._conns - self._busy):
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout_s
            while self._busy and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
        await self.service.shutdown(drain=drain)

    def http_stats(self) -> Dict[str, int]:
        return {
            "open_connections": len(self._conns),
            "connections": self.connections_total,
            "requests": self.requests_total,
            "reused": self.requests_reused,
        }

    # -- one connection, many requests ---------------------------------

    async def _handle(self, reader, writer) -> None:
        self._conns.add(writer)
        self.connections_total += 1
        served = 0
        try:
            while not self._closing:
                timeout = self.config.idle_timeout_s or None
                try:
                    parsed = await asyncio.wait_for(
                        self._read_request(reader), timeout
                    )
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                ):
                    break
                if parsed is None:
                    break
                method, path, body, want_keepalive = parsed
                served += 1
                self.requests_total += 1
                if served > 1:
                    self.requests_reused += 1
                limit = self.config.max_requests_per_conn
                last = (
                    not want_keepalive
                    or self._closing
                    or bool(limit and served >= limit)
                )
                self._busy.add(writer)
                try:
                    streamed = await self._dispatch(
                        method, path, body, writer, close=last
                    )
                finally:
                    self._busy.discard(writer)
                if streamed or last:
                    break
        except ConnectionError:
            pass
        except Exception as exc:
            try:
                await self._respond_json(
                    writer,
                    500,
                    {"error": f"internal error: {exc}"},
                    close=True,
                )
            except (ConnectionError, OSError):
                pass
        finally:
            self._conns.discard(writer)
            self._busy.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        try:
            method, path, version = (
                request_line.decode("latin-1").split(None, 2)
            )
        except ValueError:
            return None
        keep_alive = "1.0" not in version  # HTTP/1.1 defaults keep-alive
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
            elif name == "connection":
                token = value.strip().lower()
                if token == "close":
                    keep_alive = False
                elif token == "keep-alive":
                    keep_alive = True
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body, keep_alive

    async def _dispatch(self, method, path, body, writer, close) -> bool:
        """Serve one request; returns True if the response streamed
        (stream responses are close-delimited, ending the connection)."""
        if (method, path) not in ROUTES:
            await self._respond_json(
                writer,
                404,
                {
                    "error": f"no route {method} {path}",
                    "routes": [f"{m} {p}" for m, p in sorted(ROUTES)],
                },
                close=close,
            )
            return False
        if path == "/v1/healthz":
            await self._respond_json(
                writer, 200, {"status": "ok"}, close=close
            )
        elif path == "/v1/stats":
            payload = self.service.stats_payload()
            payload["http"] = self.http_stats()
            await self._respond_json(writer, 200, payload, close=close)
        elif path == "/v1/point":
            try:
                request = json.loads(body or b"{}")
                payload = await self.service.resolve(request)
            except ServingError as exc:
                headers = None
                if exc.retry_after is not None:
                    headers = {"Retry-After": f"{exc.retry_after:g}"}
                await self._respond_json(
                    writer,
                    exc.status,
                    {"error": str(exc)},
                    close=close,
                    headers=headers,
                )
                return False
            except json.JSONDecodeError as exc:
                await self._respond_json(
                    writer,
                    400,
                    {"error": f"bad JSON body: {exc}"},
                    close=close,
                )
                return False
            await self._respond_json(writer, 200, payload, close=close)
        elif path == "/v1/points":
            return await self._stream_points(body, writer, close)
        elif path == "/v1/sweep":
            return await self._stream_sweep(body, writer, close)
        return False

    async def _stream_points(self, body, writer, close) -> bool:
        try:
            decoded = json.loads(body or b"{}")
            requests = decoded.get("points")
            if not isinstance(requests, list):
                raise ServingError(
                    "body must be {'points': [request, ...]}"
                )
        except json.JSONDecodeError as exc:
            await self._respond_json(
                writer, 400, {"error": f"bad JSON body: {exc}"}, close=close
            )
            return False
        except ServingError as exc:
            await self._respond_json(
                writer, exc.status, {"error": str(exc)}, close=close
            )
            return False
        await self._stream_lines(writer, self.service.resolve_many(requests))
        return True

    async def _stream_sweep(self, body, writer, close) -> bool:
        try:
            decoded = json.loads(body or b"{}")
            points = self.service.expand(decoded)
        except json.JSONDecodeError as exc:
            await self._respond_json(
                writer, 400, {"error": f"bad JSON body: {exc}"}, close=close
            )
            return False
        except ServingError as exc:
            await self._respond_json(
                writer, exc.status, {"error": str(exc)}, close=close
            )
            return False
        preamble = {
            "sweep": {"kind": decoded.get("kind"), "points": len(points)}
        }
        await self._stream_lines(
            writer, self.service.resolve_many(points), preamble=preamble
        )
        return True

    async def _stream_lines(self, writer, payloads, preamble=None) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        if preamble is not None:
            writer.write(
                json.dumps(preamble, sort_keys=True).encode() + b"\n"
            )
            await writer.drain()
        # A disconnect raises out of drain(); closing the generator
        # then cancels every point the stream has not yielded yet.
        agen = payloads.__aiter__()
        try:
            async for payload in agen:
                writer.write(encode_payload(payload) + b"\n")
                await writer.drain()
        finally:
            await agen.aclose()

    async def _respond_json(
        self, writer, status, payload, close=False, headers=None
    ) -> None:
        body = encode_payload(payload)
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        head += f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
        writer.write(head.encode() + body)
        await writer.drain()
