"""The experiment server: service core plus stdlib-only HTTP front end.

Two layers, deliberately separable:

:class:`ExperimentService`
    The event-loop core.  ``resolve(request)`` takes one decoded JSON
    request through the three-tier fast path — sharded cache hit,
    singleflight coalesce, cold-point batch — and returns the payload
    dict.  Tests and in-process clients drive it directly with no
    sockets (:class:`repro.serving.client.InProcessClient`).

:class:`ExperimentServer`
    A hand-rolled HTTP/1.1 front end on :func:`asyncio.start_server`
    (stdlib only, one request per connection, close-delimited bodies).
    Routes are in :data:`ROUTES`; ``POST /v1/points`` streams JSONL in
    completion order, one line per finished point.

Deployment knobs live in :class:`ServerConfig`; ``docs/SERVING.md``
documents every field and route (enforced by
``tests/test_serving_docs.py``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.cache import ResultCache, key_for_spec
from repro.harness.parallel import execute_point_timed, persistent_pool
from repro.serving.batcher import ColdPointBatcher
from repro.serving.codec import (
    ServingError,
    decode_request,
    result_digest,
    result_payload,
)
from repro.serving.singleflight import SingleFlight

#: Route table of the HTTP front end: (method, path) -> summary.
#: docs/SERVING.md must document every row (tests/test_serving_docs.py).
ROUTES = {
    ("GET", "/v1/healthz"): "liveness probe ({'status': 'ok'})",
    ("GET", "/v1/stats"): "serving, cache, and batcher statistics",
    ("POST", "/v1/point"): "resolve one experiment point (JSON in/out)",
    ("POST", "/v1/points"): (
        "resolve a list of points; streams JSONL in completion order"
    ),
}


@dataclass(frozen=True)
class ServerConfig:
    """Deployment knobs (CLI: ``repro-dsm serve``; docs/SERVING.md).

    ``jobs=0`` executes points on a single in-process worker thread —
    zero fork cost, right for tests and one-shot scripts; ``jobs>0``
    builds a :func:`~repro.harness.parallel.persistent_pool` of that
    many worker processes, the production configuration.
    """

    host: str = "127.0.0.1"
    port: int = 8377
    jobs: int = 0
    batch_window_ms: float = 5.0
    max_batch: int = 32
    cache_dir: Optional[str] = None
    no_cache: bool = False
    refresh: bool = False
    drain_timeout_s: float = 60.0

    @classmethod
    def describe(cls) -> Dict[str, str]:
        """``{field: repr(default)}`` — the docs table contract."""
        return {
            f.name: repr(f.default) for f in dataclasses.fields(cls)
        }


@dataclass
class ServeStats:
    """Per-server counters, surfaced by ``GET /v1/stats``.

    ``requests`` counts every point request accepted; each lands in
    exactly one of ``cache_hits`` (tier 1), ``coalesced`` (tier 2), or
    ``computed`` (tier 3, once its simulation finishes) — unless it
    ends in ``errors``.
    """

    requests: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    computed: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


def _warm_worker() -> int:
    """Pool-worker warm-up: pre-import the simulation stack.

    Submitted once per worker at :meth:`ExperimentService.start`, for
    two reasons.  First, latency: the first real request should not
    pay the NumPy/``repro`` import.  Second, and critically, fork
    safety: the executor forks workers lazily on first submit, and by
    then the event loop may have spawned helper threads (asyncio's
    ``getaddrinfo`` runs in the default thread executor) whose held
    locks a forked child would inherit mid-acquire and deadlock on.
    Forcing every fork here — while the process is still
    single-threaded — sidesteps that entirely.
    """
    from repro.apps import registry  # noqa: F401  (import cost is the point)
    from repro.core import run_program  # noqa: F401
    import os

    return os.getpid()


class ExperimentService:
    """The three-tier resolver behind every serving entry point."""

    def __init__(
        self,
        config: ServerConfig = ServerConfig(),
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.config = config
        if cache is None and not config.no_cache:
            cache = ResultCache(
                cache_dir=(
                    Path(config.cache_dir) if config.cache_dir else None
                ),
                refresh=config.refresh,
            )
        self.cache = cache
        self.stats = ServeStats()
        self.flight: Optional[SingleFlight] = None
        self.batcher: Optional[ColdPointBatcher] = None
        self._pool = None
        self._started = False
        self._closed = False

    async def start(self) -> "ExperimentService":
        """Bind to the running loop: build the pool and the batcher."""
        if self._started:
            return self
        if self.config.jobs > 0:
            self._pool = persistent_pool(self.config.jobs)
            # Fork/warm every worker now, while single-threaded (see
            # _warm_worker).  One submit per worker spawns the full
            # complement; gather keeps start() honest about readiness.
            await asyncio.gather(
                *(
                    asyncio.wrap_future(self._pool.submit(_warm_worker))
                    for _ in range(self.config.jobs)
                )
            )
        else:
            # Single in-process worker thread: serialized execution, so
            # per-spec SimOptions never race on the process globals.
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
        self.flight = SingleFlight()
        self.batcher = ColdPointBatcher(
            submit=lambda spec: self._pool.submit(
                execute_point_timed, spec
            ),
            on_done=self._point_done,
            window_s=self.config.batch_window_ms / 1000.0,
            max_batch=self.config.max_batch,
        )
        self._started = True
        return self

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError(
                "ExperimentService.start() must run inside the event "
                "loop before the first resolve()"
            )
        if self._closed:
            raise ServingError("server is shutting down", status=503)

    def _point_done(self, key: str, outcome, error) -> None:
        """Batcher completion: store, then wake every awaiter."""
        if error is not None:
            self.stats.errors += 1
            self.flight.fail(key, error)
            return
        result, seconds = outcome
        self.stats.computed += 1
        if self.cache is not None:
            try:
                self.cache.put(key, result)
            except OSError:
                pass  # read-only cache dir: serve without storing
        self.flight.resolve(key, (result, seconds))

    async def resolve(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request through the three tiers; returns the payload."""
        self._require_started()
        self.stats.requests += 1
        started = time.perf_counter()
        spec = decode_request(request)
        key = key_for_spec(spec)
        if self.cache is not None:
            result = self.cache.get(key)
            if result is not None:
                self.stats.cache_hits += 1
                return self._payload(
                    key, spec, result, "cache", None, started
                )
        future, leader = self.flight.begin(key)
        if leader:
            self.batcher.admit(key, spec)
        else:
            if self.cache is not None:
                self.cache.stats.coalesced += 1
            self.stats.coalesced += 1
        result, seconds = await future
        source = "computed" if leader else "coalesced"
        return self._payload(key, spec, result, source, seconds, started)

    def _payload(
        self, key, spec, result, source, compute_seconds, started
    ) -> Dict[str, Any]:
        # Everything under "result" (and its "digest") is a pure
        # function of the simulation; the envelope around it records
        # how *this* request was served.
        return {
            "key": key,
            "app": spec.app,
            "variant": spec.variant_name,
            "nprocs": spec.nprocs,
            "source": source,
            "compute_seconds": compute_seconds,
            "serve_seconds": time.perf_counter() - started,
            "digest": result_digest(result),
            "result": result_payload(result),
        }

    async def resolve_many(self, requests: List[Dict[str, Any]]):
        """Async-iterate payloads in completion order (JSONL feed).

        Each yielded payload carries ``index``, its position in the
        request list, so clients can reorder; errors yield an
        ``{"index": i, "error": ..., "status": ...}`` line instead of
        killing the stream.
        """
        self._require_started()

        async def one(i: int, request: Dict[str, Any]):
            try:
                payload = await self.resolve(request)
                payload["index"] = i
                return payload
            except ServingError as exc:
                return {
                    "index": i,
                    "error": str(exc),
                    "status": exc.status,
                }
            except Exception as exc:
                return {"index": i, "error": str(exc), "status": 500}

        tasks = [
            asyncio.ensure_future(one(i, request))
            for i, request in enumerate(requests)
        ]
        for completed in asyncio.as_completed(tasks):
            yield await completed

    def stats_payload(self) -> Dict[str, Any]:
        """The ``GET /v1/stats`` body: serving + cache + batcher."""
        payload: Dict[str, Any] = {
            "serving": self.stats.as_dict(),
            "inflight": len(self.flight) if self.flight else 0,
            "batcher": (
                {
                    "batches": self.batcher.batches,
                    "points": self.batcher.points,
                    "largest_batch": self.batcher.largest_batch,
                    "window_ms": self.config.batch_window_ms,
                }
                if self.batcher
                else None
            ),
            "cache": None,
        }
        if self.cache is not None:
            payload["cache"] = {
                "stats": self.cache.stats.as_dict(),
                **self.cache.summary(),
            }
        return payload

    async def shutdown(self, drain: bool = True) -> None:
        """Stop admitting, optionally drain in-flight work, stop pool.

        ``drain=True`` (the graceful path) flushes the batcher and
        waits — bounded by ``config.drain_timeout_s`` — until every
        in-flight request has its result; clients already awaiting get
        their payloads.  ``drain=False`` fails outstanding flights
        immediately.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        if drain:
            try:
                await asyncio.wait_for(
                    self.batcher.drain(),
                    timeout=self.config.drain_timeout_s,
                )
            except asyncio.TimeoutError:
                pass
        for key_future in self.flight.outstanding():
            if not key_future.done():
                key_future.set_exception(
                    ServingError("server shut down", status=503)
                )
        self._pool.shutdown(wait=drain)


class ExperimentServer:
    """HTTP/1.1 front end over an :class:`ExperimentService`."""

    def __init__(
        self,
        service: Optional[ExperimentService] = None,
        config: Optional[ServerConfig] = None,
    ) -> None:
        if service is None:
            service = ExperimentService(config or ServerConfig())
        self.service = service
        self.config = service.config
        self._server: Optional[asyncio.base_events.Server] = None
        #: Actual bound address, available after :meth:`start`
        #: (``port=0`` requests an ephemeral port).
        self.address: Optional[Tuple[str, int]] = None

    async def start(self) -> Tuple[str, int]:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting connections, then drain the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.shutdown(drain=drain)

    # -- one connection, one request ----------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            await self._dispatch(method, path, body, writer)
        except ConnectionError:
            pass
        except Exception as exc:
            try:
                await self._respond_json(
                    writer, 500, {"error": f"internal error: {exc}"}
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        try:
            method, path, _version = (
                request_line.decode("latin-1").split(None, 2)
            )
        except ValueError:
            return None
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    async def _dispatch(self, method, path, body, writer) -> None:
        if (method, path) not in ROUTES:
            await self._respond_json(
                writer,
                404,
                {
                    "error": f"no route {method} {path}",
                    "routes": [f"{m} {p}" for m, p in sorted(ROUTES)],
                },
            )
            return
        if path == "/v1/healthz":
            await self._respond_json(writer, 200, {"status": "ok"})
        elif path == "/v1/stats":
            await self._respond_json(
                writer, 200, self.service.stats_payload()
            )
        elif path == "/v1/point":
            try:
                request = json.loads(body or b"{}")
                payload = await self.service.resolve(request)
            except ServingError as exc:
                await self._respond_json(
                    writer, exc.status, {"error": str(exc)}
                )
                return
            except json.JSONDecodeError as exc:
                await self._respond_json(
                    writer, 400, {"error": f"bad JSON body: {exc}"}
                )
                return
            await self._respond_json(writer, 200, payload)
        elif path == "/v1/points":
            await self._stream_points(body, writer)

    async def _stream_points(self, body, writer) -> None:
        try:
            decoded = json.loads(body or b"{}")
            requests = decoded.get("points")
            if not isinstance(requests, list):
                raise ServingError(
                    "body must be {'points': [request, ...]}"
                )
        except json.JSONDecodeError as exc:
            await self._respond_json(
                writer, 400, {"error": f"bad JSON body: {exc}"}
            )
            return
        except ServingError as exc:
            await self._respond_json(
                writer, exc.status, {"error": str(exc)}
            )
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        async for payload in self.service.resolve_many(requests):
            writer.write(
                json.dumps(payload, sort_keys=True).encode() + b"\n"
            )
            await writer.drain()

    async def _respond_json(self, writer, status, payload) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "Error")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode()
        )
        writer.write(body)
        await writer.drain()
