"""The serving client: one facade over every transport (v2).

:class:`ServingClient`
    The client surface.  Construct it over a live HTTP server
    (``ServingClient(host, port)`` — a keep-alive session that reuses
    one connection across requests, reconnecting transparently if the
    server closed it) or over an in-process
    :class:`~repro.serving.server.ExperimentService`
    (``ServingClient(service=svc)`` — no sockets, same payloads).
    ``keepalive=False`` opens a fresh connection per request, the PR 8
    behaviour, kept measurable so benchmarks can isolate the
    connection-setup cost.

    Async methods (``point``, ``points``, ``resolve``, ``sweep``,
    ``stream_points``, ``stats``, ``healthz``) are the primary API;
    each has a ``*_sync`` twin that runs on a lazily started
    background event-loop thread, so synchronous callers get the same
    persistent session.

:class:`HttpClient` / :class:`InProcessClient`
    Deprecated PR 8 names, now thin aliases over :class:`ServingClient`
    (per-request connections / in-process respectively).  Each warns
    once per process on first construction, mirroring the ``SimOptions``
    env-alias pattern.

All transports speak the same request objects (see
:mod:`repro.serving.codec`) and return the same payload dicts.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

from repro.serving.codec import ServingError

_warned_aliases: set = set()


def _warn_once(name: str, replacement: str) -> None:
    if name in _warned_aliases:
        return
    _warned_aliases.add(name)
    print(
        f"repro-dsm: {name} is deprecated; use {replacement}",
        file=sys.stderr,
    )


def reset_deprecation_warnings() -> None:
    """Test hook: make the next alias construction warn again."""
    _warned_aliases.clear()


def _request(app: str, variant=None, nprocs: int = 1, **fields) -> Dict:
    request: Dict[str, Any] = {"app": app, "nprocs": nprocs}
    if variant is not None:
        request["variant"] = variant
    request.update(fields)
    return request


def _public(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Strip transport-private (underscore) keys from a service payload.

    The HTTP encoder consumes these (``_result_json`` — the hot tier's
    pre-serialised result); in-process callers must see the same dict
    an HTTP client would decode.
    """
    payload.pop("_result_json", None)
    return payload


class _LoopThread:
    """A daemon thread running one event loop, for the sync wrappers.

    The keep-alive session's reader/writer are bound to the loop that
    created them; running every ``*_sync`` call on this one thread
    keeps a single persistent connection alive across synchronous
    calls (``asyncio.run`` per call would tear it down each time).
    """

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever,
            name="repro-serving-client",
            daemon=True,
        )
        self._thread.start()

    def run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result()

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=2)


class ServingClient:
    """Talk to the serving layer — HTTP keep-alive or in-process."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8377,
        *,
        service=None,
        keepalive: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.service = service
        self.keepalive = keepalive and service is None
        self._conn: Optional[Tuple[Any, Any]] = None
        self._lock: Optional[asyncio.Lock] = None
        self._loop_thread: Optional[_LoopThread] = None
        #: Session diagnostics: connections opened / requests reusing one.
        self.connections_opened = 0
        self.requests_reused = 0

    # -- the async API -------------------------------------------------

    async def healthz(self) -> Dict[str, Any]:
        if self.service is not None:
            return {"status": "ok"}
        return await self._json("GET", "/v1/healthz")

    async def stats(self) -> Dict[str, Any]:
        if self.service is not None:
            return self.service.stats_payload()
        return await self._json("GET", "/v1/stats")

    async def point(
        self, app: str, variant=None, nprocs: int = 1, **fields
    ) -> Dict[str, Any]:
        """Resolve one point; returns the payload dict."""
        return await self.resolve(_request(app, variant, nprocs, **fields))

    async def resolve(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Resolve one already-built request object."""
        if self.service is not None:
            return _public(await self.service.resolve(request))
        return await self._json("POST", "/v1/point", request)

    async def points(
        self, requests: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Resolve many requests; returns payloads in request order."""
        if self.service is not None:
            resolved = await asyncio.gather(
                *(self.service.resolve(request) for request in requests)
            )
            return [_public(payload) for payload in resolved]
        ordered: List[Optional[Dict[str, Any]]] = [None] * len(requests)
        async for payload in self.stream_points(requests):
            ordered[payload["index"]] = payload
        missing = [i for i, p in enumerate(ordered) if p is None]
        if missing:
            raise ServingError(
                f"stream ended without results for indices {missing}",
                status=502,
            )
        return ordered

    async def stream_points(
        self, requests: List[Dict[str, Any]]
    ) -> AsyncIterator[Dict[str, Any]]:
        """Yield payloads as the server completes them (JSONL order)."""
        if self.service is not None:
            async for payload in self.service.resolve_many(requests):
                yield _public(payload)
            return
        async for line in self._stream(
            "POST", "/v1/points", {"points": requests}
        ):
            yield line

    async def sweep(
        self, request: Dict[str, Any]
    ) -> AsyncIterator[Dict[str, Any]]:
        """Expand a sweep server-side; yield its JSONL lines.

        The first line is the preamble ``{"sweep": {"kind": ...,
        "points": n}}``; every following line is a point payload (or an
        ``{"index", "error", "status"}`` line), in completion order.
        """
        if self.service is not None:
            points = self.service.expand(request)
            yield {
                "sweep": {
                    "kind": request.get("kind"),
                    "points": len(points),
                }
            }
            async for payload in self.service.resolve_many(points):
                yield _public(payload)
            return
        async for line in self._stream("POST", "/v1/sweep", request):
            yield line

    async def sweep_points(
        self, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Run a sweep to completion; points come back in index order.

        Returns ``{"sweep": preamble, "points": [...], "errors": [...]}``.
        """
        meta: Dict[str, Any] = {}
        points: List[Dict[str, Any]] = []
        errors: List[Dict[str, Any]] = []
        async for line in self.sweep(request):
            if "sweep" in line and not meta:
                meta = line["sweep"]
            elif "error" in line:
                errors.append(line)
            else:
                points.append(line)
        points.sort(key=lambda p: p["index"])
        return {"sweep": meta, "points": points, "errors": errors}

    async def close(self) -> None:
        """Close the keep-alive session (no-op for other transports)."""
        if self._lock is None:
            await self._close_conn()
            return
        async with self._lock:
            await self._close_conn()

    # -- sync wrappers -------------------------------------------------

    def _sync(self, coro):
        if self._loop_thread is None:
            self._loop_thread = _LoopThread()
        return self._loop_thread.run(coro)

    def healthz_sync(self) -> Dict[str, Any]:
        return self._sync(self.healthz())

    def stats_sync(self) -> Dict[str, Any]:
        return self._sync(self.stats())

    def point_sync(
        self, app: str, variant=None, nprocs: int = 1, **fields
    ) -> Dict[str, Any]:
        return self._sync(self.point(app, variant, nprocs, **fields))

    def resolve_sync(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._sync(self.resolve(request))

    def points_sync(
        self, requests: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        return self._sync(self.points(requests))

    def sweep_sync(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._sync(self.sweep_points(request))

    def close_sync(self) -> None:
        if self._loop_thread is None:
            return
        self._loop_thread.run(self.close())
        self._loop_thread.stop()
        self._loop_thread = None

    # -- HTTP transport ------------------------------------------------

    async def _close_conn(self) -> None:
        if self._conn is None:
            return
        _reader, writer = self._conn
        self._conn = None
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def _head(self, method, path, body, keep_alive) -> bytes:
        head = f"{method} {path} HTTP/1.1\r\nHost: {self.host}\r\n"
        if body:
            head += (
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
            )
        head += (
            "Connection: keep-alive\r\n\r\n"
            if keep_alive
            else "Connection: close\r\n\r\n"
        )
        return head.encode()

    async def _read_head(self, reader):
        """Parse a response's status line + headers."""
        status_line = await reader.readline()
        if not status_line:
            # EOF before a status line: the server closed the
            # connection (idle timeout, request limit, shutdown).
            # Surface it as a connection error so the keep-alive
            # session's retry-once path can take it.
            raise ConnectionResetError("connection closed by server")
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise ServingError(
                f"malformed response: {status_line!r}", status=502
            )
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    async def _json(self, method: str, path: str, payload=None):
        body = (
            json.dumps(payload).encode() if payload is not None else None
        )
        if self.keepalive:
            status, raw = await self._session_roundtrip(method, path, body)
        else:
            status, reader, writer = await self._roundtrip(
                method, path, body
            )
            raw = await reader.read(-1)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        decoded = json.loads(raw) if raw else {}
        if status != 200:
            raise ServingError(
                decoded.get("error", f"HTTP {status}"), status=status
            )
        return decoded

    async def _session_roundtrip(self, method, path, body):
        """One request over the persistent connection (serialised).

        A connection the server closed (idle timeout,
        ``max_requests_per_conn``) surfaces as a reset/EOF on the next
        use; the session retries exactly once on a fresh connection.
        A failure on a connection opened for *this* request is real
        and propagates.
        """
        if self._lock is None:
            self._lock = asyncio.Lock()
        async with self._lock:
            for attempt in (0, 1):
                fresh = self._conn is None
                if fresh:
                    self._conn = await asyncio.open_connection(
                        self.host, self.port
                    )
                    self.connections_opened += 1
                else:
                    self.requests_reused += 1
                reader, writer = self._conn
                try:
                    writer.write(
                        self._head(method, path, body, keep_alive=True)
                        + (body or b"")
                    )
                    await writer.drain()
                    status, headers = await self._read_head(reader)
                    length = int(headers.get("content-length", 0))
                    raw = (
                        await reader.readexactly(length) if length else b""
                    )
                except (
                    ConnectionError,
                    OSError,
                    asyncio.IncompleteReadError,
                ):
                    await self._close_conn()
                    if fresh or attempt:
                        raise
                    continue
                if headers.get("connection", "").lower() == "close":
                    await self._close_conn()
                return status, raw
        raise AssertionError("unreachable")

    async def _roundtrip(
        self, method: str, path: str, body: Optional[bytes] = None
    ):
        """One fresh-connection request; returns ``(status, reader,
        writer)`` with the reader at the start of the response body."""
        reader, writer = await asyncio.open_connection(
            self.host, self.port
        )
        self.connections_opened += 1
        writer.write(self._head(method, path, body, keep_alive=False))
        writer.write(body or b"")
        await writer.drain()
        status, _headers = await self._read_head(reader)
        return status, reader, writer

    async def _stream(self, method, path, payload):
        """Open a dedicated connection and yield its JSONL lines.

        Streams are close-delimited on the wire, so they never share
        the keep-alive session's connection.
        """
        body = json.dumps(payload).encode()
        status, reader, writer = await self._roundtrip(method, path, body)
        try:
            if status != 200:
                raw = await reader.read(-1)
                decoded = json.loads(raw) if raw else {}
                raise ServingError(
                    decoded.get("error", f"HTTP {status}"), status=status
                )
            while True:
                line = await reader.readline()
                if not line:
                    break
                if line.strip():
                    yield json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class InProcessClient(ServingClient):
    """Deprecated alias: ``ServingClient(service=service)``."""

    def __init__(self, service) -> None:
        _warn_once("InProcessClient", "ServingClient(service=...)")
        super().__init__(service=service)


class HttpClient(ServingClient):
    """Deprecated alias: per-request-connection :class:`ServingClient`.

    Keeps the PR 8 transport (one fresh connection per request) so
    existing call sites and benchmarks measure what they always did;
    new code should construct :class:`ServingClient` and get the
    keep-alive session.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8377) -> None:
        _warn_once("HttpClient", "ServingClient(host, port)")
        super().__init__(host, port, keepalive=False)
