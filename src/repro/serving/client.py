"""Awaitable clients for the experiment server.

:class:`InProcessClient`
    Wraps an :class:`~repro.serving.server.ExperimentService` directly
    — no sockets, no serialization of the request — so tests and
    benchmarks exercise the exact three-tier resolution path the HTTP
    front end uses, deterministically and fast.

:class:`HttpClient`
    A stdlib-only asyncio HTTP/1.1 client for a running
    :class:`~repro.serving.server.ExperimentServer` (one connection per
    request, close-delimited responses — mirroring the server).

Both speak the same request objects (see
:mod:`repro.serving.codec`) and return the same payload dicts.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, List, Optional

from repro.serving.codec import ServingError


def _request(app: str, variant=None, nprocs: int = 1, **fields) -> Dict:
    request: Dict[str, Any] = {"app": app, "nprocs": nprocs}
    if variant is not None:
        request["variant"] = variant
    request.update(fields)
    return request


class InProcessClient:
    """Drive a service on the current event loop, no sockets."""

    def __init__(self, service) -> None:
        self.service = service

    async def point(
        self, app: str, variant=None, nprocs: int = 1, **fields
    ) -> Dict[str, Any]:
        """Resolve one point; returns the payload dict."""
        return await self.service.resolve(
            _request(app, variant, nprocs, **fields)
        )

    async def resolve(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Resolve one already-built request object."""
        return await self.service.resolve(request)

    async def points(
        self, requests: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Resolve many requests concurrently, in request order."""
        return await asyncio.gather(
            *(self.service.resolve(request) for request in requests)
        )

    async def stats(self) -> Dict[str, Any]:
        return self.service.stats_payload()


class HttpClient:
    """Talk to a live server over TCP (stdlib asyncio only)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8377) -> None:
        self.host = host
        self.port = port

    async def _roundtrip(
        self, method: str, path: str, body: Optional[bytes] = None
    ):
        """One request; returns ``(status, reader, writer)`` with the
        reader positioned at the start of the response body."""
        reader, writer = await asyncio.open_connection(
            self.host, self.port
        )
        head = f"{method} {path} HTTP/1.1\r\nHost: {self.host}\r\n"
        if body:
            head += (
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
            )
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode() + (body or b""))
        await writer.drain()
        status_line = await reader.readline()
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            writer.close()
            raise ServingError(
                f"malformed response: {status_line!r}", status=502
            )
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
        return status, reader, writer

    async def _json(self, method: str, path: str, payload=None):
        body = (
            json.dumps(payload).encode() if payload is not None else None
        )
        status, reader, writer = await self._roundtrip(method, path, body)
        raw = await reader.read(-1)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        decoded = json.loads(raw) if raw else {}
        if status != 200:
            raise ServingError(
                decoded.get("error", f"HTTP {status}"), status=status
            )
        return decoded

    async def healthz(self) -> Dict[str, Any]:
        return await self._json("GET", "/v1/healthz")

    async def stats(self) -> Dict[str, Any]:
        return await self._json("GET", "/v1/stats")

    async def point(
        self, app: str, variant=None, nprocs: int = 1, **fields
    ) -> Dict[str, Any]:
        return await self.resolve(_request(app, variant, nprocs, **fields))

    async def resolve(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return await self._json("POST", "/v1/point", request)

    async def stream_points(
        self, requests: List[Dict[str, Any]]
    ) -> AsyncIterator[Dict[str, Any]]:
        """Yield payloads as the server completes them (JSONL order)."""
        body = json.dumps({"points": requests}).encode()
        status, reader, writer = await self._roundtrip(
            "POST", "/v1/points", body
        )
        try:
            if status != 200:
                raw = await reader.read(-1)
                decoded = json.loads(raw) if raw else {}
                raise ServingError(
                    decoded.get("error", f"HTTP {status}"), status=status
                )
            while True:
                line = await reader.readline()
                if not line:
                    break
                if line.strip():
                    yield json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def points(
        self, requests: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Resolve many requests; returns payloads in request order."""
        ordered: List[Optional[Dict[str, Any]]] = [None] * len(requests)
        async for payload in self.stream_points(requests):
            ordered[payload["index"]] = payload
        missing = [i for i, p in enumerate(ordered) if p is None]
        if missing:
            raise ServingError(
                f"stream ended without results for indices {missing}",
                status=502,
            )
        return ordered
