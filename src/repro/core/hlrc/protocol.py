"""Home-based lazy release consistency (HLRC).

The protocol the field converged on shortly after the paper, and the
natural midpoint between its two systems:

* Consistency is TreadMarks' lazy release consistency: vector
  timestamps, interval records, and write notices travel with lock
  grants and barrier exchanges; noticed pages are invalidated at
  acquires (all inherited from :class:`repro.core.lrc.LrcProtocolBase`).
* Data movement is Cashmere-like: every page has a *home*.  Writers
  twin the page, and at each release eagerly diff it and send the diff
  to the home, which applies it at once (the release completes only
  after the home acknowledges).  Twins and diffs are then discarded —
  no diff accumulation, no garbage-collection pressure.
* Readers validate an invalid page with a single whole-page fetch from
  the home, which is guaranteed current for everything in the reader's
  causal past.

Compared over the paper's axes: HLRC keeps TreadMarks' "communicate
only at synchronization" laziness but gains Cashmere's one-message page
validation and multi-writer merging at a home — at the cost of
whole-page reads and eager diff traffic on every release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

import numpy as np

from repro.config import WorkingSet
from repro.cluster.machine import Processor
from repro.cluster.messaging import Request
from repro.core.lrc import LrcProcState, LrcProtocolBase
from repro.core.intervals import IntervalStore
from repro.memory import policy as sharing_policy
from repro.memory.diff import apply_diff, make_diff
from repro.memory.page import Protection
from repro.stats import Category

PAGE_FETCH = "hlrc_page_fetch"
DIFF_TO_HOME = "hlrc_diff_to_home"


@dataclass
class HlrcPage:
    """One processor's view of one page (far simpler than TreadMarks':
    no pending lists, no diff bookkeeping — the home holds the truth)."""

    perm: Protection = Protection.NONE
    copy: Optional[np.ndarray] = None
    twin: Optional[np.ndarray] = None


@dataclass
class ProcState(LrcProcState):
    """HLRC per-processor protocol state."""

    pages: Dict[int, HlrcPage] = field(default_factory=dict)

    def page(self, page_idx: int) -> HlrcPage:
        found = self.pages.get(page_idx)
        if found is None:
            found = HlrcPage()
            self.pages[page_idx] = found
        return found


class HlrcProtocol(LrcProtocolBase):
    """LRC invalidation with eager diffs to per-page homes."""

    # Writes touch the local copy only (diffs move eagerly at release,
    # not per write), so hot write spans qualify for the zero-cost
    # scatter path.
    free_writes = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # The authoritative home copies (the home processor's ``copy``
        # aliases these).
        self.home_pages: Dict[int, np.ndarray] = {}
        # Home assignments; with ``first-touch`` homing (the default) a
        # page's first faulting processor becomes its home, exactly the
        # placement lesson Cashmere taught (Section 2.1) and the HLRC
        # systems adopted.
        self.homes: Dict[int, int] = {}
        # Dynamic re-homing state (docs/POLICIES.md): per-unit remote
        # fetch counts by processor since the unit's last (re-)homing,
        # and per-unit migration counts bounding ping-pong.
        self._dynamic_homing = self.cfg.resolved_homing == "dynamic"
        self._fetch_counts: Dict[int, Dict[int, int]] = {}
        self._migrations: Dict[int, int] = {}

    def _make_proc_state(self) -> ProcState:
        return ProcState(
            vts=[0] * self.cluster.nprocs,
            store=IntervalStore(self.cluster.nprocs),
        )

    def _home_of(self, page_idx: int):
        """The page's home processor, or None if not yet assigned."""
        return self.homes.get(page_idx)

    def _assign_home(self, proc: Processor, page_idx: int) -> Generator:
        """Home assignment per the run's ``homing`` policy (first-touch,
        round-robin by unit index, or dynamic = first-touch now plus
        re-homing later), broadcast like a Cashmere directory update."""
        if page_idx in self.homes:
            return
        if self.cfg.resolved_homing == "round-robin":
            home = page_idx % self.nprocs
        else:  # first-touch and dynamic both start at the toucher
            home = proc.pid
        self.homes[page_idx] = home
        self.trace(proc, "home_assigned", page=page_idx, home=home)
        yield from proc.busy(self.costs.dir_modify_locked, Category.PROTOCOL)
        self.network.write(proc.node.nid, 8, broadcast=True)
        home_state = self.procs[home]
        home_page = home_state.page(page_idx)
        if home_page.copy is not None:
            # Adopt the home's existing (possibly warm) copy as the
            # authoritative one.
            self.home_pages[page_idx] = home_page.copy
        else:
            self.home_pages[page_idx] = self.space.backing_page(
                page_idx
            ).copy()
            home_page.copy = self.home_pages[page_idx]

    def _home_page(self, page_idx: int) -> np.ndarray:
        data = self.home_pages.get(page_idx)
        if data is None:
            data = self.space.backing_page(page_idx).copy()
            self.home_pages[page_idx] = data
        return data

    # ------------------------------------------------------------------
    # faults and data access
    # ------------------------------------------------------------------

    def ensure_read(self, proc: Processor, page_idx: int) -> Generator:
        state = self._state(proc)
        page = state.page(page_idx)
        if page.perm.allows_read():
            return
        proc.bump("read_faults")
        self.trace(proc, "read_fault", page=page_idx)
        yield from proc.busy(self.costs.page_fault, Category.PROTOCOL)
        yield from self._assign_home(proc, page_idx)
        yield from self._validate_page(proc, page_idx, page)
        self._set_perm(proc.pid, page_idx, page, Protection.READ)
        yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)
        yield from self._after_fault(proc, page_idx)

    def ensure_write(self, proc: Processor, page_idx: int) -> Generator:
        state = self._state(proc)
        page = state.page(page_idx)
        if page.perm.allows_write():
            return
        proc.bump("write_faults")
        self.trace(proc, "write_fault", page=page_idx)
        yield from proc.busy(self.costs.page_fault, Category.PROTOCOL)
        yield from self._assign_home(proc, page_idx)
        if not page.perm.allows_read():
            yield from self._validate_page(proc, page_idx, page)
        is_home = self._home_of(page_idx) == proc.pid
        if not is_home and page.twin is None:
            # The home writes its copy in place; everyone else twins so
            # the release can diff.
            page.twin = page.copy.copy()
            proc.bump("twins_created")
            self.trace(proc, "twin", page=page_idx)
            yield from proc.busy(
                self.costs.twin_cost(self.space.page_size), Category.PROTOCOL
            )
        state.notices.add(page_idx)
        self._set_perm(proc.pid, page_idx, page, Protection.READ_WRITE)
        yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)

    def _prefetch_page(self, proc: Processor, page_idx: int) -> Generator:
        """Software prefetch: re-validate an invalidated unit to READ
        without the demand-fault kernel trap.  Re-validation only: units
        whose home is unassigned or that this processor holds no stale
        copy of are skipped — placement and first touches stay with
        demand faults."""
        if page_idx not in self.homes:
            return
        page = self._state(proc).pages.get(page_idx)
        if page is None or page.copy is None or page.perm.allows_read():
            return
        proc.bump("prefetches")
        self.trace(proc, "prefetch", page=page_idx)
        yield from self._validate_page(proc, page_idx, page)
        self._set_perm(proc.pid, page_idx, page, Protection.READ)
        yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)

    def page_data(self, proc: Processor, page_idx: int) -> np.ndarray:
        page = self._state(proc).page(page_idx)
        if not page.perm.allows_read() or page.copy is None:
            raise RuntimeError(
                f"p{proc.pid} touched page {page_idx} without a mapping"
            )
        return page.copy

    def apply_write(
        self, proc: Processor, page_idx: int, start: int, raw: np.ndarray
    ) -> Generator:
        page = self._state(proc).page(page_idx)
        if not page.perm.allows_write():
            raise RuntimeError(
                f"p{proc.pid} wrote page {page_idx} without permission"
            )
        page.copy[start : start + len(raw)] = raw
        return
        yield  # pragma: no cover - writes are local; diffs move at release

    def _validate_page(
        self, proc: Processor, page_idx: int, page: HlrcPage
    ) -> Generator:
        """One whole-page fetch from the home (or a local bind)."""
        home = self._home_of(page_idx)
        if home == proc.pid:
            page.copy = self._home_page(page_idx)  # alias, like Cashmere
            return
        # If we hold unflushed writes (a twin from the open interval),
        # they must survive the refetch: extract them first and merge
        # them over the fresh snapshot.
        own_diff = None
        if page.twin is not None:
            own_diff = make_diff(page.twin, page.copy)
            yield from proc.busy(
                self.costs.diff_cost(
                    self.space.page_size,
                    own_diff.dirty_bytes / self.space.page_size,
                ),
                Category.PROTOCOL,
            )
        if self.network.remote_reads:
            # One-sided read of the home copy (the home's master page is
            # always current under HLRC): wire time only, no home CPU.
            yield from self.rdma_read(
                proc,
                self.cluster.proc(home).node.nid,
                self.space.page_size,
            )
            snapshot = self._home_page(page_idx)
        else:
            snapshot = yield from self.messenger.request(
                proc,
                self.cluster.proc(home),
                PAGE_FETCH,
                payload=page_idx,
                size=8,
            )
        yield from proc.busy(
            self.costs.memcpy_cost(self.space.page_size), Category.PROTOCOL
        )
        if page.copy is None:
            page.copy = snapshot.copy()
        else:
            page.copy[:] = snapshot
        if own_diff is not None:
            # The twin becomes the fresh base, so the next release still
            # diffs out exactly our own words.
            page.twin = snapshot.copy()
            apply_diff(page.copy, own_diff)
        proc.bump("page_fetches")
        self.trace(proc, "page_fetch", page=page_idx, home=home)
        if self._dynamic_homing and own_diff is None:
            yield from self._maybe_migrate_home(proc, page_idx, page, home)

    def _maybe_migrate_home(
        self, proc: Processor, page_idx: int, page: HlrcPage, old_home: int
    ) -> Generator:
        """Dynamic homing: re-home ``page_idx`` to a processor that
        establishes a remote-fetch majority.

        Mirrors Cashmere's policy, keyed by processor (HLRC homes are
        pids): ``MIGRATE_AFTER`` fetches since the last (re-)homing,
        strictly more than any other fetcher, moves the home; the
        fetcher's fresh copy — identical to the authoritative content it
        just pulled — becomes the new home copy.  Never fires while the
        old home is mid-interval on the page (the home writes in place,
        so unseating it would strand unflushed writes), nor for a
        fetcher holding its own twin.  ``MIGRATE_LIMIT`` bounds
        ping-pong.  Yields nothing unless a migration happens.
        """
        counts = self._fetch_counts.setdefault(page_idx, {})
        pid = proc.pid
        counts[pid] = counts.get(pid, 0) + 1
        if self._migrations.get(page_idx, 0) >= sharing_policy.MIGRATE_LIMIT:
            return
        mine = counts[pid]
        if mine < sharing_policy.MIGRATE_AFTER:
            return
        if any(c >= mine for p, c in counts.items() if p != pid):
            return
        old_page = self.procs[old_home].pages.get(page_idx)
        if old_page is not None and old_page.perm is Protection.READ_WRITE:
            return
        self.homes[page_idx] = pid
        self.home_pages[page_idx] = page.copy
        self._migrations[page_idx] = self._migrations.get(page_idx, 0) + 1
        self._fetch_counts[page_idx] = {}
        proc.bump("home_migrations")
        self.trace(
            proc, "home_migrated", page=page_idx, home=pid, old=old_home
        )
        # Announcing the new home is a locked directory update, like the
        # original assignment.
        yield from proc.busy(self.costs.dir_modify_locked, Category.PROTOCOL)
        self.network.write(proc.node.nid, 8, broadcast=True)

    # ------------------------------------------------------------------
    # eager diff propagation (release side)
    # ------------------------------------------------------------------

    def _on_lock_release(self, proc: Processor) -> Generator:
        yield from self._close_interval(proc)

    def _on_interval_closed(self, proc: Processor, pages) -> Generator:
        """Diff every written page and push the diffs to their homes;
        the release completes once every home has acknowledged."""
        state = self._state(proc)
        outstanding = []
        for page_idx in pages:
            home = self._home_of(page_idx)
            page = state.page(page_idx)
            if home == proc.pid:
                # The home wrote its copy in place — nothing to flush —
                # but it must still re-protect, so that next interval's
                # writes fault and raise fresh notices.
                if page.perm is Protection.READ_WRITE:
                    self._set_perm(proc.pid, page_idx, page, Protection.READ)
                    yield from proc.busy(
                        self.costs.mprotect, Category.PROTOCOL
                    )
                continue
            if page.twin is None:
                continue  # already flushed (multiple releases, no writes)
            diff = make_diff(page.twin, page.copy)
            dirty_fraction = diff.dirty_bytes / self.space.page_size
            yield from proc.busy(
                self.costs.diff_cost(self.space.page_size, dirty_fraction),
                Category.PROTOCOL,
            )
            page.twin = None
            proc.bump("diffs_created")
            self.trace(
                proc, "diff_to_home", page=page_idx, bytes=diff.dirty_bytes
            )
            # Re-protect so the next interval's writes re-twin and raise
            # fresh notices.
            if page.perm is Protection.READ_WRITE:
                self._set_perm(proc.pid, page_idx, page, Protection.READ)
                yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)
            request = yield from self.messenger.post_request(
                proc,
                self.cluster.proc(home),
                DIFF_TO_HOME,
                payload=(page_idx, diff),
                size=diff.encoded_size + 16,
            )
            outstanding.append(request)
        if outstanding:
            t0 = self.engine.now
            for request in outstanding:
                yield from proc.wait(request.reply_event)
            self.trace(
                proc,
                "diff_flush_wait",
                dur=self.engine.now - t0,
                diffs=len(outstanding),
            )

    # ------------------------------------------------------------------
    # base-class hooks
    # ------------------------------------------------------------------

    def _note_remote_write(
        self, proc: Processor, writer: int, iid: int, page_idx: int
    ) -> float:
        if self._home_of(page_idx) == proc.pid:
            return 0.0  # the home copy is always current
        state = self._state(proc)
        page = state.pages.get(page_idx)
        if page is None or page.perm is Protection.NONE:
            return 0.0
        self._set_perm(proc.pid, page_idx, page, Protection.NONE)
        self.trace(proc, "invalidate", page=page_idx)
        return self.costs.mprotect

    def _serve_data(self, proc: Processor, request: Request) -> Generator:
        if request.kind == PAGE_FETCH:
            yield from self._serve_page_fetch(proc, request)
        elif request.kind == DIFF_TO_HOME:
            yield from self._serve_diff_to_home(proc, request)
        else:
            raise RuntimeError(f"hlrc cannot serve {request.kind!r}")

    def _serve_page_fetch(self, proc: Processor, request: Request) -> Generator:
        page_idx = request.payload
        # Reading the cold page is the first bus pass (the messenger
        # charges the transmit write).
        yield from proc.busy(
            0.5 * self.costs.memcpy_cost(self.space.page_size),
            Category.PROTOCOL,
        )
        snapshot = self._home_page(page_idx)
        yield from self.messenger.reply(
            proc, request, payload=snapshot, size=self.space.page_size
        )

    def _serve_diff_to_home(
        self, proc: Processor, request: Request
    ) -> Generator:
        page_idx, diff = request.payload
        if self._home_of(page_idx) != proc.pid and not self._dynamic_homing:
            # Under dynamic homing the home may have moved while this
            # diff was in flight; ``_home_page`` below resolves to the
            # *current* authoritative copy, so the diff still lands.
            raise RuntimeError(
                f"diff for page {page_idx} sent to non-home p{proc.pid}"
            )
        apply_cost = self.costs.diff_apply_base + (
            self.costs.diff_apply_per_kb * diff.dirty_bytes / 1024.0
        )
        yield from proc.busy(apply_cost, Category.PROTOCOL)
        apply_diff(self._home_page(page_idx), diff)
        proc.bump("diffs_applied")
        self.trace(proc, "diff_apply", page=page_idx)
        # The home's own mapping (and twin, if it is mid-interval) must
        # absorb the update too.
        state = self._state(proc)
        page = state.pages.get(page_idx)
        if page is not None and page.twin is not None:
            apply_diff(page.twin, diff)
        yield from self.messenger.reply(proc, request, payload=True, size=8)

    # ------------------------------------------------------------------
    # garbage collection hooks
    # ------------------------------------------------------------------

    def _gc_flush_pages(self, proc: Processor) -> Generator:
        # Homes are always current and readers refetch whole pages, so
        # no page state depends on old interval records.
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # cost modelling / warm start
    # ------------------------------------------------------------------

    def compute_factors(self, ws: WorkingSet):
        user = self.cache.total_factor(ws)
        total = self.cache.total_factor(ws, ws.twin, ws.twin_l2)
        return user, total, Category.PROTOCOL

    def prewarm(self) -> None:
        """Give every processor a valid read-only copy of every page.

        Homes stay unassigned: the first post-warm *fault* (normally the
        first write) picks the home, which makes first-touch placement
        follow the writers."""
        for pid, state in self.procs.items():
            for page_idx in range(self.space.n_pages):
                page = state.page(page_idx)
                page.copy = self.space.backing_page(page_idx).copy()
                self._set_perm(pid, page_idx, page, Protection.READ)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        super().check_invariants()
        for pid, state in self.procs.items():
            for page_idx, page in state.pages.items():
                if (
                    page.perm is Protection.READ_WRITE
                    and page.twin is None
                    and self._home_of(page_idx) != pid
                ):
                    raise AssertionError(
                        f"p{pid}: non-home page {page_idx} writable "
                        "without a twin"
                    )
