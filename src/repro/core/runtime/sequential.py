"""A no-op protocol for sequential (unlinked) reference runs.

The paper measures sequential times "by running each application
sequentially without linking it to either TreadMarks or Cashmere"; this
protocol provides exactly that: direct access to the backing store with
no faults, no synchronization cost, and no instrumentation overhead.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.base import DsmProtocol
from repro.memory.address_space import AddressSpace


def _noop() -> Generator:
    return
    yield  # pragma: no cover - makes this a generator function


class SequentialProtocol(DsmProtocol):
    """Free memory access for a single processor."""

    counts_polling = False
    free_writes = True  # unlinked writes go straight to the backing store

    def __init__(self, space: AddressSpace, costs=None):
        from repro.cluster.cache import CacheModel
        from repro.config import CostModel

        self.space = space
        self.cache = CacheModel(costs or CostModel())

    def compute_factors(self, ws):
        # The unlinked sequential run still pays the inherent cache cost
        # of its working sets (a whole-matrix Gauss does not fit in L2).
        from repro.stats import Category

        factor = self.cache.total_factor(ws)
        return factor, factor, Category.USER

    def ensure_read(self, proc, page: int) -> Generator:
        return _noop()

    def ensure_write(self, proc, page: int) -> Generator:
        return _noop()

    # Every page is always mapped read/write: the fast span paths go
    # straight to the backing store, with no bitmaps and no faults.

    def fast_read(self, proc, space, offset: int, nbytes: int) -> np.ndarray:
        return space.read_backing(offset, nbytes)

    def fast_write(self, proc, space, offset: int, raw) -> bool:
        space.write_backing(offset, raw)
        return True

    def fast_gather(self, proc, space, segs, total: int) -> np.ndarray:
        out = np.empty(total, np.uint8)
        pos = 0
        for offset, nbytes in segs:
            out[pos : pos + nbytes] = space.read_backing(offset, nbytes)
            pos += nbytes
        return out

    def fast_scatter(self, proc, space, segs, raw) -> bool:
        pos = 0
        for offset, nbytes in segs:
            space.write_backing(offset, raw[pos : pos + nbytes])
            pos += nbytes
        return True

    def page_data(self, proc, page: int) -> np.ndarray:
        return self.space.backing_page(page)

    def apply_write(self, proc, page: int, start: int, raw) -> Generator:
        self.space.backing_page(page)[start : start + len(raw)] = raw
        return _noop()

    def lock_acquire(self, proc, lock_id: int) -> Generator:
        return _noop()

    def lock_release(self, proc, lock_id: int) -> Generator:
        return _noop()

    def barrier(self, proc, barrier_id: int) -> Generator:
        return _noop()

    def flag_set(self, proc, flag_id: int) -> Generator:
        return _noop()

    def flag_wait(self, proc, flag_id: int) -> Generator:
        return _noop()

    def serve(self, proc, request) -> Generator:
        raise RuntimeError("sequential runs receive no remote requests")
