"""SPMD program execution on the simulated cluster.

A :class:`Program` bundles an (untimed) setup function with a worker
generator.  :func:`run_program` builds the cluster, the network, and the
requested protocol, runs one worker per processor, and returns a
:class:`RunResult` with the simulated execution time, statistics, and the
workers' return values (used to verify results against the sequential
NumPy reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.config import RunConfig, SystemKind
from repro.cluster.machine import Cluster
from repro.cluster.messaging import Messenger
from repro.cluster.network import NetworkModel, build_network
from repro.core.runtime.env import Env
from repro.memory.address_space import AddressSpace
from repro.sim import Engine
from repro.stats import Breakdown, Category, StatsBoard
from repro.stats.trace import Tracer


@dataclass(frozen=True)
class Program:
    """An SPMD application.

    ``setup(space, params)`` allocates and initializes shared arrays (an
    untimed initialization phase, as in the paper) and returns the
    handles dict passed to every worker.  ``worker(env, shared, params)``
    is a generator; its return value is collected per rank.
    """

    name: str
    setup: Callable[[AddressSpace, Dict], Dict]
    worker: Callable[[Env, Dict, Dict], Any]


@dataclass
class RunResult:
    """Outcome of one simulated execution."""

    program: str
    config: RunConfig
    exec_time: float  # simulated microseconds
    stats: StatsBoard
    values: List[Any]
    network_bytes: int = 0
    trace: Optional[Tracer] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def breakdown(self) -> Breakdown:
        return Breakdown.from_stats(self.stats)

    def counter(self, name: str) -> int:
        return self.stats.total(name)

    def speedup_over(self, sequential_us: float) -> float:
        if self.exec_time <= 0:
            raise ValueError("run has no execution time")
        return sequential_us / self.exec_time


@dataclass
class System:
    """A fully wired simulated cluster: engine, network, messenger, and
    protocol, with servers attached and the protocol started.

    :func:`build_system` assembles one; :func:`run_program` runs workers
    on one.  Tests and microbenchmarks use it to drive the protocol
    directly without an application (``repro.api.build_system`` is the
    public entry point).
    """

    engine: Engine
    cluster: Cluster
    network: NetworkModel
    messenger: Messenger
    space: AddressSpace
    stats: StatsBoard
    protocol: Any
    tracer: Tracer
    config: RunConfig


def build_system(
    run_cfg: RunConfig,
    space: Optional[AddressSpace] = None,
    placement: Optional[List[tuple]] = None,
) -> System:
    """Assemble and start the simulated system for ``run_cfg``.

    ``space`` lets callers pass an address space whose regions are
    already allocated and initialized (the untimed setup phase);
    ``run_cfg.warm_start`` then pre-validates read-only copies.
    """
    from repro.harness.configs import placement as default_placement

    engine = Engine()
    stats = StatsBoard(run_cfg.nprocs)
    if placement is None:
        placement = default_placement(
            run_cfg.nprocs, run_cfg.cluster, run_cfg.variant.mechanism
        )
    cluster = Cluster(
        engine,
        run_cfg.cluster,
        run_cfg.costs,
        run_cfg.variant.mechanism,
        placement,
        stats,
    )
    network = build_network(
        run_cfg.network, engine, run_cfg.cluster, run_cfg.costs
    )
    messenger = Messenger(
        engine, cluster, network, run_cfg.costs, run_cfg.variant.transport
    )
    if space is None:
        space = AddressSpace(
            run_cfg.cluster.page_size, unit_size=run_cfg.unit_bytes
        )
    tracer = Tracer(enabled=run_cfg.trace)
    protocol = _build_protocol(
        run_cfg.variant.system,
        engine,
        cluster,
        network,
        messenger,
        space,
        stats,
        run_cfg,
    )
    protocol.tracer = tracer
    for proc in cluster.procs:
        proc.server = protocol.serve
    for node in cluster.nodes:
        if node.protocol_processor is not None:
            node.protocol_processor.server = protocol.serve
    cluster.start_protocol_processors()
    protocol.start()
    if run_cfg.warm_start:
        protocol.prewarm()
    return System(
        engine=engine,
        cluster=cluster,
        network=network,
        messenger=messenger,
        space=space,
        stats=stats,
        protocol=protocol,
        tracer=tracer,
        config=run_cfg,
    )


def _build_protocol(
    system: SystemKind,
    engine: Engine,
    cluster: Cluster,
    network: NetworkModel,
    messenger: Messenger,
    space: AddressSpace,
    stats: StatsBoard,
    run_cfg: RunConfig,
):
    if system is SystemKind.CASHMERE:
        from repro.core.cashmere.protocol import CashmereProtocol

        return CashmereProtocol(
            engine, cluster, network, messenger, space, stats, run_cfg
        )
    if system is SystemKind.TREADMARKS:
        from repro.core.treadmarks.protocol import TreadMarksProtocol

        return TreadMarksProtocol(
            engine, cluster, network, messenger, space, stats, run_cfg
        )
    if system is SystemKind.HLRC:
        from repro.core.hlrc.protocol import HlrcProtocol

        return HlrcProtocol(
            engine, cluster, network, messenger, space, stats, run_cfg
        )
    raise ValueError(f"unknown system {system!r}")


def run_program(
    program: Program,
    run_cfg: RunConfig,
    params: Optional[Dict] = None,
    placement: Optional[List[tuple]] = None,
) -> RunResult:
    """Execute ``program`` on ``run_cfg.nprocs`` simulated processors."""
    params = dict(params or {})
    # The space's "pages" are the run's sharing units (docs/POLICIES.md);
    # unit_bytes is None at the default granularity, reconstructing the
    # pre-policy space exactly.
    space = AddressSpace(
        run_cfg.cluster.page_size, unit_size=run_cfg.unit_bytes
    )
    shared = program.setup(space, params)
    system = build_system(run_cfg, space=space, placement=placement)
    engine = system.engine
    cluster = system.cluster
    stats = system.stats
    protocol = system.protocol

    values: List[Any] = [None] * run_cfg.nprocs

    def run_worker(rank: int):
        env = Env(rank, run_cfg.nprocs, cluster.proc(rank), protocol)
        result = yield from program.worker(env, shared, params)
        values[rank] = result
        if not stats[rank].frozen:
            stats[rank].freeze(engine.now)
        # The real process stays alive after its work is done and keeps
        # fielding remote requests (polls/interrupts) while idle.
        proc = cluster.proc(rank)
        engine.process(
            proc.serve_forever(),
            name=f"idle-p{rank}",
            daemon=True,
            shard=proc.node.nid,
        )

    for rank in range(run_cfg.nprocs):
        engine.process(
            run_worker(rank),
            name=f"{program.name}-w{rank}",
            shard=cluster.proc(rank).node.nid,
        )
    engine.run()
    protocol.check_invariants()
    return RunResult(
        program=program.name,
        config=run_cfg,
        exec_time=stats.finish_time,
        stats=stats,
        values=values,
        network_bytes=system.network.aggregate_bytes,
        trace=system.tracer,
    )


def run_sequential(
    program: Program,
    params: Optional[Dict] = None,
    page_size: int = 8192,
    costs=None,
) -> RunResult:
    """Run the program on one processor with *no* DSM system linked in.

    This is the paper's Table 2 sequential time: the worker executes with
    free memory access, no polling, no write doubling, and no protocol.
    Speedups in Figure 5 are computed against this time.  ``costs`` lets
    callers keep scaled cache parameters consistent with parallel runs.
    """
    from repro.config import ClusterConfig, Mechanism, Variant, Transport
    from repro.core.runtime.sequential import SequentialProtocol

    params = dict(params or {})
    engine = Engine()
    stats = StatsBoard(1)
    cluster_cfg = ClusterConfig(n_nodes=1, cpus_per_node=1, page_size=page_size)
    seq_variant = Variant(
        "sequential",
        SystemKind.CASHMERE,  # placeholder; no protocol is built
        Mechanism.INTERRUPT,
        Transport.MEMORY_CHANNEL,
    )
    run_cfg = RunConfig(variant=seq_variant, nprocs=1, cluster=cluster_cfg)
    cluster = Cluster(
        engine,
        cluster_cfg,
        run_cfg.costs,
        Mechanism.INTERRUPT,
        [(0, 0)],
        stats,
    )
    space = AddressSpace(page_size)
    shared = program.setup(space, params)
    protocol = SequentialProtocol(space, costs=costs)

    values: List[Any] = [None]

    def run_worker():
        env = Env(0, 1, cluster.proc(0), protocol)
        values[0] = yield from program.worker(env, shared, params)
        if not stats[0].frozen:
            stats[0].freeze(engine.now)

    engine.process(run_worker(), name=f"{program.name}-seq")
    engine.run()
    return RunResult(
        program=program.name,
        config=run_cfg,
        exec_time=stats.finish_time,
        stats=stats,
        values=values,
    )
