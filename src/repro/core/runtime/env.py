"""The per-worker environment: what an application thread sees.

An :class:`Env` is passed to every SPMD worker.  It exposes compute,
synchronization, and (through :class:`SharedArray`) shared-memory access,
all as generators driven by the simulation engine.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.config import WorkingSet
from repro.cluster.machine import Processor
from repro.core import fastpath
from repro.core.base import DsmProtocol
from repro.stats import Category


class Env:
    """Execution environment of one worker (one processor)."""

    def __init__(
        self,
        rank: int,
        nprocs: int,
        proc: Processor,
        protocol: DsmProtocol,
    ):
        self.rank = rank
        self.nprocs = nprocs
        self.proc = proc
        self.protocol = protocol

    @property
    def now(self) -> float:
        return self.proc.engine.now

    def stop_timer(self) -> None:
        """End the timed section: freeze this worker's statistics.

        Call after the final barrier, before any verification gather, so
        reported times and counters match what the paper measures.
        """
        self.proc.stats[self.rank].freeze(self.now)

    # -- compute ----------------------------------------------------------

    def compute(
        self,
        us: float,
        polls: int = 0,
        ws: Optional[WorkingSet] = None,
    ) -> Generator:
        """Run ``us`` microseconds of application work.

        ``polls`` is the number of loop back-edges the instrumentation
        pass would cover in this block; ``ws`` declares the cache working
        set so protocol-added footprint (write doubling, twins) can
        inflate the time as it does on the real 21064A.

        The common case — no working set, tracing off — returns the
        processor's own compute generator, so every resume of the block
        crosses one frame fewer (``env.compute`` contributes no frame of
        its own to the ``yield from`` chain).
        """
        if not self.protocol.counts_polling:
            polls = 0
        tracer = self.protocol.tracer
        if ws is None and (tracer is None or not tracer.enabled):
            return self.proc.compute(us, polls=polls)
        return self._compute_full(us, polls, ws)

    def _compute_full(
        self, us: float, polls: int, ws: Optional[WorkingSet]
    ) -> Generator:
        """Working-set inflation and/or trace-span emission."""
        shares = None
        total = us
        if ws is not None:
            user_f, total_f, overhead_cat = self.protocol.compute_factors(ws)
            total = us * total_f
            if total > 0 and total_f > user_f:
                shares = {
                    Category.USER: user_f / total_f,
                    overhead_cat: (total_f - user_f) / total_f,
                }
        t0 = self.now
        yield from self.proc.compute(total, polls=polls, shares=shares)
        self.protocol.trace(
            self.proc, "compute", dur=self.now - t0, polls=polls
        )

    # -- synchronization -----------------------------------------------------
    #
    # The span events emitted here ("barrier", "lock_acquire",
    # "flag_wait") are protocol-independent: the same program emits the
    # same sequence under every protocol, which is what lets
    # repro.stats.trace.diff_traces align two traces of one app run.

    def barrier(self, barrier_id: int = 0) -> Generator:
        self.proc.bump("barriers")
        t0 = self.now
        yield from self.protocol.barrier(self.proc, barrier_id)
        self.protocol.trace(
            self.proc, "barrier", dur=self.now - t0, barrier=barrier_id
        )
        if fastpath.DEBUG:
            # REPRO_DSM_DEBUG=1: re-verify bitmap/perm coherence at
            # every synchronization point, so a drifting permission
            # transition is caught right after it happens.
            self.protocol.check_perm_bitmaps()

    def lock_acquire(self, lock_id: int) -> Generator:
        self.proc.bump("locks")
        t0 = self.now
        yield from self.protocol.lock_acquire(self.proc, lock_id)
        self.protocol.trace(
            self.proc, "lock_acquire", dur=self.now - t0, lock=lock_id
        )

    def lock_release(self, lock_id: int) -> Generator:
        yield from self.protocol.lock_release(self.proc, lock_id)
        self.protocol.trace(self.proc, "lock_release", lock=lock_id)

    def flag_set(self, flag_id: int) -> Generator:
        yield from self.protocol.flag_set(self.proc, flag_id)
        self.protocol.trace(self.proc, "flag_set", flag=flag_id)

    def flag_wait(self, flag_id: int) -> Generator:
        t0 = self.now
        yield from self.protocol.flag_wait(self.proc, flag_id)
        self.protocol.trace(
            self.proc, "flag_wait", dur=self.now - t0, flag=flag_id
        )
