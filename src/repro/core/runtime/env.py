"""The per-worker environment: what an application thread sees.

An :class:`Env` is passed to every SPMD worker.  It exposes compute,
synchronization, and (through :class:`SharedArray`) shared-memory access,
all as generators driven by the simulation engine.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.config import WorkingSet
from repro.cluster.machine import Processor
from repro.core.base import DsmProtocol
from repro.stats import Category


class Env:
    """Execution environment of one worker (one processor)."""

    def __init__(
        self,
        rank: int,
        nprocs: int,
        proc: Processor,
        protocol: DsmProtocol,
    ):
        self.rank = rank
        self.nprocs = nprocs
        self.proc = proc
        self.protocol = protocol

    @property
    def now(self) -> float:
        return self.proc.engine.now

    def stop_timer(self) -> None:
        """End the timed section: freeze this worker's statistics.

        Call after the final barrier, before any verification gather, so
        reported times and counters match what the paper measures.
        """
        self.proc.stats[self.rank].freeze(self.now)

    # -- compute ----------------------------------------------------------

    def compute(
        self,
        us: float,
        polls: int = 0,
        ws: Optional[WorkingSet] = None,
    ) -> Generator:
        """Run ``us`` microseconds of application work.

        ``polls`` is the number of loop back-edges the instrumentation
        pass would cover in this block; ``ws`` declares the cache working
        set so protocol-added footprint (write doubling, twins) can
        inflate the time as it does on the real 21064A.
        """
        shares = {Category.USER: 1.0}
        total = us
        if ws is not None:
            user_f, total_f, overhead_cat = self.protocol.compute_factors(ws)
            total = us * total_f
            if total > 0 and total_f > user_f:
                shares = {
                    Category.USER: user_f / total_f,
                    overhead_cat: (total_f - user_f) / total_f,
                }
        if not self.protocol.counts_polling:
            polls = 0
        yield from self.proc.compute(total, polls=polls, shares=shares)

    # -- synchronization -----------------------------------------------------

    def barrier(self, barrier_id: int = 0) -> Generator:
        self.proc.bump("barriers")
        yield from self.protocol.barrier(self.proc, barrier_id)

    def lock_acquire(self, lock_id: int) -> Generator:
        self.proc.bump("locks")
        yield from self.protocol.lock_acquire(self.proc, lock_id)

    def lock_release(self, lock_id: int) -> Generator:
        yield from self.protocol.lock_release(self.proc, lock_id)

    def flag_set(self, flag_id: int) -> Generator:
        yield from self.protocol.flag_set(self.proc, flag_id)

    def flag_wait(self, flag_id: int) -> Generator:
        yield from self.protocol.flag_wait(self.proc, flag_id)
