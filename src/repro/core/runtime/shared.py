"""Typed views over the shared address space.

A :class:`SharedArray` is how application code touches shared memory.
Block reads and writes walk the overlapped pages and take exactly the
read/write faults a hardware MMU would deliver, then move real bytes
through the protocol's page copies.
"""

from __future__ import annotations

import operator
from functools import reduce
from typing import Generator, Sequence, Tuple, Union

import numpy as np

from repro.memory.address_space import SharedRegion

Index = Union[int, Tuple[int, ...]]


class SharedArray:
    """An n-dimensional typed array living in DSM shared memory.

    All access methods are generators: they must be driven with
    ``yield from`` inside a worker so that faults and transfers consume
    simulated time.  Multi-dimensional arrays are row-major, so a "row
    block" is contiguous and spans a predictable set of pages — the
    layout the paper's applications rely on for their banding.
    """

    def __init__(self, region: SharedRegion, dtype, shape: Sequence[int]):
        self.region = region
        self.dtype = np.dtype(dtype)
        self.shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise ValueError(f"bad shape {self.shape}")
        self.size = reduce(operator.mul, self.shape, 1)
        if self.size * self.dtype.itemsize > region.nbytes:
            raise ValueError(
                f"array {self.shape}x{self.dtype} does not fit region "
                f"{region.name!r}"
            )

    # -- construction ---------------------------------------------------

    @staticmethod
    def alloc(space, name: str, dtype, shape: Sequence[int]) -> "SharedArray":
        dtype = np.dtype(dtype)
        size = reduce(operator.mul, [int(s) for s in shape], 1)
        region = space.alloc(name, size * dtype.itemsize)
        return SharedArray(region, dtype, shape)

    def initialize(self, values) -> None:
        """Set initial contents (untimed initialization phase)."""
        arr = np.asarray(values, self.dtype)
        if arr.shape != self.shape:
            arr = np.broadcast_to(arr, self.shape).copy()
        self.region.initialize(arr)

    # -- index math ----------------------------------------------------------

    def _flatten(self, index: Index) -> int:
        if isinstance(index, int):
            index = (index,)
        if len(index) != len(self.shape):
            raise IndexError(f"index {index} does not match {self.shape}")
        flat = 0
        for i, (idx, dim) in enumerate(zip(index, self.shape)):
            if not (0 <= idx < dim):
                raise IndexError(f"index {index} out of bounds {self.shape}")
            flat = flat * dim + idx
        return flat

    def _byte_range(self, start_elem: int, count: int) -> Tuple[int, int]:
        if start_elem < 0 or count < 0 or start_elem + count > self.size:
            raise IndexError(
                f"element range [{start_elem}, {start_elem + count}) "
                f"outside array of {self.size}"
            )
        item = self.dtype.itemsize
        return self.region.offset + start_elem * item, count * item

    def row_elems(self, row: int) -> Tuple[int, int]:
        """(first flat element, count) of one leading-dimension row."""
        stride = self.size // self.shape[0]
        if not (0 <= row < self.shape[0]):
            raise IndexError(f"row {row} out of range")
        return row * stride, stride

    def pages_for_rows(self, row0: int, row1: int) -> list:
        """Page indices touched by rows ``[row0, row1)``."""
        start, _ = self.row_elems(row0)
        stride = self.size // self.shape[0]
        offset, nbytes = self._byte_range(start, (row1 - row0) * stride)
        return self.region.space.pages_in(offset, nbytes)

    # -- element range access ------------------------------------------------

    def read_range(self, env, start_elem: int, count: int) -> Generator:
        """Read ``count`` elements starting at flat ``start_elem``."""
        offset, nbytes = self._byte_range(start_elem, count)
        out = np.empty(nbytes, np.uint8)
        pos = 0
        space = self.region.space
        for page, start, length in space.page_spans(offset, nbytes):
            yield from env.protocol.ensure_read(env.proc, page)
            data = env.protocol.page_data(env.proc, page)
            out[pos : pos + length] = data[start : start + length]
            pos += length
        return out.view(self.dtype)

    def write_range(self, env, start_elem: int, values) -> Generator:
        """Write ``values`` starting at flat ``start_elem``."""
        raw = np.ascontiguousarray(values, self.dtype).view(np.uint8)
        raw = raw.reshape(-1)
        offset, nbytes = self._byte_range(
            start_elem, raw.nbytes // self.dtype.itemsize
        )
        pos = 0
        space = self.region.space
        for page, start, length in space.page_spans(offset, nbytes):
            yield from env.protocol.ensure_write(env.proc, page)
            yield from env.protocol.apply_write(
                env.proc, page, start, raw[pos : pos + length]
            )
            pos += length

    # -- convenience views ------------------------------------------------------

    def get(self, env, index: Index) -> Generator:
        """Read a single element."""
        values = yield from self.read_range(env, self._flatten(index), 1)
        return values[0]

    def put(self, env, index: Index, value) -> Generator:
        """Write a single element."""
        yield from self.write_range(env, self._flatten(index), [value])

    def read_rows(self, env, row0: int, row1: int) -> Generator:
        """Read rows ``[row0, row1)`` of the leading dimension."""
        start, stride = self.row_elems(row0)
        count = (row1 - row0) * stride
        flat = yield from self.read_range(env, start, count)
        return flat.reshape((row1 - row0,) + self.shape[1:])

    def write_rows(self, env, row0: int, values) -> Generator:
        """Write consecutive leading-dimension rows starting at row0."""
        arr = np.asarray(values, self.dtype)
        tail = self.shape[1:]
        if arr.shape[1:] != tail:
            raise ValueError(
                f"row block shape {arr.shape} does not match {self.shape}"
            )
        start, _ = self.row_elems(row0)
        yield from self.write_range(env, start, arr.reshape(-1))

    def read_all(self, env) -> Generator:
        flat = yield from self.read_range(env, 0, self.size)
        return flat.reshape(self.shape)
