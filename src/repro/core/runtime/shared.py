"""Typed views over the shared address space.

A :class:`SharedArray` is how application code touches shared memory.
Block reads and writes take exactly the read/write faults a hardware
MMU would deliver, then move real bytes through the protocol's page
copies.

Accesses whose pages are all already mapped — the overwhelmingly common
case, and one that costs *nothing* on the paper's hardware — are
resolved by one vectorized permission-bitmap check and a direct
gather/scatter, entering no protocol generator at all.  Cold spans fall
into the protocol's ``ensure_read_span`` / ``ensure_write_span`` batch
fault loops, which preserve per-page event order, counters, and traces
exactly.  ``REPRO_DSM_NO_FASTPATH=1`` restores the original per-page
generator loop; simulated results are bit-identical either way.
"""

from __future__ import annotations

import operator
from functools import reduce
from typing import Generator, Sequence, Tuple, Union

import numpy as np

from repro.core import fastpath
from repro.memory.address_space import SharedRegion

Index = Union[int, Tuple[int, ...]]


class SharedArray:
    """An n-dimensional typed array living in DSM shared memory.

    All access methods are generators: they must be driven with
    ``yield from`` inside a worker so that faults and transfers consume
    simulated time.  Multi-dimensional arrays are row-major, so a "row
    block" is contiguous and spans a predictable set of pages — the
    layout the paper's applications rely on for their banding.
    """

    def __init__(self, region: SharedRegion, dtype, shape: Sequence[int]):
        self.region = region
        self.dtype = np.dtype(dtype)
        self.shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise ValueError(f"bad shape {self.shape}")
        self.size = reduce(operator.mul, self.shape, 1)
        if self.size * self.dtype.itemsize > region.nbytes:
            raise ValueError(
                f"array {self.shape}x{self.dtype} does not fit region "
                f"{region.name!r}"
            )
        # Hot-path constants: the access methods run tens of thousands
        # of times per simulation, so spare them the attribute chains.
        self._item = self.dtype.itemsize
        self._stride = self.size // self.shape[0]
        self._space = region.space
        self._base = region.offset
        self._tail = self.shape[1:]

    # -- construction ---------------------------------------------------

    @staticmethod
    def alloc(space, name: str, dtype, shape: Sequence[int]) -> "SharedArray":
        dtype = np.dtype(dtype)
        size = reduce(operator.mul, [int(s) for s in shape], 1)
        region = space.alloc(name, size * dtype.itemsize)
        return SharedArray(region, dtype, shape)

    def initialize(self, values) -> None:
        """Set initial contents (untimed initialization phase)."""
        arr = np.asarray(values, self.dtype)
        if arr.shape != self.shape:
            arr = np.broadcast_to(arr, self.shape).copy()
        self.region.initialize(arr)

    # -- index math ----------------------------------------------------------

    def _flatten(self, index: Index) -> int:
        shape = self.shape
        if type(index) is tuple and len(index) == 2 and len(shape) == 2:
            i, j = index
            d0, d1 = shape
            if 0 <= i < d0 and 0 <= j < d1:
                return i * d1 + j
            raise IndexError(f"index {index} out of bounds {shape}")
        if isinstance(index, int):
            index = (index,)
        if len(index) != len(shape):
            raise IndexError(f"index {index} does not match {shape}")
        flat = 0
        for i, (idx, dim) in enumerate(zip(index, shape)):
            if not (0 <= idx < dim):
                raise IndexError(f"index {index} out of bounds {shape}")
            flat = flat * dim + idx
        return flat

    def _byte_range(self, start_elem: int, count: int) -> Tuple[int, int]:
        if start_elem < 0 or count < 0 or start_elem + count > self.size:
            raise IndexError(
                f"element range [{start_elem}, {start_elem + count}) "
                f"outside array of {self.size}"
            )
        item = self.dtype.itemsize
        return self.region.offset + start_elem * item, count * item

    def row_elems(self, row: int) -> Tuple[int, int]:
        """(first flat element, count) of one leading-dimension row."""
        stride = self.size // self.shape[0]
        if not (0 <= row < self.shape[0]):
            raise IndexError(f"row {row} out of range")
        return row * stride, stride

    def pages_for_rows(self, row0: int, row1: int) -> list:
        """Page indices touched by rows ``[row0, row1)``."""
        start, _ = self.row_elems(row0)
        stride = self.size // self.shape[0]
        offset, nbytes = self._byte_range(start, (row1 - row0) * stride)
        return self.region.space.pages_in(offset, nbytes)

    # -- element range access ------------------------------------------------
    #
    # ``try_read`` / ``try_write`` are the plain-function hit path: when
    # every spanned page is already mapped they move the bytes and
    # return without a single generator frame being created.  The
    # ``read_range`` / ``write_range`` generators remain the complete
    # interface — they attempt the same hit path first, then fault the
    # cold pages through the protocol's span entry points.

    def try_read(self, env, start_elem: int, count: int):
        """Hit-path read: the elements if every page is hot, else None."""
        if not fastpath.ENABLED:
            return None
        if start_elem < 0 or count < 0 or start_elem + count > self.size:
            self._byte_range(start_elem, count)  # raises IndexError
        item = self._item
        data = env.protocol.fast_read(
            env.proc,
            self._space,
            self._base + start_elem * item,
            count * item,
        )
        if data is None:
            return None
        return data.view(self.dtype)

    def try_write(self, env, start_elem: int, raw) -> bool:
        """Hit-path write of raw bytes; False if any page is cold.

        Gated on ``free_writes``: when every shared write carries
        simulated cost (Cashmere's doubling) the scatter can never
        apply, so don't pay for the attempt.
        """
        protocol = env.protocol
        if not fastpath.ENABLED or not protocol.free_writes:
            return False
        item = self._item
        count = raw.nbytes // item
        if start_elem < 0 or start_elem + count > self.size:
            self._byte_range(start_elem, count)  # raises IndexError
        return protocol.fast_write(
            env.proc,
            self._space,
            self._base + start_elem * item,
            raw,
        )

    def _raw_bytes(self, values) -> np.ndarray:
        if (
            type(values) is np.ndarray
            and values.dtype == self.dtype
            and values.flags.c_contiguous
        ):
            return values.view(np.uint8).reshape(-1)
        return np.ascontiguousarray(values, self.dtype).view(
            np.uint8
        ).reshape(-1)

    def read_range(self, env, start_elem: int, count: int) -> Generator:
        """Read ``count`` elements starting at flat ``start_elem``."""
        data = self.try_read(env, start_elem, count)
        if data is not None:  # every page hot: zero-cost gather
            return data
        offset, nbytes = self._byte_range(start_elem, count)
        space = self.region.space
        protocol = env.protocol
        if fastpath.ENABLED:
            lo, hi = space.span_bounds(offset, nbytes)
            yield from protocol.ensure_read_span(env.proc, lo, hi)
            data = protocol.fast_read(env.proc, space, offset, nbytes)
            if data is not None:
                return data.view(self.dtype)
            # No bitmaps on this protocol: fall through to the loop.
        out = np.empty(nbytes, np.uint8)
        pos = 0
        for page, start, length in space.page_spans(offset, nbytes):
            yield from protocol.ensure_read(env.proc, page)
            data = protocol.page_data(env.proc, page)
            out[pos : pos + length] = data[start : start + length]
            pos += length
        return out.view(self.dtype)

    def write_range(self, env, start_elem: int, values):
        """Write ``values`` starting at flat ``start_elem``.

        A plain dispatcher, not a generator: the hit path returns an
        empty iterable (``yield from`` it for free) and the span path
        hands back the protocol's own generator — so a hot or
        span-batched write adds **zero** frames of its own to the
        caller's resume chain.
        """
        raw = self._raw_bytes(values)
        item = self._item
        count = raw.nbytes // item
        if start_elem < 0 or start_elem + count > self.size:
            self._byte_range(start_elem, count)  # raises IndexError
        offset = self._base + start_elem * item
        nbytes = count * item
        space = self._space
        protocol = env.protocol
        if fastpath.ENABLED:
            if protocol.free_writes and protocol.fast_write(
                env.proc, space, offset, raw
            ):
                return ()  # every page hot and writes are free: done
            return protocol.ensure_write_span(
                env.proc, space.page_spans_list(offset, nbytes), raw
            )
        return self._write_range_slow(env, space, offset, nbytes, raw)

    def _write_range_slow(
        self, env, space, offset: int, nbytes: int, raw
    ) -> Generator:
        """Legacy per-page fault loop (fastpath disabled)."""
        protocol = env.protocol
        pos = 0
        for page, start, length in space.page_spans(offset, nbytes):
            yield from protocol.ensure_write(env.proc, page)
            yield from protocol.apply_write(
                env.proc, page, start, raw[pos : pos + length]
            )
            pos += length

    # -- convenience views ------------------------------------------------------

    def get(self, env, index: Index) -> Generator:
        """Read a single element."""
        flat = self._flatten(index)
        values = self.try_read(env, flat, 1)
        if values is None:
            values = yield from self.read_range(env, flat, 1)
        return values[0]

    def put(self, env, index: Index, value):
        """Write a single element (dispatcher; see ``write_range``)."""
        flat = self._flatten(index)
        return self.write_range(env, flat, [value])

    def rows(self, env, row0: int, row1: int):
        """Hit-path read of rows ``[row0, row1)``: the data if every
        spanned page is hot, else ``None``.

        A plain function — no generator frame at all.  Callers pair it
        with :meth:`read_rows` as the cold fallback::

            block = matrix.rows(env, r0, r1)
            if block is None:
                block = yield from matrix.read_rows(env, r0, r1)
        """
        if not fastpath.ENABLED:
            return None
        if not 0 <= row0 < self.shape[0]:
            raise IndexError(f"row {row0} out of range")
        stride = self._stride
        start = row0 * stride
        count = (row1 - row0) * stride
        if count < 0 or start + count > self.size:
            self._byte_range(start, count)  # raises IndexError
        item = self._item
        data = env.protocol.fast_read(
            env.proc,
            self._space,
            self._base + start * item,
            count * item,
        )
        if data is None:
            return None
        return data.view(self.dtype).reshape((row1 - row0,) + self._tail)

    def read_rows(self, env, row0: int, row1: int) -> Generator:
        """Read rows ``[row0, row1)`` of the leading dimension."""
        start, stride = self.row_elems(row0)
        count = (row1 - row0) * stride
        flat = self.try_read(env, start, count)
        if flat is None:
            flat = yield from self.read_range(env, start, count)
        return flat.reshape((row1 - row0,) + self.shape[1:])

    def write_rows(self, env, row0: int, values):
        """Write consecutive leading-dimension rows starting at row0
        (dispatcher; see ``write_range``)."""
        arr = np.asarray(values, self.dtype)
        tail = self.shape[1:]
        if arr.shape[1:] != tail:
            raise ValueError(
                f"row block shape {arr.shape} does not match {self.shape}"
            )
        start, _ = self.row_elems(row0)
        return self.write_range(env, start, arr)

    def read_all(self, env) -> Generator:
        flat = self.try_read(env, 0, self.size)
        if flat is None:
            flat = yield from self.read_range(env, 0, self.size)
        return flat.reshape(self.shape)
