"""Typed views over the shared address space.

A :class:`SharedArray` is how application code touches shared memory.
Block reads and writes take exactly the read/write faults a hardware
MMU would deliver, then move real bytes through the protocol's page
copies.

Accesses whose pages are all already mapped — the overwhelmingly common
case, and one that costs *nothing* on the paper's hardware — are
resolved by one vectorized permission-bitmap check and a direct
gather/scatter, entering no protocol generator at all.  Cold spans fall
into the protocol's ``ensure_read_span`` / ``ensure_write_span`` batch
fault loops, which preserve per-page event order, counters, and traces
exactly.  ``REPRO_DSM_NO_FASTPATH=1`` restores the original per-page
generator loop; simulated results are bit-identical either way.
"""

from __future__ import annotations

import operator
from functools import reduce
from typing import Generator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import fastpath
from repro.memory.address_space import SharedRegion

Index = Union[int, Tuple[int, ...]]


class Region:
    """A bulk access shape over one :class:`SharedArray`.

    A region is an ordered list of disjoint element segments plus the
    shape of the gathered result — rows, a row-block with a column
    slice, a flat slice, or an arbitrary gather of rows.  Build one
    with :meth:`SharedArray.region_rows` / :meth:`~SharedArray.region_block`
    / :meth:`~SharedArray.region_slice` / :meth:`~SharedArray.region_row_gather`,
    then move bytes with :meth:`~SharedArray.read_region` /
    :meth:`~SharedArray.write_region` / :meth:`~SharedArray.region_view`.

    Segment order is access order: the fault path replays segments
    front to back, so a region built from the rows an app used to loop
    over takes exactly the per-page fault/charge sequence the loop
    took.  Byte segments are precomputed at construction; regions whose
    shape does not depend on loop state can be built once and reused.
    """

    __slots__ = (
        "array", "segs", "total", "nbytes", "shape", "_spans", "_pages"
    )

    def __init__(self, array: "SharedArray", elem_segs, shape):
        self.array = array
        item = array._item
        base = array._base
        size = array.size
        segs = []
        total = 0
        for start_elem, count in elem_segs:
            if start_elem < 0 or count < 0 or start_elem + count > size:
                raise IndexError(
                    f"element range [{start_elem}, {start_elem + count}) "
                    f"outside array of {size}"
                )
            segs.append((base + start_elem * item, count * item))
            total += count
        self.segs = segs
        self.total = total
        self.nbytes = total * item
        self.shape = tuple(shape)
        if reduce(operator.mul, self.shape, 1) != total:
            raise ValueError(
                f"region shape {self.shape} does not hold {total} elements"
            )
        self._spans = None
        self._pages = None

    @classmethod
    def _trusted(cls, array, segs, total, shape):
        """Construct from pre-validated **byte** segments.

        The hot-path constructor behind :meth:`SharedArray.region_row_gather`:
        bounds are checked once by the caller (min/max over the whole
        row list), skipping the per-segment validation loop.
        """
        self = object.__new__(cls)
        self.array = array
        self.segs = segs
        self.total = total
        self.nbytes = total * array._item
        self.shape = shape
        self._spans = None
        self._pages = None
        return self

    def page_spans(self):
        """All ``(page, start, length)`` spans, segments in order.

        Pure geometry — computed once and cached, so a region reused
        across iterations (or written right after being read) pays for
        the page arithmetic only once.  Segment boundaries are
        preserved: two adjacent segments on one page stay two spans, so
        per-span protocol charges (Cashmere's doubled write) replay
        exactly as the equivalent per-call loop.
        """
        if self._spans is None:
            space = self.array._space
            spans = []
            for offset, nbytes in self.segs:
                spans.extend(space.page_spans_list(offset, nbytes))
            self._spans = spans
        return self._spans

    def span_pages(self) -> np.ndarray:
        """Page index of every span, as one array — the region hit
        path's single fancy-indexed bitmap probe."""
        if self._pages is None:
            self._pages = np.fromiter(
                (s[0] for s in self.page_spans()), np.intp
            )
        return self._pages


class RowGather:
    """Precomputed row-gather geometry for one ordered row list.

    Gauss builds a fresh :meth:`SharedArray.region_row_gather` every
    pivot step over a shrinking suffix of its cyclic rows with a
    sliding column window — O(rows) bounds checks and byte arithmetic
    per step.  A ``RowGather`` validates the row list and precomputes
    each row's byte base **once**; :meth:`region` then assembles the
    per-step region from the cached bases (the lu ``block_regions``
    idiom, generalized to suffix/column-window reuse).
    """

    __slots__ = ("array", "rows", "_bases", "_item", "_stride")

    def __init__(self, array: "SharedArray", rows: Sequence[int]):
        if rows and not 0 <= min(rows) <= max(rows) < array.shape[0]:
            raise IndexError(
                f"row list {min(rows)}..{max(rows)} out of range"
            )
        self.array = array
        self.rows = list(rows)
        item = array._item
        stride = array._stride
        base = array._base
        sbytes = stride * item
        self._bases = [base + r * sbytes for r in self.rows]
        self._item = item
        self._stride = stride

    def region(
        self, start_idx: int, col0: int = 0, col1: Optional[int] = None
    ) -> Region:
        """Region over ``rows[start_idx:]`` restricted to columns
        ``[col0, col1)`` — built from the cached byte bases."""
        stride = self._stride
        if col1 is None:
            col1 = stride
        if not 0 <= col0 <= col1 <= stride:
            raise IndexError(
                f"columns [{col0}, {col1}) outside row of {stride}"
            )
        item = self._item
        off = col0 * item
        width = col1 - col0
        wbytes = width * item
        bases = self._bases
        count = len(bases) - start_idx
        return Region._trusted(
            self.array,
            [(b + off, wbytes) for b in bases[start_idx:]],
            count * width,
            (count, width),
        )


class SharedArray:
    """An n-dimensional typed array living in DSM shared memory.

    All access methods are generators: they must be driven with
    ``yield from`` inside a worker so that faults and transfers consume
    simulated time.  Multi-dimensional arrays are row-major, so a "row
    block" is contiguous and spans a predictable set of pages — the
    layout the paper's applications rely on for their banding.
    """

    def __init__(self, region: SharedRegion, dtype, shape: Sequence[int]):
        self.region = region
        self.dtype = np.dtype(dtype)
        self.shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise ValueError(f"bad shape {self.shape}")
        self.size = reduce(operator.mul, self.shape, 1)
        if self.size * self.dtype.itemsize > region.nbytes:
            raise ValueError(
                f"array {self.shape}x{self.dtype} does not fit region "
                f"{region.name!r}"
            )
        # Hot-path constants: the access methods run tens of thousands
        # of times per simulation, so spare them the attribute chains.
        self._item = self.dtype.itemsize
        self._stride = self.size // self.shape[0]
        self._space = region.space
        self._base = region.offset
        self._tail = self.shape[1:]

    # -- construction ---------------------------------------------------

    @staticmethod
    def alloc(space, name: str, dtype, shape: Sequence[int]) -> "SharedArray":
        dtype = np.dtype(dtype)
        size = reduce(operator.mul, [int(s) for s in shape], 1)
        region = space.alloc(name, size * dtype.itemsize)
        return SharedArray(region, dtype, shape)

    def initialize(self, values) -> None:
        """Set initial contents (untimed initialization phase)."""
        arr = np.asarray(values, self.dtype)
        if arr.shape != self.shape:
            arr = np.broadcast_to(arr, self.shape).copy()
        self.region.initialize(arr)

    # -- index math ----------------------------------------------------------

    def _flatten(self, index: Index) -> int:
        shape = self.shape
        if type(index) is tuple and len(index) == 2 and len(shape) == 2:
            i, j = index
            d0, d1 = shape
            if 0 <= i < d0 and 0 <= j < d1:
                return i * d1 + j
            raise IndexError(f"index {index} out of bounds {shape}")
        if isinstance(index, int):
            index = (index,)
        if len(index) != len(shape):
            raise IndexError(f"index {index} does not match {shape}")
        flat = 0
        for i, (idx, dim) in enumerate(zip(index, shape)):
            if not (0 <= idx < dim):
                raise IndexError(f"index {index} out of bounds {shape}")
            flat = flat * dim + idx
        return flat

    def _byte_range(self, start_elem: int, count: int) -> Tuple[int, int]:
        if start_elem < 0 or count < 0 or start_elem + count > self.size:
            raise IndexError(
                f"element range [{start_elem}, {start_elem + count}) "
                f"outside array of {self.size}"
            )
        item = self.dtype.itemsize
        return self.region.offset + start_elem * item, count * item

    def row_elems(self, row: int) -> Tuple[int, int]:
        """(first flat element, count) of one leading-dimension row."""
        stride = self.size // self.shape[0]
        if not (0 <= row < self.shape[0]):
            raise IndexError(f"row {row} out of range")
        return row * stride, stride

    def pages_for_rows(self, row0: int, row1: int) -> list:
        """Page indices touched by rows ``[row0, row1)``."""
        start, _ = self.row_elems(row0)
        stride = self.size // self.shape[0]
        offset, nbytes = self._byte_range(start, (row1 - row0) * stride)
        return self.region.space.pages_in(offset, nbytes)

    # -- element range access ------------------------------------------------
    #
    # ``try_read`` / ``try_write`` are the plain-function hit path: when
    # every spanned page is already mapped they move the bytes and
    # return without a single generator frame being created.  The
    # ``read_range`` / ``write_range`` generators remain the complete
    # interface — they attempt the same hit path first, then fault the
    # cold pages through the protocol's span entry points.

    def try_read(self, env, start_elem: int, count: int):
        """Hit-path read: the elements if every page is hot, else None."""
        if not fastpath.ENABLED:
            return None
        if start_elem < 0 or count < 0 or start_elem + count > self.size:
            self._byte_range(start_elem, count)  # raises IndexError
        item = self._item
        data = env.protocol.fast_read(
            env.proc,
            self._space,
            self._base + start_elem * item,
            count * item,
        )
        if data is None:
            return None
        return data.view(self.dtype)

    def try_write(self, env, start_elem: int, raw) -> bool:
        """Hit-path write of raw bytes; False if any page is cold.

        Gated on ``free_writes``: when every shared write carries
        simulated cost (Cashmere's doubling) the scatter can never
        apply, so don't pay for the attempt.
        """
        protocol = env.protocol
        if not fastpath.ENABLED or not protocol.free_writes:
            return False
        item = self._item
        count = raw.nbytes // item
        if start_elem < 0 or start_elem + count > self.size:
            self._byte_range(start_elem, count)  # raises IndexError
        return protocol.fast_write(
            env.proc,
            self._space,
            self._base + start_elem * item,
            raw,
        )

    def _raw_bytes(self, values) -> np.ndarray:
        if (
            type(values) is np.ndarray
            and values.dtype == self.dtype
            and values.flags.c_contiguous
        ):
            return values.view(np.uint8).reshape(-1)
        return np.ascontiguousarray(values, self.dtype).view(
            np.uint8
        ).reshape(-1)

    def read_range(self, env, start_elem: int, count: int) -> Generator:
        """Read ``count`` elements starting at flat ``start_elem``."""
        data = self.try_read(env, start_elem, count)
        if data is not None:  # every page hot: zero-cost gather
            return data
        offset, nbytes = self._byte_range(start_elem, count)
        space = self.region.space
        protocol = env.protocol
        if fastpath.ENABLED:
            lo, hi = space.span_bounds(offset, nbytes)
            yield from protocol.ensure_read_span(env.proc, lo, hi)
            data = protocol.fast_read(env.proc, space, offset, nbytes)
            if data is not None:
                return data.view(self.dtype)
            # No bitmaps on this protocol: fall through to the loop.
        out = np.empty(nbytes, np.uint8)
        pos = 0
        for page, start, length in space.page_spans(offset, nbytes):
            yield from protocol.ensure_read(env.proc, page)
            data = protocol.page_data(env.proc, page)
            out[pos : pos + length] = data[start : start + length]
            pos += length
        return out.view(self.dtype)

    def write_range(self, env, start_elem: int, values):
        """Write ``values`` starting at flat ``start_elem``.

        A plain dispatcher, not a generator: the hit path returns an
        empty iterable (``yield from`` it for free) and the span path
        hands back the protocol's own generator — so a hot or
        span-batched write adds **zero** frames of its own to the
        caller's resume chain.
        """
        raw = self._raw_bytes(values)
        item = self._item
        count = raw.nbytes // item
        if start_elem < 0 or start_elem + count > self.size:
            self._byte_range(start_elem, count)  # raises IndexError
        offset = self._base + start_elem * item
        nbytes = count * item
        space = self._space
        protocol = env.protocol
        if fastpath.ENABLED:
            if protocol.free_writes and protocol.fast_write(
                env.proc, space, offset, raw
            ):
                return ()  # every page hot and writes are free: done
            return protocol.ensure_write_span(
                env.proc, space.page_spans_list(offset, nbytes), raw
            )
        return self._write_range_slow(env, space, offset, nbytes, raw)

    def _write_range_slow(
        self, env, space, offset: int, nbytes: int, raw
    ) -> Generator:
        """Legacy per-page fault loop (fastpath disabled)."""
        protocol = env.protocol
        pos = 0
        for page, start, length in space.page_spans(offset, nbytes):
            yield from protocol.ensure_write(env.proc, page)
            yield from protocol.apply_write(
                env.proc, page, start, raw[pos : pos + length]
            )
            pos += length

    # -- convenience views ------------------------------------------------------

    def get(self, env, index: Index) -> Generator:
        """Read a single element."""
        flat = self._flatten(index)
        values = self.try_read(env, flat, 1)
        if values is None:
            values = yield from self.read_range(env, flat, 1)
        return values[0]

    def put(self, env, index: Index, value):
        """Write a single element (dispatcher; see ``write_range``)."""
        flat = self._flatten(index)
        return self.write_range(env, flat, [value])

    def rows(self, env, row0: int, row1: int):
        """Hit-path read of rows ``[row0, row1)``: the data if every
        spanned page is hot, else ``None``.

        A plain function — no generator frame at all.  Callers pair it
        with :meth:`read_rows` as the cold fallback::

            block = matrix.rows(env, r0, r1)
            if block is None:
                block = yield from matrix.read_rows(env, r0, r1)
        """
        if not fastpath.ENABLED:
            return None
        if not 0 <= row0 < self.shape[0]:
            raise IndexError(f"row {row0} out of range")
        stride = self._stride
        start = row0 * stride
        count = (row1 - row0) * stride
        if count < 0 or start + count > self.size:
            self._byte_range(start, count)  # raises IndexError
        item = self._item
        data = env.protocol.fast_read(
            env.proc,
            self._space,
            self._base + start * item,
            count * item,
        )
        if data is None:
            return None
        return data.view(self.dtype).reshape((row1 - row0,) + self._tail)

    def rows_hot(self, env, row0: int, row1: int) -> bool:
        """Event-free probe: True when every page holding rows
        ``[row0, row1)`` is already mapped readable at this processor.

        False means "unknown", not "cold" — without the fast path (or a
        protocol that keeps permission bitmaps) there is nothing cheap
        to consult, so callers must treat False as "take the safe
        path".  The probe itself never touches protocol state.
        """
        if not fastpath.ENABLED:
            return False
        perms = env.protocol.perms
        if perms is None:
            return False
        stride = self._stride
        start = row0 * stride
        count = (row1 - row0) * stride
        if count <= 0:
            return True
        item = self._item
        lo, hi = self._space.span_bounds(
            self._base + start * item, count * item
        )
        return perms.read_ready(env.proc.pid, lo, hi)

    def read_rows(self, env, row0: int, row1: int) -> Generator:
        """Read rows ``[row0, row1)`` of the leading dimension."""
        start, stride = self.row_elems(row0)
        count = (row1 - row0) * stride
        flat = self.try_read(env, start, count)
        if flat is None:
            flat = yield from self.read_range(env, start, count)
        return flat.reshape((row1 - row0,) + self.shape[1:])

    def write_rows(self, env, row0: int, values):
        """Write consecutive leading-dimension rows starting at row0
        (dispatcher; see ``write_range``)."""
        arr = np.asarray(values, self.dtype)
        tail = self.shape[1:]
        if arr.shape[1:] != tail:
            raise ValueError(
                f"row block shape {arr.shape} does not match {self.shape}"
            )
        start, _ = self.row_elems(row0)
        return self.write_range(env, start, arr)

    def read_all(self, env) -> Generator:
        flat = self.try_read(env, 0, self.size)
        if flat is None:
            flat = yield from self.read_range(env, 0, self.size)
        return flat.reshape(self.shape)

    # -- bulk region access --------------------------------------------------
    #
    # Regions batch what the apps used to do one row (or one element) at
    # a time: one permission probe and one gather/scatter for the whole
    # shape when everything is hot, and the *exact* per-segment
    # fault/charge replay when anything is cold.  ``read_region`` /
    # ``write_region`` are bit-identical to the equivalent per-row loop
    # under every protocol, both queue modes, and fastpath on/off —
    # hot reads are event-free everywhere, hot writes are event-free
    # only under ``free_writes`` (the scatter is gated on it), and cold
    # segments run ``ensure_read_span`` / ``ensure_write_span`` in
    # segment order, preserving Cashmere's per-page doubled-write
    # charging and fault interleaving.

    def region_slice(self, start_elem: int, count: int) -> Region:
        """Region over ``count`` flat elements from ``start_elem``."""
        return Region(self, ((start_elem, count),), (count,))

    def region_rows(self, row0: int, row1: int) -> Region:
        """Region over leading-dimension rows ``[row0, row1)``
        (contiguous: a single segment)."""
        if not 0 <= row0 <= row1 <= self.shape[0]:
            raise IndexError(f"rows [{row0}, {row1}) out of range")
        stride = self._stride
        return Region(
            self,
            ((row0 * stride, (row1 - row0) * stride),),
            (row1 - row0,) + self._tail,
        )

    def region_block(
        self, row0: int, row1: int, col0: int, col1: int
    ) -> Region:
        """Region over the 2-D block ``[row0:row1, col0:col1]`` — one
        segment per row (non-contiguous columns)."""
        if len(self.shape) != 2:
            raise IndexError(f"block region needs a 2-D array, not {self.shape}")
        d0, d1 = self.shape
        if not (0 <= row0 <= row1 <= d0 and 0 <= col0 <= col1 <= d1):
            raise IndexError(
                f"block [{row0}:{row1}, {col0}:{col1}] out of bounds {self.shape}"
            )
        width = col1 - col0
        return Region(
            self,
            [(r * d1 + col0, width) for r in range(row0, row1)],
            (row1 - row0, width),
        )

    def region_row_gather(
        self, rows: Sequence[int], col0: int = 0, col1: Optional[int] = None
    ) -> Region:
        """Region over an arbitrary (ordered) list of rows, optionally
        restricted to columns ``[col0, col1)`` — e.g. one processor's
        cyclically-assigned rows.  Segment order follows ``rows``."""
        stride = self._stride
        if col1 is None:
            col1 = stride
        if not 0 <= col0 <= col1 <= stride:
            raise IndexError(f"columns [{col0}, {col1}) outside row of {stride}")
        width = col1 - col0
        if rows and not 0 <= min(rows) <= max(rows) < self.shape[0]:
            raise IndexError(f"row list {min(rows)}..{max(rows)} out of range")
        item = self._item
        base = self._base
        row0 = base + col0 * item
        wbytes = width * item
        sbytes = stride * item
        return Region._trusted(
            self,
            [(row0 + r * sbytes, wbytes) for r in rows],
            len(rows) * width,
            (len(rows), width),
        )

    def row_gather(self, rows: Sequence[int]) -> RowGather:
        """Precompute gather geometry for ``rows``; see :class:`RowGather`."""
        return RowGather(self, rows)

    def region_view(self, env, region: Region):
        """Hit-path read of a region: the data if every spanned page is
        hot, else ``None`` — a plain function, no generator frame, no
        events.  Callers pair it with :meth:`read_region` as the cold
        fallback.

        A single-segment region inside one page returns a **read-only
        zero-copy view** of the local page copy; anything larger is
        gathered into a fresh buffer.  A view is only valid until the
        caller's next ``yield`` — a served remote request or write-through
        may mutate the page copy it aliases — so consume it immediately
        or take a copy.
        """
        if not fastpath.ENABLED:
            return None
        protocol = env.protocol
        perms = protocol.perms
        segs = region.segs
        if perms is not None and len(segs) == 1:
            offset, nbytes = segs[0]
            space = self._space
            ps = space.page_size
            lo = offset // ps
            start = offset - lo * ps
            if start + nbytes <= ps:  # one page: alias the local copy
                if not perms.read_ready(env.proc.pid, lo, lo + 1):
                    return None
                view = protocol.page_data(env.proc, lo)[
                    start : start + nbytes
                ].view(self.dtype).reshape(region.shape)
                view.flags.writeable = False
                return view
        data = protocol.region_gather(env.proc, self._space, region)
        if data is None:
            return None
        return data.view(self.dtype).reshape(region.shape)

    def read_region(self, env, region: Region) -> Generator:
        """Read a region, faulting cold pages in segment order.

        Hot segments gather without events; each cold segment runs the
        protocol's ``ensure_read_span`` (fault order per page, hot pages
        skipped) exactly as the equivalent per-row loop would.
        """
        protocol = env.protocol
        space = self._space
        total_bytes = region.nbytes
        if fastpath.ENABLED:
            data = protocol.region_gather(env.proc, space, region)
            if data is None:
                out = np.empty(total_bytes, np.uint8)
                pos = 0
                for offset, nbytes in region.segs:
                    data = protocol.fast_read(env.proc, space, offset, nbytes)
                    if data is None:
                        lo, hi = space.span_bounds(offset, nbytes)
                        yield from protocol.ensure_read_span(env.proc, lo, hi)
                        data = protocol.fast_read(env.proc, space, offset, nbytes)
                    if data is None:
                        # No bitmaps on this protocol: per-page gather.
                        for page, start, length in space.page_spans(
                            offset, nbytes
                        ):
                            page_bytes = protocol.page_data(env.proc, page)
                            out[pos : pos + length] = page_bytes[
                                start : start + length
                            ]
                            pos += length
                        continue
                    out[pos : pos + nbytes] = data
                    pos += nbytes
                data = out
            return data.view(self.dtype).reshape(region.shape)
        out = np.empty(total_bytes, np.uint8)
        pos = 0
        for offset, nbytes in region.segs:
            for page, start, length in space.page_spans(offset, nbytes):
                yield from protocol.ensure_read(env.proc, page)
                data = protocol.page_data(env.proc, page)
                out[pos : pos + length] = data[start : start + length]
                pos += length
        return out.view(self.dtype).reshape(region.shape)

    def write_region(self, env, region: Region, values):
        """Write ``values`` (region-shaped) across a region.

        A dispatcher like :meth:`write_range`: all pages hot under a
        ``free_writes`` protocol scatters with zero events and zero
        generator frames; otherwise each segment replays the protocol's
        ``ensure_write_span`` — per-page fault-then-apply order, and
        Cashmere's doubled-write charge per page, exactly as the
        per-row loop."""
        raw = self._raw_bytes(values)
        if raw.nbytes != region.nbytes:
            raise ValueError(
                f"value bytes {raw.nbytes} do not match region "
                f"({region.shape})"
            )
        protocol = env.protocol
        space = self._space
        if fastpath.ENABLED:
            if protocol.region_scatter(env.proc, space, region, raw):
                return ()  # every page hot and writes are free: done
            # One batched ensure_write_span over the whole region: the
            # flattened span list keeps segments in order and ``raw`` is
            # consumed sequentially, so fault/apply interleaving (and
            # Cashmere's per-span doubled-write charge) replays exactly
            # as the per-segment loop — minus one generator frame per
            # segment.
            return protocol.ensure_write_span(
                env.proc, region.page_spans(), raw
            )
        return self._write_region_slow(env, region, raw)

    def _write_region_slow(self, env, region: Region, raw) -> Generator:
        """Legacy per-page fault loop (fastpath disabled)."""
        space = self._space
        pos = 0
        for offset, nbytes in region.segs:
            yield from self._write_range_slow(
                env, space, offset, nbytes, raw[pos : pos + nbytes]
            )
            pos += nbytes
