"""Shared machinery for lazy-release-consistency protocols.

TreadMarks (``repro.core.treadmarks``) and home-based LRC
(``repro.core.hlrc``) share everything about *when* consistency
information moves — vector timestamps, interval records, write notices,
distributed locks, a centralized barrier manager, owner-resident flags,
and record garbage collection.  They differ in *how data* moves (lazy
diffs vs. eager diffs to a home), which subclasses provide through the
hooks at the bottom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.config import RunConfig
from repro.cluster.machine import Cluster, Processor
from repro.cluster.messaging import Messenger, Request
from repro.cluster.network import MemoryChannel
from repro.cluster.cache import CacheModel
from repro.core.base import DsmProtocol
from repro.core.fastpath import PermBitmaps
from repro.core.intervals import (
    IntervalRecord,
    IntervalStore,
    vts_max,
)
from repro.memory.address_space import AddressSpace
from repro.sim import Engine, Event
from repro.stats import Category, StatsBoard

LOCK_ACQUIRE = "lrc_lock_acquire"
BARRIER_ARRIVE = "lrc_barrier_arrive"
BARRIER_GROUP = "lrc_barrier_group"  # leader -> root combined arrival
FLAG_WAIT = "lrc_flag_wait"

# Garbage collection of consistency records triggers at the next barrier
# once this many interval records have accumulated.
GC_RECORD_THRESHOLD = 4096
GC_BARRIER_ID = -0x6C  # reserved internal barrier for the flush round


@dataclass
class LockState:
    """Per-processor view of one distributed lock."""

    owns_token: bool = False
    holding: bool = False
    successor: Optional[Request] = None


@dataclass
class BarrierState:
    """Arrival collection at the barrier manager."""

    arrivals: List[Request] = field(default_factory=list)
    complete: Optional[Event] = None


@dataclass
class FlagState:
    """A one-shot flag at its owning processor."""

    is_set: bool = False
    waiters: List[Request] = field(default_factory=list)
    local_event: Optional[Event] = None


@dataclass
class LrcProcState:
    """Consistency state every LRC processor carries."""

    vts: List[int]
    store: IntervalStore
    notices: set = field(default_factory=set)  # pages written this interval
    locks: Dict[int, LockState] = field(default_factory=dict)
    flags: Dict[int, FlagState] = field(default_factory=dict)
    manager_guess: Optional[Tuple[int, ...]] = None

    def lock(self, lock_id: int) -> LockState:
        found = self.locks.get(lock_id)
        if found is None:
            found = LockState()
            self.locks[lock_id] = found
        return found

    def flag(self, flag_id: int) -> FlagState:
        found = self.flags.get(flag_id)
        if found is None:
            found = FlagState()
            self.flags[flag_id] = found
        return found


class LrcProtocolBase(DsmProtocol):
    """Interval/synchronization engine common to all LRC protocols."""

    #: per-run GC threshold (subclasses or tests may override)
    gc_record_threshold = GC_RECORD_THRESHOLD

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        network: MemoryChannel,
        messenger: Messenger,
        space: AddressSpace,
        stats: StatsBoard,
        run_cfg: RunConfig,
    ):
        self.engine = engine
        self.cluster = cluster
        self.network = network
        self.messenger = messenger
        self.space = space
        self.stats = stats
        self.cfg = run_cfg
        self.costs = run_cfg.costs
        self.cache = CacheModel(self.costs)
        self.nprocs = cluster.nprocs
        self.perms = PermBitmaps(cluster.nprocs, space.n_pages)
        self.procs = {
            p.pid: self._make_proc_state() for p in cluster.procs
        }
        self.prefetcher = run_cfg.make_prefetcher()
        self.lock_last_owner: Dict[int, int] = {}
        self.barriers: Dict = {}  # barrier_id (flat) or hier key -> state
        # Hierarchical group-leader barrier topology (PR 7): above the
        # paper's 32 processors (or whenever ``barrier_fanin`` is set)
        # ranks are partitioned into contiguous groups; members arrive
        # at their group leader, leaders forward one combined arrival
        # to the root (rank 0), and releases fan back out the same way.
        # ``None`` keeps the paper's flat single-manager barrier.
        self._bleader: Optional[List[int]] = None
        self._bgroup_members: Dict[int, int] = {}
        self._bleaders: List[int] = []
        if run_cfg.hierarchical_barriers and self.nprocs > 2:
            size = min(run_cfg.lrc_barrier_group, self.nprocs)
            self._bleader = [
                (pid // size) * size for pid in range(self.nprocs)
            ]
            self._bleaders = list(range(0, self.nprocs, size))
            for leader in self._bleaders:
                self._bgroup_members[leader] = (
                    min(leader + size, self.nprocs) - leader - 1
                )

    # -- state construction (subclass hook) -----------------------------

    def _make_proc_state(self) -> LrcProcState:
        return LrcProcState(
            vts=[0] * self.cluster.nprocs,
            store=IntervalStore(self.cluster.nprocs),
        )

    # -- small helpers ---------------------------------------------------

    def _state(self, proc: Processor):
        return self.procs[proc.pid]

    # -- hit path --------------------------------------------------------
    #
    # Specialized over the base implementations: a hot access goes
    # straight to the per-processor page dict (two dict lookups and a
    # slice) instead of through the ``page_data`` permission-checking
    # chain — the bitmap has already vouched for the permissions.  Both
    # LRC protocols write only the local copy on a hot write (diffs move
    # at release), hence ``free_writes``.

    free_writes = True

    def fast_read(self, proc, space, offset, nbytes):
        if nbytes == 0:
            return np.empty(0, np.uint8)
        pid = proc.pid
        ps = space.page_size
        lo = offset // ps
        start = offset - lo * ps
        perms = self.perms
        if start + nbytes <= ps:  # single page: the common case
            try:
                readable = perms.r_rows[pid][lo]
            except IndexError:  # page past the bitmap: grow (tests only)
                perms.ensure_cap(lo + 1)
                readable = perms.r_rows[pid][lo]
            if not readable:
                return None
            return self.procs[pid].pages[lo].copy[
                start : start + nbytes
            ].copy()
        hi = (offset + nbytes - 1) // ps + 1
        perms.ensure_cap(hi)
        row = perms.r_rows[pid]
        for page in range(lo, hi):
            if not row[page]:
                return None
        pages = self.procs[pid].pages
        out = np.empty(nbytes, np.uint8)
        end = offset + nbytes
        pos = 0
        addr = offset
        for page in range(lo, hi):
            start = addr - page * ps
            length = min(ps - start, end - addr)
            out[pos : pos + length] = pages[page].copy[
                start : start + length
            ]
            pos += length
            addr += length
        return out

    def fast_write(self, proc, space, offset, raw):
        nbytes = raw.nbytes
        if nbytes == 0:
            return True
        pid = proc.pid
        ps = space.page_size
        lo = offset // ps
        start = offset - lo * ps
        perms = self.perms
        if start + nbytes <= ps:  # single page: the common case
            try:
                writable = perms.w_rows[pid][lo]
            except IndexError:  # page past the bitmap: grow (tests only)
                perms.ensure_cap(lo + 1)
                writable = perms.w_rows[pid][lo]
            if not writable:
                return False
            self.procs[pid].pages[lo].copy[start : start + nbytes] = raw
            return True
        hi = (offset + nbytes - 1) // ps + 1
        perms.ensure_cap(hi)
        row = perms.w_rows[pid]
        for page in range(lo, hi):
            if not row[page]:
                return False
        pages = self.procs[pid].pages
        end = offset + nbytes
        pos = 0
        addr = offset
        for page in range(lo, hi):
            start = addr - page * ps
            length = min(ps - start, end - addr)
            pages[page].copy[start : start + length] = raw[
                pos : pos + length
            ]
            pos += length
            addr += length
        return True

    def fast_gather(self, proc, space, segs, total):
        pid = proc.pid
        ps = space.page_size
        perms = self.perms
        row = perms.r_rows[pid]
        try:
            for offset, nbytes in segs:
                end = offset + nbytes
                for page in range(offset // ps, (end - 1) // ps + 1):
                    if not row[page]:
                        return None
        except IndexError:  # page past the bitmap: grow (tests only)
            perms.ensure_cap(max(o + n - 1 for o, n in segs) // ps + 1)
            return self.fast_gather(proc, space, segs, total)
        pages = self.procs[pid].pages
        out = np.empty(total, np.uint8)
        pos = 0
        for offset, nbytes in segs:
            end = offset + nbytes
            addr = offset
            while addr < end:
                page = addr // ps
                start = addr - page * ps
                length = min(ps - start, end - addr)
                out[pos : pos + length] = pages[page].copy[
                    start : start + length
                ]
                pos += length
                addr += length
        return out

    def region_gather(self, proc, space, region):
        pid = proc.pid
        if not self.perms.read_ready_pages(pid, region.span_pages()):
            return None
        pages = self.procs[pid].pages
        out = np.empty(region.nbytes, np.uint8)
        pos = 0
        for page, start, length in region.page_spans():
            out[pos : pos + length] = pages[page].copy[
                start : start + length
            ]
            pos += length
        return out

    def region_scatter(self, proc, space, region, raw):
        pid = proc.pid
        if not self.perms.write_ready_pages(pid, region.span_pages()):
            return False
        pages = self.procs[pid].pages
        pos = 0
        for page, start, length in region.page_spans():
            pages[page].copy[start : start + length] = raw[
                pos : pos + length
            ]
            pos += length
        return True

    def ensure_write_span(self, proc, spans, raw):
        """Specialized over the base loop: under both LRC protocols a
        writable page's ``apply_write`` is a local byte copy with no
        events and no other side effects (diffs are collected against
        the twin at release), so hot pages skip the generator pair
        entirely.  Cold pages fault in span order, exactly as the base
        implementation — the bitmap is consulted at each page's turn
        because an earlier fault can block and change later pages'
        state."""
        pid = proc.pid
        pages = self.procs[pid].pages
        perms = self.perms
        pos = 0
        for page, start, length in spans:
            try:
                writable = perms.w_rows[pid][page]
            except IndexError:  # page past the bitmap: grow (tests only)
                perms.ensure_cap(page + 1)
                writable = perms.w_rows[pid][page]
            if writable:
                pages[page].copy[start : start + length] = raw[
                    pos : pos + length
                ]
            else:
                yield from self.ensure_write(proc, page)
                yield from self.apply_write(
                    proc, page, start, raw[pos : pos + length]
                )
            pos += length

    def fast_scatter(self, proc, space, segs, raw):
        pid = proc.pid
        ps = space.page_size
        perms = self.perms
        row = perms.w_rows[pid]
        try:
            for offset, nbytes in segs:
                end = offset + nbytes
                for page in range(offset // ps, (end - 1) // ps + 1):
                    if not row[page]:
                        return False
        except IndexError:  # page past the bitmap: grow (tests only)
            perms.ensure_cap(max(o + n - 1 for o, n in segs) // ps + 1)
            return self.fast_scatter(proc, space, segs, raw)
        pages = self.procs[pid].pages
        pos = 0
        for offset, nbytes in segs:
            end = offset + nbytes
            addr = offset
            while addr < end:
                page = addr // ps
                start = addr - page * ps
                length = min(ps - start, end - addr)
                pages[page].copy[start : start + length] = raw[
                    pos : pos + length
                ]
                pos += length
                addr += length
        return True

    def _lock_manager(self, lock_id: int) -> int:
        return lock_id % self.nprocs

    def _flag_owner(self, flag_id: int) -> int:
        return flag_id % self.nprocs

    def _records_size(self, records: List[IntervalRecord]) -> int:
        per = self.costs
        return sum(
            r.encoded_size(
                per.interval_record_bytes,
                per.vts_entry_bytes,
                per.write_notice_bytes,
            )
            for r in records
        ) + per.vts_entry_bytes * self.nprocs

    # -- intervals ---------------------------------------------------------

    def _close_interval(self, proc: Processor) -> Generator:
        """End the current interval if it performed any writes."""
        state = self._state(proc)
        if not state.notices:
            return
        iid = state.vts[proc.pid] + 1
        state.vts[proc.pid] = iid
        record = IntervalRecord(
            proc=proc.pid,
            iid=iid,
            vts=tuple(state.vts),
            pages=tuple(sorted(state.notices)),
        )
        state.store.insert(record)
        self.trace(
            proc, "interval_close", iid=iid, pages=len(record.pages)
        )
        pages, _ = record.pages, state.notices.clear()
        yield from proc.busy(2.0, Category.PROTOCOL)  # bookkeeping
        yield from self._on_interval_closed(proc, pages)

    def _incorporate(
        self, proc: Processor, records: List[IntervalRecord]
    ) -> Generator:
        """Merge received interval records; invalidate noticed pages."""
        state = self._state(proc)
        for record in records:
            if not state.store.insert(record):
                continue
            yield from proc.busy(
                self.costs.interval_process, Category.PROTOCOL
            )
            state.vts[record.proc] = max(state.vts[record.proc], record.iid)
            for page_idx in record.pages:
                us = self._note_remote_write(
                    proc, record.proc, record.iid, page_idx
                )
                if us:
                    yield from proc.busy(us, Category.PROTOCOL)

    # -- locks -------------------------------------------------------------

    def _ensure_lock_init(self, lock_id: int) -> None:
        """The manager starts out holding each lock's token."""
        if lock_id not in self.lock_last_owner:
            manager = self._lock_manager(lock_id)
            self.lock_last_owner[lock_id] = manager
            self.procs[manager].lock(lock_id).owns_token = True

    def lock_acquire(self, proc: Processor, lock_id: int) -> Generator:
        self._ensure_lock_init(lock_id)
        state = self._state(proc)
        lock = state.lock(lock_id)
        manager = self._lock_manager(lock_id)
        if lock.owns_token:
            # Re-acquiring our own cached lock: no messages, no new
            # consistency information.
            lock.holding = True
            return
        if manager == proc.pid:
            owner = self.lock_last_owner[lock_id]
            self.lock_last_owner[lock_id] = proc.pid
            target = self.cluster.proc(owner)
        else:
            target = self.cluster.proc(manager)
        reply = yield from self.messenger.request(
            proc,
            target,
            LOCK_ACQUIRE,
            payload=(lock_id, tuple(state.vts)),
            size=self.costs.vts_entry_bytes * self.nprocs,
        )
        records, owner_vts = reply
        yield from self._incorporate(proc, records)
        state.vts[:] = vts_max(state.vts, owner_vts)
        lock.owns_token = True
        lock.holding = True

    def lock_release(self, proc: Processor, lock_id: int) -> Generator:
        state = self._state(proc)
        lock = state.lock(lock_id)
        if not lock.holding:
            raise RuntimeError(f"p{proc.pid} releasing unheld lock {lock_id}")
        yield from self._on_lock_release(proc)
        lock.holding = False
        if lock.successor is not None:
            successor, lock.successor = lock.successor, None
            yield from self._grant_lock(proc, lock, successor)
        return

    def _grant_lock(
        self, proc: Processor, lock: LockState, request: Request
    ) -> Generator:
        """Pass the lock token (and unseen intervals) to a requester."""
        lock_id, requester_vts = request.payload
        state = self._state(proc)
        yield from self._close_interval(proc)
        records = state.store.records_after(requester_vts)
        self.trace(
            proc,
            "lock_grant",
            lock=lock_id,
            to=request.requester.pid,
            records=len(records),
        )
        lock.owns_token = False
        yield from self.messenger.reply(
            proc,
            request,
            payload=(records, tuple(state.vts)),
            size=self._records_size(records),
        )

    def _serve_lock_acquire(
        self, proc: Processor, request: Request
    ) -> Generator:
        lock_id, _requester_vts = request.payload
        self._ensure_lock_init(lock_id)
        if (
            proc.pid == self._lock_manager(lock_id)
            and self.lock_last_owner[lock_id] != proc.pid
        ):
            owner = self.lock_last_owner[lock_id]
            self.lock_last_owner[lock_id] = request.requester.pid
            yield from self.messenger.forward(
                proc, self.cluster.proc(owner), request
            )
            return
        if proc.pid == self._lock_manager(lock_id):
            self.lock_last_owner[lock_id] = request.requester.pid
        state = self._state(proc)
        lock = state.lock(lock_id)
        if lock.successor is not None:
            raise RuntimeError(
                f"lock {lock_id}: two successors queued at p{proc.pid}"
            )
        if lock.owns_token and not lock.holding:
            yield from self._grant_lock(proc, lock, request)
        else:
            lock.successor = request

    # -- barriers ------------------------------------------------------------

    def _barrier_state(self, barrier_id: int) -> BarrierState:
        found = self.barriers.get(barrier_id)
        if found is None:
            found = BarrierState(complete=self.engine.event())
            self.barriers[barrier_id] = found
        return found

    def barrier(self, proc: Processor, barrier_id: int) -> Generator:
        yield from self._close_interval(proc)
        self.trace(proc, "barrier_arrive", barrier=barrier_id)
        if self.nprocs == 1:
            state = self._state(proc)
            if state.store.record_count() > self.gc_record_threshold:
                yield from self._gc_flush(proc)
            return
        state = self._state(proc)
        if self._bleader is not None:
            gc_round = yield from self._barrier_hier(proc, barrier_id)
        elif proc.pid == 0:
            gc_round = yield from self._barrier_manager(proc, barrier_id)
        else:
            guess = state.manager_guess or (0,) * self.nprocs
            records = state.store.records_after(guess)
            reply = yield from self.messenger.request(
                proc,
                self.cluster.proc(0),
                BARRIER_ARRIVE,
                payload=(barrier_id, tuple(state.vts), records),
                size=self._records_size(records),
            )
            new_records, merged_vts, gc_round = reply
            yield from self._incorporate(proc, new_records)
            state.vts[:] = vts_max(state.vts, merged_vts)
            state.manager_guess = merged_vts
        if gc_round and barrier_id != GC_BARRIER_ID:
            yield from self._gc_flush(proc)

    def _barrier_manager(self, proc: Processor, barrier_id: int) -> Generator:
        state = self._state(proc)
        barrier = self._barrier_state(barrier_id)
        yield from proc.wait(barrier.complete, Category.COMM_WAIT)
        arrivals = barrier.arrivals
        # Reset before replying: released processors may re-arrive.
        self.barriers[barrier_id] = BarrierState(complete=self.engine.event())
        for request in arrivals:
            _bid, _vts, records = request.payload
            yield from self._incorporate(proc, records)
        merged = tuple(state.vts)
        gc_round = (
            barrier_id != GC_BARRIER_ID
            and state.store.record_count() > self.gc_record_threshold
        )
        for request in arrivals:
            _bid, arriver_vts, _records = request.payload
            records = state.store.records_after(arriver_vts)
            yield from self.messenger.reply(
                proc,
                request,
                payload=(records, merged, gc_round),
                size=self._records_size(records),
            )
        return gc_round

    def _barrier_hier(self, proc: Processor, barrier_id: int) -> Generator:
        """Two-stage group-leader barrier (PR 7, > 32 processors).

        Members arrive at their group leader exactly as flat arrivals
        at the manager; each leader incorporates its group, forwards
        one combined :data:`BARRIER_GROUP` arrival to the root, and
        releases its members from its post-merge store.  The root (the
        leader of group 0) plays the flat manager's role over group
        leaders only, so no processor ever serializes more than
        ``group + leaders`` replies — O(sqrt(P)) with the automatic
        group size instead of the flat barrier's O(P) storm at rank 0.
        """
        state = self._state(proc)
        pid = proc.pid
        leader = self._bleader[pid]
        if pid != leader:
            # Member: indistinguishable from a flat arrival, aimed at
            # the group leader instead of rank 0.
            guess = state.manager_guess or (0,) * self.nprocs
            records = state.store.records_after(guess)
            reply = yield from self.messenger.request(
                proc,
                self.cluster.proc(leader),
                BARRIER_ARRIVE,
                payload=(barrier_id, tuple(state.vts), records),
                size=self._records_size(records),
            )
            new_records, merged_vts, gc_round = reply
            yield from self._incorporate(proc, new_records)
            state.vts[:] = vts_max(state.vts, merged_vts)
            state.manager_guess = merged_vts
            return gc_round
        # Leader: collect this group's arrivals.
        arrivals: List[Request] = []
        nmembers = self._bgroup_members[pid]
        if nmembers:
            key = (barrier_id, pid)
            group = self._barrier_state(key)
            yield from proc.wait(group.complete, Category.COMM_WAIT)
            arrivals = group.arrivals
            # Reset before replying: released members may re-arrive.
            del self.barriers[key]
            for request in arrivals:
                _bid, _vts, records = request.payload
                yield from self._incorporate(proc, records)
        if pid == 0:
            # Root: additionally collect the other group leaders.
            leader_arrivals: List[Request] = []
            nleaders = len(self._bleaders) - 1
            if nleaders:
                key = (barrier_id, "leaders")
                stage = self._barrier_state(key)
                yield from proc.wait(stage.complete, Category.COMM_WAIT)
                leader_arrivals = stage.arrivals
                del self.barriers[key]
                for request in leader_arrivals:
                    _bid, _vts, records = request.payload
                    yield from self._incorporate(proc, records)
            merged = tuple(state.vts)
            gc_round = (
                barrier_id != GC_BARRIER_ID
                and state.store.record_count() > self.gc_record_threshold
            )
            for request in leader_arrivals:
                _bid, arriver_vts, _records = request.payload
                records = state.store.records_after(arriver_vts)
                yield from self.messenger.reply(
                    proc,
                    request,
                    payload=(records, merged, gc_round),
                    size=self._records_size(records),
                )
            state.manager_guess = merged
        else:
            # Forward the combined group as one arrival at the root.
            guess = state.manager_guess or (0,) * self.nprocs
            records = state.store.records_after(guess)
            reply = yield from self.messenger.request(
                proc,
                self.cluster.proc(0),
                BARRIER_GROUP,
                payload=(barrier_id, tuple(state.vts), records),
                size=self._records_size(records),
            )
            new_records, merged, gc_round = reply
            yield from self._incorporate(proc, new_records)
            state.vts[:] = vts_max(state.vts, merged)
            state.manager_guess = merged
        # Release this group's members from the post-merge store.
        for request in arrivals:
            _bid, arriver_vts, _records = request.payload
            records = state.store.records_after(arriver_vts)
            yield from self.messenger.reply(
                proc,
                request,
                payload=(records, merged, gc_round),
                size=self._records_size(records),
            )
        return gc_round

    def _serve_barrier_arrive(self, proc: Processor, request: Request) -> None:
        barrier_id, _vts, _records = request.payload
        if self._bleader is not None:
            key = (barrier_id, proc.pid)
            expected = self._bgroup_members[proc.pid]
        else:
            key = barrier_id
            expected = self.nprocs - 1
        barrier = self._barrier_state(key)
        barrier.arrivals.append(request)
        if len(barrier.arrivals) == expected:
            barrier.complete.succeed()

    def _serve_barrier_group(self, proc: Processor, request: Request) -> None:
        barrier_id, _vts, _records = request.payload
        barrier = self._barrier_state((barrier_id, "leaders"))
        barrier.arrivals.append(request)
        if len(barrier.arrivals) == len(self._bleaders) - 1:
            barrier.complete.succeed()

    # -- flags ------------------------------------------------------------------

    def flag_set(self, proc: Processor, flag_id: int) -> Generator:
        state = self._state(proc)
        if self._flag_owner(flag_id) != proc.pid:
            raise RuntimeError(
                f"flag {flag_id} must be set by its owner "
                f"p{self._flag_owner(flag_id)}, not p{proc.pid}"
            )
        yield from self._close_interval(proc)
        flag = state.flag(flag_id)
        flag.is_set = True
        if flag.local_event is not None and not flag.local_event.triggered:
            flag.local_event.succeed()
        waiters, flag.waiters = flag.waiters, []
        for request in waiters:
            _fid, waiter_vts = request.payload
            records = state.store.records_after(waiter_vts)
            yield from self.messenger.reply(
                proc,
                request,
                payload=(records, tuple(state.vts)),
                size=self._records_size(records),
            )

    def flag_wait(self, proc: Processor, flag_id: int) -> Generator:
        state = self._state(proc)
        owner = self._flag_owner(flag_id)
        if owner == proc.pid:
            flag = state.flag(flag_id)
            if not flag.is_set:
                if flag.local_event is None:
                    flag.local_event = self.engine.event()
                yield from proc.wait(flag.local_event, Category.COMM_WAIT)
            return
        reply = yield from self.messenger.request(
            proc,
            self.cluster.proc(owner),
            FLAG_WAIT,
            payload=(flag_id, tuple(state.vts)),
            size=self.costs.vts_entry_bytes * self.nprocs,
        )
        records, owner_vts = reply
        yield from self._incorporate(proc, records)
        state.vts[:] = vts_max(state.vts, owner_vts)

    def _serve_flag_wait(self, proc: Processor, request: Request) -> Generator:
        flag_id, waiter_vts = request.payload
        state = self._state(proc)
        flag = state.flag(flag_id)
        if flag.is_set:
            records = state.store.records_after(waiter_vts)
            yield from self.messenger.reply(
                proc,
                request,
                payload=(records, tuple(state.vts)),
                size=self._records_size(records),
            )
        else:
            flag.waiters.append(request)

    # -- garbage collection ----------------------------------------------------

    def _gc_flush(self, proc: Processor) -> Generator:
        """Collect interval records once every processor has flushed
        whatever page state depends on them (subclass hook)."""
        state = self._state(proc)
        proc.bump("gc_rounds")
        self.trace(proc, "gc_flush")
        yield from self._gc_flush_pages(proc)
        if self.nprocs > 1:
            # A full synchronization round guarantees every outstanding
            # data request has been served before records are dropped.
            yield from self.barrier(proc, GC_BARRIER_ID)
        state.store.collect(state.vts)
        yield from self._gc_drop_caches(proc)

    # -- request dispatch --------------------------------------------------------

    def serve(self, proc: Processor, request: Request) -> Generator:
        if request.kind == LOCK_ACQUIRE:
            yield from self._serve_lock_acquire(proc, request)
        elif request.kind == BARRIER_ARRIVE:
            self._serve_barrier_arrive(proc, request)
        elif request.kind == BARRIER_GROUP:
            self._serve_barrier_group(proc, request)
        elif request.kind == FLAG_WAIT:
            yield from self._serve_flag_wait(proc, request)
        else:
            yield from self._serve_data(proc, request)

    # -- subclass hooks -----------------------------------------------------------

    def _on_lock_release(self, proc: Processor) -> Generator:
        """Release-side processing for locks.  TreadMarks is fully lazy
        (the interval closes only when the token is granted); home-based
        LRC closes the interval here to push diffs home eagerly."""
        return
        yield  # pragma: no cover

    def _on_interval_closed(self, proc: Processor, pages) -> Generator:
        """Called after an interval closes, with its written pages."""
        return
        yield  # pragma: no cover

    def _note_remote_write(
        self, proc: Processor, writer: int, iid: int, page_idx: int
    ) -> float:
        """A write notice for ``page_idx`` entered ``proc``'s past.

        Synchronous (this is the hottest hook: one call per write
        notice per incorporating processor); returns the protocol busy
        time in microseconds the caller must charge — 0 for the common
        nothing-to-invalidate case, ``costs.mprotect`` otherwise.
        """
        raise NotImplementedError

    def _serve_data(self, proc: Processor, request: Request) -> Generator:
        """Handle the data-movement request kinds of the subclass."""
        raise NotImplementedError

    def _gc_flush_pages(self, proc: Processor) -> Generator:
        """Bring page state up to date so records can be dropped."""
        return
        yield  # pragma: no cover

    def _gc_drop_caches(self, proc: Processor) -> Generator:
        """Drop collected data (diff caches etc.)."""
        return
        yield  # pragma: no cover

    # -- invariants -----------------------------------------------------------------

    def _perm_entries(self, pid: int):
        pages = getattr(self.procs[pid], "pages", None)
        if pages is None:
            return ()
        return ((page_idx, page.perm) for page_idx, page in pages.items())

    def check_invariants(self) -> None:
        self.check_perm_bitmaps()
        for pid, state in self.procs.items():
            for other in range(self.nprocs):
                latest = state.store.latest(other)
                if other == pid:
                    if latest != state.vts[pid]:
                        raise AssertionError(
                            f"p{pid}: own interval chain at {latest} but "
                            f"vts says {state.vts[pid]}"
                        )
                elif state.vts[other] != latest:
                    raise AssertionError(
                        f"p{pid}: vts[{other}]={state.vts[other]} but "
                        f"store knows {latest}"
                    )
