"""The protocol interface the DSM runtime drives.

Both Cashmere and TreadMarks implement this interface.  Every method that
consumes simulated time is a generator (it yields simulation events); the
runtime composes them with ``yield from``.
"""

from __future__ import annotations

import abc
from typing import Any, Generator, List, Optional, Tuple

import numpy as np

from repro.config import WorkingSet
from repro.cluster.machine import Processor
from repro.cluster.messaging import Request
from repro.core.fastpath import PermBitmaps
from repro.memory.page import Protection
from repro.stats import Category

Span = Tuple[int, int, int]  # (page, start_within_page, length)


class DsmProtocol(abc.ABC):
    """Coherence, synchronization, and data access for one DSM system."""

    #: whether poll instrumentation costs apply to this run
    counts_polling = True

    #: installed by the program runner; a disabled tracer is free
    tracer = None

    #: permission bitmaps mirroring per-page ``perm`` state; protocols
    #: that support the vectorized hit path create one in ``__init__``
    perms: Optional[PermBitmaps] = None

    #: True when ``apply_write`` on a writable page consumes no simulated
    #: time and emits no events (TreadMarks/HLRC write the local copy
    #: only), making an all-hot write span eligible for the zero-cost
    #: scatter.  Cashmere keeps this False: every shared write runs the
    #: doubled-write sequence even when no fault is taken.
    free_writes = False

    def trace(self, proc, kind: str, *, dur: float = 0.0, **details) -> None:
        """Record a protocol event when tracing is enabled.

        ``dur > 0`` records a *span* that started ``dur`` microseconds
        ago (callers emit spans when they end); the tracer files it
        under its start time.  See ``docs/OBSERVABILITY.md`` for the
        catalog of kinds and their ``details`` fields.
        """
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                proc.engine.now - dur, proc.pid, kind, dur=dur, **details
            )

    # -- page access ------------------------------------------------------

    @abc.abstractmethod
    def ensure_read(self, proc: Processor, page: int) -> Generator:
        """Make ``page`` readable at ``proc`` (take a read fault if not)."""

    @abc.abstractmethod
    def ensure_write(self, proc: Processor, page: int) -> Generator:
        """Make ``page`` writable at ``proc`` (take a write fault if not)."""

    @abc.abstractmethod
    def page_data(self, proc: Processor, page: int) -> np.ndarray:
        """``proc``'s current mapping of ``page`` as a uint8 array.

        Only valid after :meth:`ensure_read` / :meth:`ensure_write`.
        """

    @abc.abstractmethod
    def apply_write(
        self, proc: Processor, page: int, start: int, raw: np.ndarray
    ) -> Generator:
        """Apply a write of ``raw`` bytes at ``start`` within ``page``.

        Cashmere doubles the write through to the home copy and charges
        the doubling sequence; TreadMarks writes the local copy only.
        """

    # -- fast-path layer ---------------------------------------------------
    #
    # The already-mapped case costs nothing on the paper's hardware (the
    # Alpha MMU only traps on actual protection faults), so the
    # simulation makes it O(1): one vectorized bitmap slice decides
    # whether a whole span is hot, and hot spans move bytes without
    # entering a single protocol generator.  Cold spans fall into the
    # ``ensure_*_span`` batched fault loops below, which preserve the
    # per-page event order, counters, and trace emission of the original
    # per-page loop exactly.

    def _set_perm(self, pid: int, page: int, holder, perm: Protection) -> None:
        """The single funnel for permission transitions: update the
        authoritative per-page state and the mirrored bitmap together."""
        holder.perm = perm
        if self.perms is not None:
            self.perms.set(pid, page, perm)

    def fast_read(
        self, proc: Processor, space, offset: int, nbytes: int
    ) -> Optional[np.ndarray]:
        """The zero-cost read hit path.

        If every page spanned by ``[offset, offset+nbytes)`` is readable
        at ``proc``, gather the bytes across the page copies and return
        them; otherwise return None (the caller takes the fault path).
        A hot read is free and event-less under every protocol, so the
        gather is bit-identical to the per-page generator loop.
        """
        perms = self.perms
        if perms is None:
            return None
        lo, hi = space.span_bounds(offset, nbytes)
        if not perms.read_ready(proc.pid, lo, hi):
            return None
        out = np.empty(nbytes, np.uint8)
        ps = space.page_size
        end = offset + nbytes
        pos = 0
        addr = offset
        for page in range(lo, hi):
            start = addr - page * ps
            length = min(ps - start, end - addr)
            out[pos : pos + length] = self.page_data(proc, page)[
                start : start + length
            ]
            pos += length
            addr += length
        return out

    def fast_write(
        self, proc: Processor, space, offset: int, raw: np.ndarray
    ) -> bool:
        """The zero-cost write hit path.

        Only protocols whose ``apply_write`` is free (``free_writes``)
        can scatter directly: if every spanned page is writable, copy
        the bytes into the page copies and return True.  Returns False
        when any page is cold or writes carry per-word cost (Cashmere's
        doubling), sending the caller down the fault path.
        """
        perms = self.perms
        if perms is None or not self.free_writes:
            return False
        nbytes = raw.nbytes
        lo, hi = space.span_bounds(offset, nbytes)
        if not perms.write_ready(proc.pid, lo, hi):
            return False
        ps = space.page_size
        end = offset + nbytes
        pos = 0
        addr = offset
        for page in range(lo, hi):
            start = addr - page * ps
            length = min(ps - start, end - addr)
            self.page_data(proc, page)[start : start + length] = raw[
                pos : pos + length
            ]
            pos += length
            addr += length
        return True

    def fast_gather(
        self, proc: Processor, space, segs, total: int
    ) -> Optional[np.ndarray]:
        """Zero-cost multi-segment read: the region hit path.

        ``segs`` is a list of ``(offset, nbytes)`` byte segments.  If
        every page spanned by every segment is readable at ``proc``,
        gather all segments into one contiguous buffer and return it;
        otherwise return None without touching any page (the caller
        takes the per-segment fault path).  Readiness is probed for the
        whole region *before* any byte moves, so a miss has no side
        effects.  Like :meth:`fast_read`, a hot gather is free and
        event-less under every protocol.

        Subclasses with cheap page accessors override this to hoist
        their per-page lookups out of the loop; the default goes
        through :meth:`page_data`.
        """
        perms = self.perms
        if perms is None:
            return None
        pid = proc.pid
        ps = space.page_size
        for offset, nbytes in segs:
            if not perms.read_ready(pid, offset // ps, (offset + nbytes - 1) // ps + 1):
                return None
        out = np.empty(total, np.uint8)
        pos = 0
        for offset, nbytes in segs:
            end = offset + nbytes
            addr = offset
            while addr < end:
                page = addr // ps
                start = addr - page * ps
                length = min(ps - start, end - addr)
                out[pos : pos + length] = self.page_data(proc, page)[
                    start : start + length
                ]
                pos += length
                addr += length
        return out

    def fast_scatter(
        self, proc: Processor, space, segs, raw: np.ndarray
    ) -> bool:
        """Zero-cost multi-segment write: the region hit path.

        Consumes ``raw`` in segment order.  Only applies when writes are
        free (``free_writes``) and every page of every segment is
        already writable — probed up front, so a False return has no
        side effects and the caller replays the per-segment
        ``ensure_write_span`` sequence instead.
        """
        perms = self.perms
        if perms is None or not self.free_writes:
            return False
        pid = proc.pid
        ps = space.page_size
        for offset, nbytes in segs:
            if not perms.write_ready(pid, offset // ps, (offset + nbytes - 1) // ps + 1):
                return False
        pos = 0
        for offset, nbytes in segs:
            end = offset + nbytes
            addr = offset
            while addr < end:
                page = addr // ps
                start = addr - page * ps
                length = min(ps - start, end - addr)
                self.page_data(proc, page)[start : start + length] = raw[
                    pos : pos + length
                ]
                pos += length
                addr += length
        return True

    def region_gather(self, proc: Processor, space, region):
        """Zero-cost region read driven by the region's cached span
        geometry: one fancy-indexed bitmap probe over every spanned
        page, then one copy per span with no per-byte page arithmetic.
        Returns None (no side effects) when any page is cold — the
        caller takes the per-segment fault path.  Semantically identical
        to :meth:`fast_gather`; this entry just amortizes the geometry
        through :class:`Region`'s caches.
        """
        perms = self.perms
        if perms is None:
            return self.fast_gather(proc, space, region.segs, region.nbytes)
        if not perms.read_ready_pages(proc.pid, region.span_pages()):
            return None
        out = np.empty(region.nbytes, np.uint8)
        pos = 0
        for page, start, length in region.page_spans():
            out[pos : pos + length] = self.page_data(proc, page)[
                start : start + length
            ]
            pos += length
        return out

    def region_scatter(self, proc: Processor, space, region, raw) -> bool:
        """Zero-cost region write via cached span geometry; the
        region-shaped counterpart of :meth:`fast_scatter` (same
        ``free_writes`` gate, same no-side-effects False on any cold
        page)."""
        if not self.free_writes:
            return False
        perms = self.perms
        if perms is None:
            return self.fast_scatter(proc, space, region.segs, raw)
        if not perms.write_ready_pages(proc.pid, region.span_pages()):
            return False
        pos = 0
        for page, start, length in region.page_spans():
            self.page_data(proc, page)[start : start + length] = raw[
                pos : pos + length
            ]
            pos += length
        return True

    def ensure_read_span(self, proc: Processor, lo: int, hi: int) -> Generator:
        """Fault in the cold pages of ``[lo, hi)``, in page order.

        Hot pages are skipped via the bitmap — ``ensure_read`` on a
        mapped page is a pure no-op (no time, no counters, no events),
        so the skip is invisible to the simulation.  The bitmap is
        consulted at each page's turn (not precomputed), because a fault
        on an earlier page may block and service requests that change
        later pages' state.
        """
        perms = self.perms
        for page in range(lo, hi):
            if perms is None or not perms.readable_at(proc.pid, page):
                yield from self.ensure_read(proc, page)

    def ensure_write_span(
        self, proc: Processor, spans: List[Span], raw: np.ndarray
    ) -> Generator:
        """Write ``raw`` across ``spans``, faulting cold pages.

        Per-page event order is preserved exactly: each page's fault (if
        any) is immediately followed by its ``apply_write``, as in the
        original loop.  Interleaving matters — a fault on a later page
        can block and close the current interval (e.g. servicing a lock
        grant), and the bytes written to earlier pages must already be
        in place when that happens.  Only the no-op ``ensure_write``
        calls on already-writable pages are elided.
        """
        perms = self.perms
        pos = 0
        for page, start, length in spans:
            if perms is None or not perms.writable_at(proc.pid, page):
                yield from self.ensure_write(proc, page)
            yield from self.apply_write(
                proc, page, start, raw[pos : pos + length]
            )
            pos += length

    # -- software prefetch (docs/POLICIES.md) ------------------------------

    #: the run's prefetcher (``None`` = demand fetch only, the paper's
    #: behavior); protocols construct one from the run config's
    #: ``prefetch`` knob in ``__init__``
    prefetcher = None

    #: re-entrance guard: fetches issued by a prefetch never prefetch
    _prefetching = False

    def _after_fault(self, proc: Processor, page: int) -> Generator:
        """Issue the sharing policy's software prefetches after a demand
        fault on ``page``.

        With no prefetcher this yields nothing, and a generator that
        yields no events is invisible to the simulation — the default
        ``prefetch="none"`` policy is bit-identical by construction.
        Prefetched units are validated to READ without the demand-fault
        kernel trap (see :meth:`_prefetch_page`).
        """
        pf = self.prefetcher
        if pf is None or self._prefetching:
            return
        predicted = pf.predict(proc.pid, page, self.space.n_pages)
        if not predicted:
            return
        self._prefetching = True
        try:
            for unit in predicted:
                yield from self._prefetch_page(proc, unit)
        finally:
            self._prefetching = False

    def _prefetch_page(self, proc: Processor, page: int) -> Generator:
        """Bring ``page`` to READ at ``proc`` without charging the
        demand-fault trap.  Protocols that support prefetch override
        this; the base implementation does nothing."""
        return
        yield  # pragma: no cover - makes this a generator

    def check_perm_bitmaps(self) -> None:
        """Assert the bitmaps agree with per-page ``perm`` state
        (subclasses supply the authoritative pairs via
        ``_perm_entries``)."""
        if self.perms is None:
            return
        for pid in range(self.perms.nprocs):
            self.perms.expect(pid, self._perm_entries(pid))

    def _perm_entries(self, pid: int):
        """Authoritative ``(page, Protection)`` pairs for one processor
        (override in protocols that maintain bitmaps)."""
        return ()

    # -- synchronization ------------------------------------------------------

    @abc.abstractmethod
    def lock_acquire(self, proc: Processor, lock_id: int) -> Generator:
        """Acquire an application lock, with acquire-side consistency."""

    @abc.abstractmethod
    def lock_release(self, proc: Processor, lock_id: int) -> Generator:
        """Release an application lock, with release-side consistency."""

    @abc.abstractmethod
    def barrier(self, proc: Processor, barrier_id: int) -> Generator:
        """Global barrier with release+acquire consistency semantics."""

    @abc.abstractmethod
    def flag_set(self, proc: Processor, flag_id: int) -> Generator:
        """Producer side of a one-shot synchronization flag."""

    @abc.abstractmethod
    def flag_wait(self, proc: Processor, flag_id: int) -> Generator:
        """Consumer side of a one-shot synchronization flag."""

    # -- remote request service ----------------------------------------------

    @abc.abstractmethod
    def serve(self, proc: Processor, request: Request) -> Generator:
        """Handle one incoming remote request on ``proc``."""

    # -- one-sided data movement ----------------------------------------------

    def rdma_read(
        self, proc: Processor, from_node: int, nbytes: int
    ) -> Generator:
        """Pull ``nbytes`` out of ``from_node``'s memory with a one-sided
        remote read: wire time only, no remote CPU, no request/reply.

        Only valid when ``self.network.remote_reads`` is True (the
        caller gates on it); protocols use this to replace page/diff
        fetch round-trips on RDMA-class backends (docs/NETWORKS.md).
        The issuing processor blocks — servicing incoming requests
        meanwhile, like any fetch — until the data lands.
        """
        start = self.engine.now
        done = self.network.read(proc.node.nid, from_node, nbytes)
        proc.bump("rdma_reads")
        proc.bump("data_bytes", nbytes)
        arrived = self.engine.event()
        self.engine.succeed_at(done, arrived)
        yield from proc.wait(arrived, Category.COMM_WAIT)
        self.trace(
            proc,
            "rdma_read",
            dur=self.engine.now - start,
            nbytes=nbytes,
            from_node=from_node,
        )

    # -- cost modelling hooks ---------------------------------------------

    def compute_factors(self, ws: WorkingSet) -> tuple:
        """Cache-model multipliers for a compute phase.

        Returns ``(user_factor, total_factor, overhead_category)``:
        ``user_factor`` is the inherent cache cost of the phase (what the
        application would pay with no DSM system linked in);
        ``total_factor`` adds the protocol's extra cache footprint (write
        doubling for Cashmere, twins/diffs for TreadMarks); the
        difference is charged to ``overhead_category``.
        """
        return 1.0, 1.0, Category.PROTOCOL

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Called once before worker processes begin."""

    def prewarm(self) -> None:
        """Give every processor a valid read-only copy of every page
        (the ``warm_start`` option; see :class:`repro.config.RunConfig`)."""

    def check_invariants(self) -> None:
        """Debug hook: raise if internal state is inconsistent."""
