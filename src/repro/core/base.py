"""The protocol interface the DSM runtime drives.

Both Cashmere and TreadMarks implement this interface.  Every method that
consumes simulated time is a generator (it yields simulation events); the
runtime composes them with ``yield from``.
"""

from __future__ import annotations

import abc
from typing import Any, Generator

import numpy as np

from repro.config import WorkingSet
from repro.cluster.machine import Processor
from repro.cluster.messaging import Request
from repro.stats import Category


class DsmProtocol(abc.ABC):
    """Coherence, synchronization, and data access for one DSM system."""

    #: whether poll instrumentation costs apply to this run
    counts_polling = True

    #: installed by the program runner; a disabled tracer is free
    tracer = None

    def trace(self, proc, kind: str, *, dur: float = 0.0, **details) -> None:
        """Record a protocol event when tracing is enabled.

        ``dur > 0`` records a *span* that started ``dur`` microseconds
        ago (callers emit spans when they end); the tracer files it
        under its start time.  See ``docs/OBSERVABILITY.md`` for the
        catalog of kinds and their ``details`` fields.
        """
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                proc.engine.now - dur, proc.pid, kind, dur=dur, **details
            )

    # -- page access ------------------------------------------------------

    @abc.abstractmethod
    def ensure_read(self, proc: Processor, page: int) -> Generator:
        """Make ``page`` readable at ``proc`` (take a read fault if not)."""

    @abc.abstractmethod
    def ensure_write(self, proc: Processor, page: int) -> Generator:
        """Make ``page`` writable at ``proc`` (take a write fault if not)."""

    @abc.abstractmethod
    def page_data(self, proc: Processor, page: int) -> np.ndarray:
        """``proc``'s current mapping of ``page`` as a uint8 array.

        Only valid after :meth:`ensure_read` / :meth:`ensure_write`.
        """

    @abc.abstractmethod
    def apply_write(
        self, proc: Processor, page: int, start: int, raw: np.ndarray
    ) -> Generator:
        """Apply a write of ``raw`` bytes at ``start`` within ``page``.

        Cashmere doubles the write through to the home copy and charges
        the doubling sequence; TreadMarks writes the local copy only.
        """

    # -- synchronization ------------------------------------------------------

    @abc.abstractmethod
    def lock_acquire(self, proc: Processor, lock_id: int) -> Generator:
        """Acquire an application lock, with acquire-side consistency."""

    @abc.abstractmethod
    def lock_release(self, proc: Processor, lock_id: int) -> Generator:
        """Release an application lock, with release-side consistency."""

    @abc.abstractmethod
    def barrier(self, proc: Processor, barrier_id: int) -> Generator:
        """Global barrier with release+acquire consistency semantics."""

    @abc.abstractmethod
    def flag_set(self, proc: Processor, flag_id: int) -> Generator:
        """Producer side of a one-shot synchronization flag."""

    @abc.abstractmethod
    def flag_wait(self, proc: Processor, flag_id: int) -> Generator:
        """Consumer side of a one-shot synchronization flag."""

    # -- remote request service ----------------------------------------------

    @abc.abstractmethod
    def serve(self, proc: Processor, request: Request) -> Generator:
        """Handle one incoming remote request on ``proc``."""

    # -- cost modelling hooks ---------------------------------------------

    def compute_factors(self, ws: WorkingSet) -> tuple:
        """Cache-model multipliers for a compute phase.

        Returns ``(user_factor, total_factor, overhead_category)``:
        ``user_factor`` is the inherent cache cost of the phase (what the
        application would pay with no DSM system linked in);
        ``total_factor`` adds the protocol's extra cache footprint (write
        doubling for Cashmere, twins/diffs for TreadMarks); the
        difference is charged to ``overhead_category``.
        """
        return 1.0, 1.0, Category.PROTOCOL

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Called once before worker processes begin."""

    def prewarm(self) -> None:
        """Give every processor a valid read-only copy of every page
        (the ``warm_start`` option; see :class:`repro.config.RunConfig`)."""

    def check_invariants(self) -> None:
        """Debug hook: raise if internal state is inconsistent."""
