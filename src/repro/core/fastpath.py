"""Vectorized permission bitmaps: the zero-cost hit path for shared access.

On the paper's hardware a shared access to an already-mapped page costs
nothing — the Alpha MMU only traps on actual protection faults.  The
simulation used to pay a Python generator trampoline per page on every
access anyway.  This module provides the data structure that removes
that overhead: per-processor boolean bitmaps mirroring each protocol's
per-page :class:`~repro.memory.page.Protection` state, so the
already-mapped case is one vectorized slice check instead of a chain of
generators.

The bitmaps are indexed by coherence *unit* — the VM page by default,
sub-page blocks or multi-page regions under a non-default granularity
policy (docs/POLICIES.md); the whole layer re-keys automatically off
``AddressSpace.page_size``.

The bitmaps are *redundant* state: the per-page ``perm`` fields remain
authoritative, and every protocol updates the bitmaps at every
transition (fault upgrades, invalidations, release/barrier downgrades).
``check_invariants`` on each protocol asserts the two never disagree;
``tests/test_fastpath_invariants.py`` drives that assertion through
fault/invalidate/downgrade sequences for all three protocols.

Escape hatch: ``SimOptions(fastpath=False)`` — the CLI's
``--no-fastpath`` flag, or the deprecated ``REPRO_DSM_NO_FASTPATH=1``
alias — disables the fast path entirely and restores the per-page
generator loop.  Simulated times, counters, and traces are
bit-identical either way (locked in by
``tests/test_engine_equivalence.py``); only wall clock differs.

With ``SimOptions(debug_checks=True)`` (``--debug-checks`` /
``REPRO_DSM_DEBUG=1``), the runtime additionally re-checks bitmap/perm
coherence at every barrier (see ``Env.barrier``), so a drifting
transition is caught at the first synchronization point after it
happens instead of at the end of the run.
"""

from __future__ import annotations

import numpy as np

from repro import options as _options
from repro.memory.page import Protection

#: Module-level switches, mirrored from :mod:`repro.options` — the hit
#: paths probe plain globals instead of calling into the options object.
#: ``SimOptions.apply`` keeps them in sync; tests flip them directly.
_initial = _options.current()
ENABLED = _initial.fastpath
DEBUG = _initial.debug_checks


def set_enabled(flag: bool) -> None:
    """Toggle the fast path in-process (benchmarks and tests)."""
    global ENABLED
    ENABLED = bool(flag)


def refresh_from_env() -> None:
    """Re-read both switches from the deprecated environment aliases."""
    global ENABLED, DEBUG
    options = _options.SimOptions.from_env(warn=False)
    ENABLED = options.fastpath
    DEBUG = options.debug_checks


#: perm -> (readable, writable), resolved once instead of two enum
#: comparisons per permission transition.
_PERM_BITS = {
    perm: (perm >= Protection.READ, perm >= Protection.READ_WRITE)
    for perm in Protection
}


class PermBitmaps:
    """Per-processor readable/writable page bitmaps.

    ``readable[pid, page]`` / ``writable[pid, page]`` mirror
    ``Protection.allows_read()`` / ``allows_write()`` of that
    processor's mapping.  Rows grow on demand (unit tests allocate
    regions after protocol construction); in a normal run the address
    space is fully allocated before the protocol exists, so the arrays
    are sized once.
    """

    def __init__(self, nprocs: int, n_pages: int = 0):
        self.nprocs = nprocs
        self._cap = max(1, int(n_pages))
        self.readable = np.zeros((nprocs, self._cap), bool)
        self.writable = np.zeros((nprocs, self._cap), bool)
        self._make_row_views()

    def _make_row_views(self) -> None:
        # Per-processor row views, indexable by a plain list lookup: the
        # hit path probes these directly, skipping 2-D indexing.  They
        # alias the 2-D arrays, so ``set`` updates are visible in both.
        self.r_rows = list(self.readable)
        self.w_rows = list(self.writable)

    def _grow(self, needed: int) -> None:
        cap = max(needed, 2 * self._cap)
        readable = np.zeros((self.nprocs, cap), bool)
        writable = np.zeros((self.nprocs, cap), bool)
        readable[:, : self._cap] = self.readable
        writable[:, : self._cap] = self.writable
        self.readable, self.writable, self._cap = readable, writable, cap
        self._make_row_views()

    def ensure_cap(self, needed: int) -> None:
        """Public grow hook for hit paths that probe the row views."""
        if needed > self._cap:
            self._grow(needed)

    # -- updates (called at every permission transition) ---------------

    def set(self, pid: int, page: int, perm: Protection) -> None:
        if page >= self._cap:
            self._grow(page + 1)
        readable, writable = _PERM_BITS[perm]
        self.r_rows[pid][page] = readable
        self.w_rows[pid][page] = writable

    # -- queries (the vectorized hit-path check) ------------------------

    # Short spans are checked with scalar indexing: numpy's ufunc
    # dispatch for ``.all()`` costs ~1us regardless of length, while a
    # scalar probe is ~40ns, so the crossover sits well above the page
    # counts typical of a row access.

    def read_ready(self, pid: int, lo: int, hi: int) -> bool:
        """True iff every page in ``[lo, hi)`` is readable at ``pid``."""
        if hi > self._cap:
            self._grow(hi)
        row = self.readable[pid]
        if hi - lo <= 16:
            for page in range(lo, hi):
                if not row[page]:
                    return False
            return True
        return bool(row[lo:hi].all())

    def write_ready(self, pid: int, lo: int, hi: int) -> bool:
        """True iff every page in ``[lo, hi)`` is writable at ``pid``."""
        if hi > self._cap:
            self._grow(hi)
        row = self.writable[pid]
        if hi - lo <= 16:
            for page in range(lo, hi):
                if not row[page]:
                    return False
            return True
        return bool(row[lo:hi].all())

    def read_ready_pages(self, pid: int, pages: np.ndarray) -> bool:
        """True iff every page in the index array is readable at ``pid``.

        One fancy-indexed probe for an arbitrary (non-contiguous) page
        set — the region hit-path check.  Out-of-capacity pages grow
        the bitmap (as unmapped, so the probe then correctly fails).
        """
        try:
            return bool(self.readable[pid][pages].all())
        except IndexError:
            self._grow(int(pages.max()) + 1)
            return bool(self.readable[pid][pages].all())

    def write_ready_pages(self, pid: int, pages: np.ndarray) -> bool:
        """True iff every page in the index array is writable at ``pid``."""
        try:
            return bool(self.writable[pid][pages].all())
        except IndexError:
            self._grow(int(pages.max()) + 1)
            return bool(self.writable[pid][pages].all())

    def readable_at(self, pid: int, page: int) -> bool:
        if page >= self._cap:
            self._grow(page + 1)
        return bool(self.readable[pid, page])

    def writable_at(self, pid: int, page: int) -> bool:
        if page >= self._cap:
            self._grow(page + 1)
        return bool(self.writable[pid, page])

    # -- coherence checking ---------------------------------------------

    def expect(self, pid: int, pairs) -> None:
        """Assert this row matches an authoritative ``(page, perm)``
        iterable (everything not listed must be ``Protection.NONE``)."""
        expect_r = np.zeros(self._cap, bool)
        expect_w = np.zeros(self._cap, bool)
        for page, perm in pairs:
            if page < self._cap:
                expect_r[page] = perm >= Protection.READ
                expect_w[page] = perm >= Protection.READ_WRITE
            elif perm is not Protection.NONE:
                raise AssertionError(
                    f"p{pid}: page {page} has {perm.name} beyond bitmap "
                    f"capacity {self._cap}"
                )
        for name, bitmap, expect in (
            ("readable", self.readable[pid], expect_r),
            ("writable", self.writable[pid], expect_w),
        ):
            bad = np.flatnonzero(bitmap != expect)
            if bad.size:
                page = int(bad[0])
                raise AssertionError(
                    f"p{pid}: {name} bitmap disagrees with perm state at "
                    f"page {page} (bitmap={bool(bitmap[page])}, "
                    f"perm says {bool(expect[page])})"
                )
