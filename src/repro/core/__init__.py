"""The paper's contribution: two page-based software DSM protocols
(Cashmere and TreadMarks) and the runtime that programs use."""

from repro.core.base import DsmProtocol
from repro.core.runtime.program import (
    Program,
    RunResult,
    run_program,
    run_sequential,
)
from repro.core.runtime.shared import Region, SharedArray

__all__ = [
    "DsmProtocol",
    "Program",
    "Region",
    "RunResult",
    "SharedArray",
    "run_program",
    "run_sequential",
]
