"""The TreadMarks protocol: lazy release consistency with multi-writer
twins and diffs, over request/response messaging only.

All consistency information is local; communication happens only at
synchronization points and at page faults (Section 2.2):

* lock acquires travel manager -> last owner -> requester, carrying the
  interval records (with write notices) the requester has not seen;
* barriers centralize interval exchange at a barrier manager;
* invalidated pages are re-validated by fetching diffs from the writers
  named in the pending write notices, applied in causal order;
* writers twin a page on the first write of an interval and create
  run-length diffs lazily when asked.

The synchronization/interval engine lives in
:class:`repro.core.lrc.LrcProtocolBase`; this module provides the lazy
diff data movement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.config import WorkingSet
from repro.cluster.machine import Processor
from repro.cluster.messaging import Request
from repro.core.lrc import LrcProcState, LrcProtocolBase
from repro.core.intervals import IntervalStore
from repro.memory.diff import WORD, Diff, apply_diff_versioned, make_diff
from repro.memory.page import Protection
from repro.stats import Category

PAGE_FETCH = "tmk_page_fetch"
DIFF_FETCH = "tmk_diff_fetch"

# Garbage collection of consistency information (intervals, write
# notices, diffs) triggers at the next barrier once this many interval
# records have accumulated, as in the real system.
GC_RECORD_THRESHOLD = 4096


@dataclass
class TmkPage:
    """One processor's view of one page.

    ``pending`` holds write notices ``(writer, interval)`` not yet known
    to be reflected in the local copy.  ``covered_iid[writer]`` is the
    writer's highest interval whose writes have certainly been applied;
    ``have_seq[writer]`` is the highest diff sequence number received
    from that writer (writers number their diffs per page).
    """

    perm: Protection = Protection.NONE
    copy: Optional[np.ndarray] = None
    twin: Optional[np.ndarray] = None
    pending: List[Tuple[int, int]] = field(default_factory=list)
    covered_iid: Dict[int, int] = field(default_factory=dict)
    have_seq: Dict[int, int] = field(default_factory=dict)
    # Per-page causal version (a Lamport tag): stands in for the interval
    # vector-timestamp order TreadMarks applies diffs in.  A writer's new
    # diff is tagged above every diff it applied before writing, and the
    # invalidate-on-notice path guarantees a causally later writer always
    # applied its predecessors first, so tag order linearizes
    # happens-before for race-free programs.  ``word_tags`` records the
    # version applied per word, so an older diff arriving late cannot
    # regress a word a newer diff already wrote.
    lamport: int = 0
    word_tags: Optional[np.ndarray] = None

    def tags_for(self, page_size: int) -> np.ndarray:
        if self.word_tags is None:
            self.word_tags = np.zeros(page_size // 8, np.int64)
        return self.word_tags


@dataclass
class WriterDiffs:
    """A writer's diff history for one page it has modified.

    ``covered`` is the highest interval index whose writes are fully
    represented by the cached diffs.  Diffs are cumulative against the
    twin at creation time and are identified by a per-page sequence
    number, which keeps bookkeeping sound even when a page is diffed in
    the middle of an open interval and then written again.
    """

    seq: int = 0
    covered: int = 0
    cache: List[Tuple[int, int, Diff]] = field(default_factory=list)
    # cache entries are (seq, causal tag, diff)


@dataclass
class ProcState(LrcProcState):
    """TreadMarks per-processor protocol state."""

    pages: Dict[int, TmkPage] = field(default_factory=dict)
    diff_cache: Dict[int, WriterDiffs] = field(default_factory=dict)

    def page(self, page_idx: int) -> TmkPage:
        found = self.pages.get(page_idx)
        if found is None:
            found = TmkPage()
            self.pages[page_idx] = found
        return found


class TreadMarksProtocol(LrcProtocolBase):
    """Lazy release consistency over fast user-level messages."""

    # A write to a writable page touches the local copy only (diffs are
    # collected lazily), so hot write spans qualify for the zero-cost
    # scatter path.
    free_writes = True

    # Recycled twin buffers (wall-clock only): twinning is the hottest
    # allocation site under write-heavy apps, and a retired twin is
    # always a full page, so buffers are interchangeable.  The pool is
    # created lazily per instance; the class attribute is only the
    # "never released yet" sentinel.
    _twin_pool = None

    # Reusable changed-word mask for diff creation (wall-clock only):
    # ``make_diff`` needs one bool per page word, and ``_serve_diff_fetch``
    # is the hottest diff site, so the buffer is recycled across calls —
    # the same lazy per-instance pattern as the twin pool.
    _diff_scratch = None

    @property
    def gc_record_threshold(self) -> int:
        return GC_RECORD_THRESHOLD

    def _make_proc_state(self) -> ProcState:
        return ProcState(
            vts=[0] * self.cluster.nprocs,
            store=IntervalStore(self.cluster.nprocs),
        )

    def _page_manager(self, page: int) -> int:
        return page % self.nprocs

    # ------------------------------------------------------------------
    # faults and data access
    # ------------------------------------------------------------------

    def ensure_read(self, proc: Processor, page_idx: int) -> Generator:
        state = self._state(proc)
        page = state.page(page_idx)
        if page.perm.allows_read():
            return
        proc.bump("read_faults")
        self.trace(proc, "read_fault", page=page_idx)
        yield from proc.busy(self.costs.page_fault, Category.PROTOCOL)
        yield from self._validate_page(proc, page_idx, page)
        self._set_perm(proc.pid, page_idx, page, Protection.READ)
        yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)
        yield from self._after_fault(proc, page_idx)

    def ensure_write(self, proc: Processor, page_idx: int) -> Generator:
        state = self._state(proc)
        page = state.page(page_idx)
        if page.perm.allows_write():
            return
        proc.bump("write_faults")
        self.trace(proc, "write_fault", page=page_idx)
        yield from proc.busy(self.costs.page_fault, Category.PROTOCOL)
        if not page.perm.allows_read():
            yield from self._validate_page(proc, page_idx, page)
        if page.twin is None:
            pool = self._twin_pool
            if pool:
                twin = pool.pop()
                np.copyto(twin, page.copy)
                page.twin = twin
            else:
                page.twin = page.copy.copy()
            proc.bump("twins_created")
            self.trace(proc, "twin", page=page_idx)
            yield from proc.busy(
                self.costs.twin_cost(self.space.page_size), Category.PROTOCOL
            )
        state.notices.add(page_idx)
        self._set_perm(proc.pid, page_idx, page, Protection.READ_WRITE)
        yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)

    def _prefetch_page(self, proc: Processor, page_idx: int) -> Generator:
        """Software prefetch: re-validate an invalidated unit to READ
        without the demand-fault kernel trap.  Units never touched by
        this processor (no base copy yet) are skipped — prefetch speeds
        up re-validation; cold first touches stay demand faults."""
        state = self._state(proc)
        page = state.page(page_idx)
        if page.perm.allows_read() or page.copy is None:
            return
        proc.bump("prefetches")
        self.trace(proc, "prefetch", page=page_idx)
        yield from self._validate_page(proc, page_idx, page)
        self._set_perm(proc.pid, page_idx, page, Protection.READ)
        yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)

    def page_data(self, proc: Processor, page_idx: int) -> np.ndarray:
        page = self._state(proc).page(page_idx)
        if not page.perm.allows_read() or page.copy is None:
            raise RuntimeError(
                f"p{proc.pid} touched page {page_idx} without a mapping"
            )
        return page.copy

    def apply_write(
        self, proc: Processor, page_idx: int, start: int, raw: np.ndarray
    ) -> Generator:
        page = self._state(proc).page(page_idx)
        if not page.perm.allows_write():
            raise RuntimeError(
                f"p{proc.pid} wrote page {page_idx} without permission"
            )
        page.copy[start : start + len(raw)] = raw
        return
        yield  # pragma: no cover - writes are local and free of protocol cost

    # ------------------------------------------------------------------
    # page validation (diff collection)
    # ------------------------------------------------------------------

    def _validate_page(
        self, proc: Processor, page_idx: int, page: TmkPage
    ) -> Generator:
        """Obtain a base copy if needed, then fetch and apply the diffs
        named by the pending write notices."""
        if page.copy is None:
            yield from self._fetch_base_copy(proc, page_idx, page)
        needed: Dict[int, int] = {}  # writer -> highest interval needed
        for writer, iid in page.pending:
            if writer == proc.pid:
                continue
            if iid <= page.covered_iid.get(writer, 0):
                continue
            needed[writer] = max(needed.get(writer, 0), iid)
        page.pending.clear()
        if not needed:
            return
        self.trace(proc, "diff_fetch", page=page_idx, writers=len(needed))
        one_sided = self.network.remote_reads
        # Request all writers' diffs concurrently, then collect replies.
        requests = []
        pulls = []
        for writer in sorted(needed):
            if one_sided:
                # On RDMA-class backends a writer publishes its cached
                # diffs in registered memory (GeNIMA-style descriptor
                # ring): when they already cover the asked interval,
                # pull them with a one-sided read — no writer CPU, no
                # round trip.  An interval still open in the writer's
                # twin needs the writer to *create* the diff, so that
                # writer falls back to the request/reply path.
                wd = self.procs[writer].diff_cache.get(page_idx)
                if wd is not None and wd.covered >= needed[writer]:
                    have = page.have_seq.get(writer, 0)
                    diffs = [
                        (seq, tag, diff)
                        for seq, tag, diff in wd.cache
                        if seq > have
                    ]
                    pulls.append((writer, diffs, wd.covered))
                    continue
            request = yield from self.messenger.post_request(
                proc,
                self.cluster.proc(writer),
                DIFF_FETCH,
                payload=(
                    page_idx,
                    page.have_seq.get(writer, 0),
                    needed[writer],
                ),
                size=16,
            )
            requests.append((writer, request))
        incoming = []
        for writer, diffs, covered in pulls:
            size = sum(d.encoded_size for _, _, d in diffs) + 16
            yield from self.rdma_read(
                proc, self.cluster.proc(writer).node.nid, size
            )
            page.covered_iid[writer] = max(
                page.covered_iid.get(writer, 0), covered
            )
            for seq, tag, diff in diffs:
                if seq <= page.have_seq.get(writer, 0):
                    continue
                incoming.append((tag, writer, seq, diff))
        for writer, request in requests:
            diffs, covered = yield from proc.wait(request.reply_event)
            page.covered_iid[writer] = max(
                page.covered_iid.get(writer, 0), covered
            )
            for seq, tag, diff in diffs:
                if seq <= page.have_seq.get(writer, 0):
                    continue
                incoming.append((tag, writer, seq, diff))
        # Apply in causal order with word-level versioning (see
        # TmkPage.lamport / word_tags).
        for tag, writer, seq, diff in sorted(incoming):
            page.have_seq[writer] = max(page.have_seq.get(writer, 0), seq)
            page.lamport = max(page.lamport, tag)
            if diff.is_empty:
                continue
            apply_cost = self.costs.diff_apply_base + (
                self.costs.diff_apply_per_kb * diff.dirty_bytes / 1024.0
            )
            yield from proc.busy(apply_cost, Category.PROTOCOL)
            targets = [page.copy]
            if page.twin is not None:
                targets.append(page.twin)
            apply_diff_versioned(
                targets, diff, page.tags_for(self.space.page_size), tag
            )
            proc.bump("diffs_applied")
            self.trace(
                proc, "diff_apply", page=page_idx, writer=writer, tag=tag
            )

    def _fetch_base_copy(
        self, proc: Processor, page_idx: int, page: TmkPage
    ) -> Generator:
        """First touch: fetch the page's base contents from its manager.

        The requester then brings the copy up to date by applying every
        diff named in its (complete, since it spans the current GC
        epoch) pending-notice list.
        """
        manager = self._page_manager(page_idx)
        if manager == proc.pid:
            page.copy = self._serve_page_fetch_source(
                self._state(proc), page_idx
            ).copy()
            return
        if self.network.remote_reads:
            # One-sided read of the manager's copy: wire time only, no
            # manager CPU.  The requester still pays one bus pass to
            # move the landed bytes into the working page.
            yield from self.rdma_read(
                proc,
                self.cluster.proc(manager).node.nid,
                self.space.page_size,
            )
            snapshot = self._serve_page_fetch_source(
                self.procs[manager], page_idx
            )
            yield from proc.busy(
                self.costs.memcpy_cost(self.space.page_size),
                Category.PROTOCOL,
            )
            page.copy = snapshot.copy()
            proc.bump("page_fetches")
            self.trace(proc, "page_fetch", page=page_idx, manager=manager)
            return
        snapshot = yield from self.messenger.request(
            proc,
            self.cluster.proc(manager),
            PAGE_FETCH,
            payload=page_idx,
            size=8,
        )
        # Copy from the message buffer into the working page.
        yield from proc.busy(
            self.costs.memcpy_cost(self.space.page_size), Category.PROTOCOL
        )
        page.copy = snapshot.copy()
        proc.bump("page_fetches")
        self.trace(proc, "page_fetch", page=page_idx, manager=manager)

    # ------------------------------------------------------------------
    # base-class hooks
    # ------------------------------------------------------------------

    def _note_remote_write(
        self, proc: Processor, writer: int, iid: int, page_idx: int
    ) -> float:
        state = self._state(proc)
        page = state.page(page_idx)
        page.pending.append((writer, iid))
        if page.perm is not Protection.NONE:
            self._set_perm(proc.pid, page_idx, page, Protection.NONE)
            self.trace(proc, "invalidate", page=page_idx)
            return self.costs.mprotect
        return 0.0

    def _serve_data(self, proc: Processor, request: Request) -> Generator:
        if request.kind == PAGE_FETCH:
            yield from self._serve_page_fetch(proc, request)
        elif request.kind == DIFF_FETCH:
            yield from self._serve_diff_fetch(proc, request)
        else:
            raise RuntimeError(f"treadmarks cannot serve {request.kind!r}")

    # ------------------------------------------------------------------
    # request service
    # ------------------------------------------------------------------

    def _serve_page_fetch(self, proc: Processor, request: Request) -> Generator:
        page_idx = request.payload
        # Reading the cold page is the first bus pass (the messenger
        # charges the transmit write).
        yield from proc.busy(
            0.5 * self.costs.memcpy_cost(self.space.page_size),
            Category.PROTOCOL,
        )
        snapshot = self._serve_page_fetch_source(
            self._state(proc), page_idx
        )
        yield from self.messenger.reply(
            proc, request, payload=snapshot, size=self.space.page_size
        )

    def _serve_page_fetch_source(self, state: ProcState, page_idx: int):
        """Post-GC base fetches must come from the manager's flushed
        copy; the original backing only covers the first epoch."""
        page = state.pages.get(page_idx)
        if page is not None and page.copy is not None:
            return page.copy
        return self.space.backing_page(page_idx)

    def _flush_twin(
        self,
        proc: Processor,
        page_idx: int,
        page: TmkPage,
        writer_diffs: WriterDiffs,
    ) -> Generator:
        """Diff the open twin into the cached diff list and retire it.

        Shared by the on-demand serve path (a DIFF_FETCH arrived) and
        the eager interval-close path used on one-sided backends.
        """
        scratch = self._diff_scratch
        if scratch is None:
            scratch = self._diff_scratch = np.empty(
                self.space.page_size // WORD, bool
            )
        diff = make_diff(page.twin, page.copy, scratch)
        dirty_fraction = diff.dirty_bytes / self.space.page_size
        yield from proc.busy(
            self.costs.diff_cost(self.space.page_size, dirty_fraction),
            Category.PROTOCOL,
        )
        writer_diffs.seq += 1
        page.lamport += 1
        writer_diffs.cache.append((writer_diffs.seq, page.lamport, diff))
        pool = self._twin_pool
        if pool is None:
            pool = self._twin_pool = []
        pool.append(page.twin)
        page.twin = None
        proc.bump("diffs_created")
        self.trace(
            proc, "diff_create", page=page_idx, bytes=diff.dirty_bytes
        )
        if page.perm is Protection.READ_WRITE:
            self._set_perm(proc.pid, page_idx, page, Protection.READ)
            yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)

    def _on_interval_closed(self, proc: Processor, pages) -> Generator:
        if not self.network.remote_reads:
            return
        # One-sided backends: eagerly diff written pages at interval
        # close, publishing the diffs in the (registered) cache so
        # peers pull them with one-sided reads instead of request/reply
        # — the GeNIMA-style restructuring that lets TreadMarks
        # actually exploit remote reads.  Adaptively: only pages some
        # peer has *already requested diffs for* (a WriterDiffs record
        # exists) are flushed — the first fetch of a page pays one
        # round trip, every later interval is pulled one-sided, and
        # unshared pages (or whole single-processor runs) never pay
        # for diffs nobody will read.
        state = self._state(proc)
        iid = state.vts[proc.pid]
        for page_idx in pages:
            writer_diffs = state.diff_cache.get(page_idx)
            if writer_diffs is None:
                continue
            page = state.page(page_idx)
            if page.twin is not None:
                yield from self._flush_twin(
                    proc, page_idx, page, writer_diffs
                )
            writer_diffs.covered = max(writer_diffs.covered, iid)

    def _serve_diff_fetch(self, proc: Processor, request: Request) -> Generator:
        page_idx, have_seq, need_iid = request.payload
        state = self._state(proc)
        writer_diffs = state.diff_cache.setdefault(page_idx, WriterDiffs())
        page = state.page(page_idx)
        if need_iid > writer_diffs.covered:
            if page.twin is not None:
                yield from self._flush_twin(
                    proc, page_idx, page, writer_diffs
                )
            # With no twin left, every write up to (at least) the asked
            # interval is represented in the cached diffs.
            writer_diffs.covered = max(writer_diffs.covered, need_iid)
        diffs = [
            (seq, tag, diff)
            for seq, tag, diff in writer_diffs.cache
            if seq > have_seq
        ]
        size = sum(d.encoded_size for _, _, d in diffs) + 16
        yield from self.messenger.reply(
            proc, request, payload=(diffs, writer_diffs.covered), size=size
        )

    # ------------------------------------------------------------------
    # garbage collection hooks
    # ------------------------------------------------------------------

    def _gc_flush_pages(self, proc: Processor) -> Generator:
        """Every processor (a) brings each page it caches fully up to
        date — fetching any outstanding diffs — and (b) validates every
        page it *manages* so future base fetches are complete without
        pre-GC diffs."""
        state = self._state(proc)
        for page_idx in range(self.space.n_pages):
            page = state.pages.get(page_idx)
            has_pending = page is not None and bool(page.pending)
            manages = self._page_manager(page_idx) == proc.pid
            if manages or (has_pending and page.copy is not None):
                yield from self.ensure_read(proc, page_idx)
            elif has_pending:
                # No local copy: the manager's flushed copy covers these
                # notices, so a future first touch needs no old diffs.
                page.pending.clear()

    def _gc_drop_caches(self, proc: Processor) -> Generator:
        # Drop diff payloads but keep per-page sequence counters and
        # coverage watermarks: readers hold ``have_seq`` values that must
        # stay monotonic across epochs.
        state = self._state(proc)
        for writer_diffs in state.diff_cache.values():
            writer_diffs.cache.clear()
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # cost modelling / warm start
    # ------------------------------------------------------------------

    def compute_factors(self, ws: WorkingSet):
        user = self.cache.total_factor(ws)
        total = self.cache.total_factor(ws, ws.twin, ws.twin_l2)
        return user, total, Category.PROTOCOL

    def prewarm(self) -> None:
        """Give every processor a valid copy of every page, modelling a
        long-running execution whose cold distribution has already been
        amortized."""
        for pid, state in self.procs.items():
            for page_idx in range(self.space.n_pages):
                page = state.page(page_idx)
                page.copy = self.space.backing_page(page_idx).copy()
                self._set_perm(pid, page_idx, page, Protection.READ)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        super().check_invariants()
        for pid, state in self.procs.items():
            for page_idx, page in state.pages.items():
                if page.perm is Protection.READ_WRITE and page.twin is None:
                    raise AssertionError(
                        f"p{pid}: page {page_idx} writable without a twin"
                    )
                if page.perm.allows_read() and page.copy is None:
                    raise AssertionError(
                        f"p{pid}: page {page_idx} readable without a copy"
                    )
