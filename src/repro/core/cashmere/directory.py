"""Cashmere's distributed page directory.

A directory entry is a set of eight 4-byte words, one per SMP node, each
holding presence bits for the node's four CPUs, the page's home node, a
first-touch bit, and exclusive-mode bits.  The directory is replicated on
every node: reads are local, updates are broadcast over the Memory
Channel.  The simulator keeps one authoritative copy and charges the
replication costs explicitly.

Past the paper's 8 nodes the all-node broadcast per update stops
scaling (on fabrics without hardware replication it costs one unicast
per node), so the directory can be **sharded** (PR 7): pages are
interleaved over ``n_shards`` segments, each anchored at a shard-home
node that keeps the authoritative words, and an update becomes a single
unicast to that node.  The shard map is deterministic (``page mod
n_shards``) so results are reproducible and cacheable; the resolved
shard count enters the result-cache key.  ``n_shards=1`` is the
paper's replicated-broadcast directory, bit-identical to the legacy
code.  Note that on the Memory Channel itself a unicast and a
broadcast cost the same (every write crosses the one reflective hub),
so sharding changes simulated results only on the point-to-point
fabrics (rdma) — exactly the scalability wall it addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class DirectoryEntry:
    """Authoritative sharing state of one page."""

    page: int
    sharers: Set[int] = field(default_factory=set)  # processor ids
    home_node: Optional[int] = None
    home_from_first_touch: bool = False
    exclusive_holder: Optional[int] = None
    never_exclusive: bool = False
    # Only used by the legacy weak-state protocol variant: a page with
    # any writer is "weak" and invalidated by every sharer at acquires.
    weak: bool = False

    @property
    def home_assigned(self) -> bool:
        return self.home_node is not None

    def others(self, pid: int) -> Set[int]:
        return self.sharers - {pid}


class Directory:
    """Lazy map page -> :class:`DirectoryEntry`, optionally sharded.

    With ``n_shards > 1`` the entries live in per-shard dicts under the
    deterministic interleave ``shard(page) = page % n_shards``; the
    protocol anchors each shard at a home node and unicasts updates
    there instead of broadcasting.  ``n_shards=1`` keeps the single
    legacy dict.
    """

    def __init__(self, n_shards: int = 1) -> None:
        if n_shards < 1:
            raise ValueError("directory needs at least one shard")
        self.n_shards = n_shards
        self._shards: List[Dict[int, DirectoryEntry]] = [
            {} for _ in range(n_shards)
        ]
        # The single-shard hot path keeps the legacy attribute alive:
        # one dict lookup, no modulo.
        self._entries: Dict[int, DirectoryEntry] = self._shards[0]

    def shard(self, page: int) -> int:
        """Deterministic shard index of ``page``."""
        return page % self.n_shards

    def entry(self, page: int) -> DirectoryEntry:
        table = (
            self._entries
            if self.n_shards == 1
            else self._shards[page % self.n_shards]
        )
        found = table.get(page)
        if found is None:
            found = DirectoryEntry(page)
            table[page] = found
        return found

    def known_entries(self) -> Dict[int, DirectoryEntry]:
        merged: Dict[int, DirectoryEntry] = {}
        for table in self._shards:
            merged.update(table)
        return merged

    def check(self) -> None:
        """Invariant check: exclusive holder must be the only sharer's
        candidate writer and must itself be a sharer."""
        for page, entry in self.known_entries().items():
            holder = entry.exclusive_holder
            if holder is not None and holder not in entry.sharers:
                raise AssertionError(
                    f"page {page}: exclusive holder {holder} is not a sharer"
                )
            if holder is not None and entry.never_exclusive:
                raise AssertionError(
                    f"page {page}: exclusive but flagged never-exclusive"
                )
