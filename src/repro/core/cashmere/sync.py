"""Cashmere synchronization primitives over Memory Channel remote writes.

Locks are an array of per-node words in MC space plus a local
test-and-set flag (Section 3.3.2): ~11 us uncontended.  Barriers are
tree-based with notifications posted through explicit MC words.  Flags
are single MC words observed via broadcast.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.config import CostModel
from repro.cluster.machine import Processor
from repro.cluster.network import MemoryChannel
from repro.sim import Engine, Event
from repro.stats import Category


class McLock:
    """An MC-array lock: deterministic FIFO grant among spinners."""

    def __init__(self, engine: Engine, network: MemoryChannel, costs: CostModel):
        self.engine = engine
        self.network = network
        self.costs = costs
        self.holder: Optional[int] = None
        self.waiters: Deque[Tuple[Processor, Event]] = deque()

    def acquire(self, proc: Processor):
        # Setting the array entry, waiting for loop-back, and reading the
        # whole array costs ~11 us even without contention.
        yield from proc.busy(self.costs.lock_mc, Category.PROTOCOL)
        self.network.write(proc.node.nid, 8)
        if self.holder is None:
            self.holder = proc.pid
            return
        granted = self.engine.event()
        self.waiters.append((proc, granted))
        yield from proc.wait(granted, Category.COMM_WAIT)
        # Observing the grant and re-checking the array costs one more
        # round of the acquire sequence (the releaser reserved the lock
        # for us, so self.holder is already set).
        yield from proc.busy(self.costs.lock_mc, Category.PROTOCOL)
        assert self.holder == proc.pid

    def release(self, proc: Processor):
        if self.holder != proc.pid:
            raise RuntimeError(
                f"p{proc.pid} releasing lock held by {self.holder}"
            )
        self.network.write(proc.node.nid, 8)
        yield from proc.busy(2.0, Category.PROTOCOL)  # clear array entry
        if self.waiters:
            nxt_proc, granted = self.waiters.popleft()
            self.holder = nxt_proc.pid  # reserve: no barging past waiters
            visible = self.engine.now + self.costs.mc_latency
            self.engine.succeed_at(visible, granted)
        else:
            self.holder = None


class TreeBarrier:
    """Tree barrier: children notify parents, root broadcasts release.

    ``fan_in`` is the tree arity.  The paper's implementation uses a
    binary tree (``fan_in=2``); wider trees trade more per-level flag
    checks (each parent spins over ``fan_in`` arrival words) for fewer
    levels, which wins past the paper's 32 processors — the automatic
    policy in :attr:`repro.config.RunConfig.resolved_barrier_fanin`
    picks 4 there.  At ``fan_in=2`` the cost formula reduces exactly
    to the legacy binary-tree expression, keeping goldens intact.
    """

    def __init__(
        self,
        engine: Engine,
        network: MemoryChannel,
        costs: CostModel,
        nprocs: int,
        fan_in: int = 2,
    ):
        if fan_in < 2:
            raise ValueError("tree barrier fan-in must be >= 2")
        self.engine = engine
        self.network = network
        self.costs = costs
        self.nprocs = nprocs
        self.fan_in = fan_in
        # Tree depth: smallest d with fan_in**d >= nprocs (integer
        # arithmetic — bit-exact with the legacy ceil(log2) at arity 2).
        depth = 1
        width = fan_in
        while width < max(nprocs, 2):
            width *= fan_in
            depth += 1
        self._depth = depth
        self._arrived = 0
        self._release: Event = engine.event()
        self._episode = 0

    def arrive_and_wait(self, proc: Processor):
        episode = self._episode
        release = self._release
        self._arrived += 1
        # Posting the arrival word to the parent.
        self.network.write(proc.node.nid, 8)
        yield from proc.busy(2.0, Category.PROTOCOL)
        if self._arrived == self.nprocs:
            # Last arrival: notifications percolate up the tree (each
            # parent spins on its children's arrival words, costing a
            # round of MC latency plus one flag check per child per
            # level), then the root's release word is broadcast down.
            per_level = (
                2.0 * (self.costs.mc_latency + 1.0) + 4.0 * self.fan_in
            )
            fan_in = self._depth * per_level
            fan_out = self.costs.mc_latency + 2.0
            done_at = self.engine.now + fan_in + fan_out
            self._arrived = 0
            self._episode += 1
            self._release = self.engine.event()
            self.engine.succeed_at(done_at, release)
        yield from proc.wait(release, Category.COMM_WAIT)
        assert self._episode > episode


class McFlag:
    """A one-shot flag: an MC word written once, spun on locally."""

    def __init__(self, engine: Engine, network: MemoryChannel, costs: CostModel):
        self.engine = engine
        self.network = network
        self.costs = costs
        self.event: Event = engine.event()

    def post(self, proc: Processor):
        visible = self.network.write(proc.node.nid, 8, broadcast=True)
        yield from proc.busy(1.0, Category.PROTOCOL)
        event = self.event
        if not event.triggered:
            self.engine.succeed_at(max(visible, self.engine.now), event)

    def wait(self, proc: Processor):
        yield from proc.wait(self.event, Category.COMM_WAIT)


class SyncTable:
    """Lazily created locks, barriers, and flags keyed by id."""

    def __init__(
        self,
        engine: Engine,
        network: MemoryChannel,
        costs: CostModel,
        nprocs: int,
        barrier_fanin: int = 2,
    ):
        self.engine = engine
        self.network = network
        self.costs = costs
        self.nprocs = nprocs
        self.barrier_fanin = barrier_fanin
        self.locks: Dict[int, McLock] = {}
        self.barriers: Dict[int, TreeBarrier] = {}
        self.flags: Dict[int, McFlag] = {}

    def lock(self, lock_id: int) -> McLock:
        found = self.locks.get(lock_id)
        if found is None:
            found = McLock(self.engine, self.network, self.costs)
            self.locks[lock_id] = found
        return found

    def barrier(self, barrier_id: int) -> TreeBarrier:
        found = self.barriers.get(barrier_id)
        if found is None:
            found = TreeBarrier(
                self.engine,
                self.network,
                self.costs,
                self.nprocs,
                self.barrier_fanin,
            )
            self.barriers[barrier_id] = found
        return found

    def flag(self, flag_id: int) -> McFlag:
        found = self.flags.get(flag_id)
        if found is None:
            found = McFlag(self.engine, self.network, self.costs)
            self.flags[flag_id] = found
        return found
