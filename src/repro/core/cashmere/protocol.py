"""The Cashmere coherence protocol (Section 2.1 / 3.3 of the paper).

Key mechanics, all reproduced here:

* a replicated page directory updated by Memory Channel broadcast;
* home nodes assigned by first touch after initialization;
* every shared write *doubled* to the home node's copy (write-through),
  so the home copy is always current and concurrent writers merge at
  word granularity;
* per-processor write-notice and no-longer-exclusive (NLE) lists in MC
  space;
* *exclusive mode*: a page whose releaser finds no other sharers stops
  paying write faults and notices until someone else touches it;
* page data moves by asking a processor at the home node to write the
  page through the Memory Channel (no remote reads on MC1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

import numpy as np

from repro.config import RunConfig, WorkingSet
from repro.cluster.machine import Cluster, Processor
from repro.cluster.messaging import Messenger, Request
from repro.cluster.network import MemoryChannel
from repro.cluster.cache import CacheModel
from repro.core.base import DsmProtocol
from repro.core.cashmere.directory import Directory, DirectoryEntry
from repro.core.fastpath import PermBitmaps
from repro.core.cashmere.lists import NoticeList
from repro.core.cashmere.sync import SyncTable
from repro.memory import policy as sharing_policy
from repro.memory.address_space import AddressSpace
from repro.memory.page import Protection
from repro.sim import Engine
from repro.stats import Category, StatsBoard

PAGE_FETCH = "csm_page_fetch"


@dataclass
class PageEntry:
    """One processor's mapping of one page."""

    perm: Protection = Protection.NONE
    copy: Optional[np.ndarray] = None  # None while mapped to the home copy


@dataclass
class ProcState:
    """Cashmere per-processor protocol state."""

    write_notices: NoticeList = field(default_factory=NoticeList)
    nle: NoticeList = field(default_factory=NoticeList)
    dirty: list = field(default_factory=list)
    flush_due: float = 0.0  # write-through drain deadline
    # Last fault-time per page (memory-pressure eviction, PR 7): only
    # maintained when ``node_mem_pages`` is set — a "cold" copy is the
    # one whose last *fault* is oldest (hot hits are event-free and are
    # deliberately not instrumented).
    touch: Dict[int, float] = field(default_factory=dict)


class CashmereProtocol(DsmProtocol):
    """Directory-based multi-writer release consistency over MC."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        network: MemoryChannel,
        messenger: Messenger,
        space: AddressSpace,
        stats: StatsBoard,
        run_cfg: RunConfig,
    ):
        self.engine = engine
        self.cluster = cluster
        self.network = network
        self.messenger = messenger
        self.space = space
        self.stats = stats
        self.cfg = run_cfg
        self.costs = run_cfg.costs
        self.cache = CacheModel(self.costs)
        n_shards = run_cfg.resolved_dir_shards
        self.directory = Directory(n_shards)
        # Shard-home map (PR 7): shard s is anchored at the s-th active
        # node (round-robin).  None = legacy replicated directory with
        # broadcast updates.
        if n_shards > 1:
            active = [n.nid for n in cluster.nodes if n.processors]
            self._shard_homes: Optional[list] = [
                active[s % len(active)] for s in range(n_shards)
            ]
        else:
            self._shard_homes = None
        # Per-node page-copy budget (PR 7): None = unlimited.
        self._mem_limit = run_cfg.node_mem_pages
        self.sync = SyncTable(
            engine,
            network,
            self.costs,
            cluster.nprocs,
            run_cfg.resolved_barrier_fanin,
        )
        self.procs: Dict[int, ProcState] = {
            p.pid: ProcState() for p in cluster.procs
        }
        self.entries: Dict[int, Dict[int, PageEntry]] = {
            p.pid: {} for p in cluster.procs
        }
        self.master: Dict[int, np.ndarray] = {}
        self.perms = PermBitmaps(cluster.nprocs, space.n_pages)
        self._next_home_rr = 0  # used when first-touch homing is disabled
        self.prefetcher = run_cfg.make_prefetcher()
        # Dynamic re-homing state (docs/POLICIES.md): per-unit remote
        # fetch counts by node since the unit's last (re-)homing, and
        # per-unit migration counts bounding ping-pong.
        self._dynamic_homing = run_cfg.resolved_homing == "dynamic"
        self._fetch_counts: Dict[int, Dict[int, int]] = {}
        self._migrations: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # page table helpers
    # ------------------------------------------------------------------

    def _entry(self, pid: int, page: int) -> PageEntry:
        table = self.entries[pid]
        found = table.get(page)
        if found is None:
            found = PageEntry()
            table[page] = found
        return found

    def _master_page(self, page: int) -> np.ndarray:
        data = self.master.get(page)
        if data is None:
            data = self.space.backing_page(page).copy()
            self.master[page] = data
        return data

    def _is_home(self, proc: Processor, entry: DirectoryEntry) -> bool:
        return entry.home_node == proc.node.nid

    # -- hit path --------------------------------------------------------
    #
    # Specialized over the base implementation: the bitmap has already
    # vouched for read permission, so a hot read goes straight to the
    # page-table entry (home processors read the master copy they alias).
    # There is no ``fast_write``: every Cashmere shared write runs the
    # doubled-write sequence even when no fault is taken.

    def fast_read(self, proc, space, offset, nbytes):
        if nbytes == 0:
            return np.empty(0, np.uint8)
        pid = proc.pid
        ps = space.page_size
        lo = offset // ps
        start = offset - lo * ps
        perms = self.perms
        if start + nbytes <= ps:  # single page: the common case
            try:
                readable = perms.r_rows[pid][lo]
            except IndexError:  # page past the bitmap: grow (tests only)
                perms.ensure_cap(lo + 1)
                readable = perms.r_rows[pid][lo]
            if not readable:
                return None
            data = self.entries[pid][lo].copy
            if data is None:
                data = self._master_page(lo)
            return data[start : start + nbytes].copy()
        hi = (offset + nbytes - 1) // ps + 1
        perms.ensure_cap(hi)
        row = perms.r_rows[pid]
        for page in range(lo, hi):
            if not row[page]:
                return None
        table = self.entries[pid]
        out = np.empty(nbytes, np.uint8)
        end = offset + nbytes
        pos = 0
        addr = offset
        for page in range(lo, hi):
            start = addr - page * ps
            length = min(ps - start, end - addr)
            data = table[page].copy
            if data is None:
                data = self._master_page(page)
            out[pos : pos + length] = data[start : start + length]
            pos += length
            addr += length
        return out

    def fast_gather(self, proc, space, segs, total):
        pid = proc.pid
        ps = space.page_size
        perms = self.perms
        row = perms.r_rows[pid]
        try:
            for offset, nbytes in segs:
                end = offset + nbytes
                for page in range(offset // ps, (end - 1) // ps + 1):
                    if not row[page]:
                        return None
        except IndexError:  # page past the bitmap: grow (tests only)
            perms.ensure_cap(max(o + n - 1 for o, n in segs) // ps + 1)
            return self.fast_gather(proc, space, segs, total)
        table = self.entries[pid]
        out = np.empty(total, np.uint8)
        pos = 0
        for offset, nbytes in segs:
            end = offset + nbytes
            addr = offset
            while addr < end:
                page = addr // ps
                start = addr - page * ps
                length = min(ps - start, end - addr)
                data = table[page].copy
                if data is None:
                    data = self._master_page(page)
                out[pos : pos + length] = data[start : start + length]
                pos += length
                addr += length
        return out

    def region_gather(self, proc, space, region):
        pid = proc.pid
        if not self.perms.read_ready_pages(pid, region.span_pages()):
            return None
        table = self.entries[pid]
        out = np.empty(region.nbytes, np.uint8)
        pos = 0
        for page, start, length in region.page_spans():
            data = table[page].copy
            if data is None:
                data = self._master_page(page)
            out[pos : pos + length] = data[start : start + length]
            pos += length
        return out

    # ------------------------------------------------------------------
    # directory cost helpers
    # ------------------------------------------------------------------

    def _dir_update(
        self, proc: Processor, locked: bool = False, page: int = -1
    ) -> Generator:
        """Modify a directory word and propagate the update.

        Legacy (unsharded) directory: the word is replicated on every
        node, so the update is broadcast.  Sharded directory (PR 7):
        the authoritative word lives only at the page's shard-home
        node, so the update is one unicast there — the same single hub
        crossing on the Memory Channel, but one transfer instead of
        ``n_nodes - 1`` on point-to-point fabrics.
        """
        cost = self.costs.dir_modify_locked if locked else self.costs.dir_modify
        yield from proc.busy(cost, Category.PROTOCOL)
        homes = self._shard_homes
        if homes is None or page < 0:
            self.network.write(proc.node.nid, 8, broadcast=True)
        else:
            self.network.write(
                proc.node.nid,
                8,
                dst_node=homes[self.directory.shard(page)],
            )

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------

    def ensure_read(self, proc: Processor, page: int) -> Generator:
        entry = self._entry(proc.pid, page)
        if entry.perm.allows_read():
            return
        proc.bump("read_faults")
        self.trace(proc, "read_fault", page=page)
        yield from proc.busy(self.costs.page_fault, Category.PROTOCOL)
        yield from self._validate_page(proc, page, entry)
        self._set_perm(proc.pid, page, entry, Protection.READ)
        yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)
        yield from self._after_fault(proc, page)

    def ensure_write(self, proc: Processor, page: int) -> Generator:
        entry = self._entry(proc.pid, page)
        if entry.perm.allows_write():
            return
        proc.bump("write_faults")
        self.trace(proc, "write_fault", page=page)
        yield from proc.busy(self.costs.page_fault, Category.PROTOCOL)
        if not entry.perm.allows_read():
            yield from self._validate_page(proc, page, entry)
        state = self.procs[proc.pid]
        dir_entry = self.directory.entry(page)
        if self.cfg.weak_state:
            # Legacy protocol: the first write moves the page to the
            # weak state; no per-interval bookkeeping after that.
            if not dir_entry.weak:
                dir_entry.weak = True
                yield from self._dir_update(proc, page=page)
        elif dir_entry.exclusive_holder != proc.pid:
            state.dirty.append(page)
        self._set_perm(proc.pid, page, entry, Protection.READ_WRITE)
        yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)

    def _prefetch_page(self, proc: Processor, page: int) -> Generator:
        """Software prefetch: validate ``page`` to READ at ``proc``
        exactly like a read fault, minus the demand-fault kernel trap
        (the win the user-level-DSM prefetch literature reports).

        Re-validation only: units this processor never mapped are
        skipped (first touches stay demand faults, so prefetch never
        perturbs placement or joins sharing sets speculatively), and a
        unit held exclusively by another processor is never prefetched
        (breaking its exclusive mode would cost the *owner* faults and
        notices to save the prefetcher one trap)."""
        entry = self.entries[proc.pid].get(page)
        if entry is None or entry.perm.allows_read():
            return
        dir_entry = self.directory.entry(page)
        if not dir_entry.home_assigned:
            return
        holder = dir_entry.exclusive_holder
        if holder is not None and holder != proc.pid:
            return
        proc.bump("prefetches")
        self.trace(proc, "prefetch", page=page)
        yield from self._validate_page(proc, page, entry)
        self._set_perm(proc.pid, page, entry, Protection.READ)
        yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)

    def _validate_page(
        self, proc: Processor, page: int, entry: PageEntry
    ) -> Generator:
        """The common read/write fault path: join the sharing set, assign
        the home if needed, break exclusivity, and obtain the data."""
        dir_entry = self.directory.entry(page)
        dir_entry.sharers.add(proc.pid)
        if self._mem_limit is not None:
            self.procs[proc.pid].touch[page] = self.engine.now
        yield from self._dir_update(proc, page=page)
        if not dir_entry.home_assigned:
            yield from self._assign_home(proc, dir_entry)
        holder = dir_entry.exclusive_holder
        if holder is not None and holder != proc.pid:
            # Former exclusive sharer must learn the page is shared again:
            # append a descriptor to its NLE list (a cluster-wide-locked
            # list in MC space).
            dir_entry.exclusive_holder = None
            yield from proc.busy(self.costs.lock_mc, Category.PROTOCOL)
            if self.procs[holder].nle.append(page):
                self.network.write(
                    proc.node.nid, self.costs.write_notice_bytes
                )
            yield from self._dir_update(proc, page=page)
        yield from self._fetch_data(proc, page, entry, dir_entry)

    def _assign_home(
        self, proc: Processor, dir_entry: DirectoryEntry
    ) -> Generator:
        """Home assignment per the run's ``homing`` policy: first-touch
        (the paper), round-robin over active nodes in assignment order,
        or dynamic (first-touch now, re-homed later on a remote-fetch
        majority — see :meth:`_maybe_migrate_home`)."""
        if self.cfg.resolved_homing == "round-robin":
            active = [n.nid for n in self.cluster.nodes if n.processors]
            home = active[self._next_home_rr % len(active)]
            self._next_home_rr += 1
            first_touch = False
        else:  # first-touch and dynamic both start at the toucher's node
            home = proc.node.nid
            first_touch = True
        dir_entry.home_node = home
        dir_entry.home_from_first_touch = first_touch
        self.trace(proc, "home_assigned", page=dir_entry.page, home=home)
        # Asserting home ownership takes the directory entry lock.
        yield from self._dir_update(proc, locked=True, page=dir_entry.page)
        self._master_page(dir_entry.page)

    def _fetch_data(
        self,
        proc: Processor,
        page: int,
        entry: PageEntry,
        dir_entry: DirectoryEntry,
    ) -> Generator:
        master = self._master_page(page)
        if self._is_home(proc, dir_entry):
            entry.copy = None  # maps the home copy directly
            return
        if entry.copy is None:
            entry.copy = np.empty(self.space.page_size, np.uint8)
        if self.network.remote_reads:
            # The backend has real one-sided reads (RDMA): the page
            # streams straight out of the home node's memory, no remote
            # CPU, no request/reply (see docs/NETWORKS.md).
            yield from self.rdma_read(
                proc, dir_entry.home_node, self.space.page_size
            )
            entry.copy[:] = master
            proc.bump("page_transfers")
        elif self.cfg.remote_reads:
            # Hypothetical hardware remote reads (Section 3.2): the page
            # streams from the home node's memory with no remote CPU
            # involvement, crossing each bus exactly once.
            done = self.network.write(dir_entry.home_node, self.space.page_size)
            arrived = self.engine.event()
            self.engine.succeed_at(done, arrived)
            yield from proc.wait(arrived, Category.COMM_WAIT)
            entry.copy[:] = master
            proc.bump("page_transfers")
        else:
            # Ask a processor at the home node to write us the page (MC
            # has no remote reads).  The reply lands by DMA in the
            # receive-mapped local copy, so the requester pays no extra
            # memcpy (Section 3.3: only the *home* moves the data across
            # its bus twice).
            target = self.cluster.nodes[dir_entry.home_node].request_target()
            snapshot = yield from self.messenger.request(
                proc, target, PAGE_FETCH, payload=page, size=0
            )
            entry.copy[:] = snapshot
            proc.bump("page_transfers")
        self.trace(proc, "page_transfer", page=page, home=dir_entry.home_node)
        if self._dynamic_homing:
            yield from self._maybe_migrate_home(proc, page, entry, dir_entry)

    def _maybe_migrate_home(
        self,
        proc: Processor,
        page: int,
        entry: PageEntry,
        dir_entry: DirectoryEntry,
    ) -> Generator:
        """Dynamic homing: re-home ``page`` to a node that establishes a
        remote-fetch majority.

        Every remote fetch bumps the fetching node's counter; when one
        node reaches ``MIGRATE_AFTER`` fetches since the unit's last
        (re-)homing — strictly more than any other node over the same
        window — the home moves there.  The move updates the directory
        under the entry lock (the same charge as asserting first touch)
        and materializes private copies for processors that were
        aliasing the old home mapping; the migrating processor's fresh
        copy becomes the new home alias.  ``MIGRATE_LIMIT`` bounds
        ping-pong.  Yields nothing unless a migration happens.
        """
        counts = self._fetch_counts.setdefault(page, {})
        nid = proc.node.nid
        counts[nid] = counts.get(nid, 0) + 1
        if self._migrations.get(page, 0) >= sharing_policy.MIGRATE_LIMIT:
            return
        mine = counts[nid]
        if mine < sharing_policy.MIGRATE_AFTER:
            return
        if any(c >= mine for n, c in counts.items() if n != nid):
            return
        old_home = dir_entry.home_node
        master = self._master_page(page)
        for peer in self.cluster.nodes[old_home].processors:
            peer_entry = self.entries[peer.pid].get(page)
            if (
                peer_entry is not None
                and peer_entry.perm is not Protection.NONE
                and peer_entry.copy is None
            ):
                peer_entry.copy = master.copy()
        entry.copy = None
        dir_entry.home_node = nid
        dir_entry.home_from_first_touch = False
        self._migrations[page] = self._migrations.get(page, 0) + 1
        self._fetch_counts[page] = {}
        proc.bump("home_migrations")
        self.trace(
            proc, "home_migrated", page=page, home=nid, old=old_home
        )
        yield from self._dir_update(proc, locked=True, page=page)

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------

    def page_data(self, proc: Processor, page: int) -> np.ndarray:
        entry = self._entry(proc.pid, page)
        if not entry.perm.allows_read():
            raise RuntimeError(
                f"p{proc.pid} touched page {page} without a mapping"
            )
        if entry.copy is None:
            return self._master_page(page)
        return entry.copy

    def apply_write(
        self, proc: Processor, page: int, start: int, raw: np.ndarray
    ) -> Generator:
        entry = self._entry(proc.pid, page)
        if not entry.perm.allows_write():
            raise RuntimeError(
                f"p{proc.pid} wrote page {page} without write permission"
            )
        local = self.page_data(proc, page)
        local[start : start + len(raw)] = raw
        master = self._master_page(page)
        remote_home = local is not master
        if remote_home:
            master[start : start + len(raw)] = raw
        # The doubled-write instruction sequence runs for every shared
        # write, local or remote (Section 3.3.1).
        n_words = max(1, len(raw) // 8)
        yield from proc.busy(
            n_words * self.costs.write_double, Category.WDOUBLE
        )
        if remote_home and not self.cfg.write_double_dummy:
            # Write-through traffic to the home node; releases must wait
            # for it to drain.
            done = self.network.write(proc.node.nid, len(raw))
            state = self.procs[proc.pid]
            state.flush_due = max(state.flush_due, done)
            proc.bump("write_through_bytes", len(raw))

    def ensure_write_span(
        self, proc: Processor, spans, raw: np.ndarray
    ) -> Generator:
        """Write ``raw`` across ``spans``, faulting cold pages.

        Specialized over the base implementation: Cashmere runs the
        doubled-write sequence on *every* shared write, so this is the
        single hottest generator in full runs (every ``gauss``/``sor``
        row update lands here).  The per-page ``apply_write`` body and
        its ``busy`` occupancy are inlined — same operations, same
        single bare-delay yield per page, two generator frames fewer on
        every resume.  Event order is identical to the base loop.
        """
        perms = self.perms
        write_double = self.costs.write_double
        dummy = self.cfg.write_double_dummy
        pid = proc.pid
        table = self.entries[pid]
        masters = self.master
        state = self.procs[pid]
        network = self.network
        nid = proc.node.nid
        charge = proc.charge
        read_write = Protection.READ_WRITE
        pos = 0
        for page, start, length in spans:
            # The bitmap row is re-fetched each iteration: a fault (or
            # another processor's work during the occupancy delay) may
            # grow the bitmap and replace the row views.
            if perms is not None:
                try:
                    writable = perms.w_rows[pid][page]
                except IndexError:
                    perms.ensure_cap(page + 1)
                    writable = perms.w_rows[pid][page]
            else:
                writable = False
            if not writable:
                yield from self.ensure_write(proc, page)
            entry = table.get(page)
            if entry is None:
                entry = self._entry(pid, page)
            if entry.perm is not read_write:
                raise RuntimeError(
                    f"p{pid} wrote page {page} without write permission"
                )
            piece = raw[pos : pos + length]
            master = masters.get(page)
            if master is None:
                master = self._master_page(page)
            local = entry.copy
            if local is None:
                local = master
                remote_home = False
            else:
                remote_home = local is not master
            local[start : start + length] = piece
            if remote_home:
                master[start : start + length] = piece
            n_words = length >> 3
            us = (n_words if n_words else 1) * write_double
            if us > 0:
                yield us  # the doubled-write occupancy, sans frames
                charge(Category.WDOUBLE, us)
            if remote_home and not dummy:
                done = network.write(nid, length)
                if done > state.flush_due:
                    state.flush_due = done
                proc.bump("write_through_bytes", length)
            pos += length

    # ------------------------------------------------------------------
    # release / acquire processing
    # ------------------------------------------------------------------

    def _process_release(self, proc: Processor) -> Generator:
        state = self.procs[proc.pid]
        # A release cannot complete before its write-through has been
        # applied at the home nodes.
        if state.flush_due > self.engine.now:
            flush_start = self.engine.now
            done = self.engine.event()
            self.engine.succeed_at(state.flush_due, done)
            yield from proc.wait(done, Category.COMM_WAIT)
            self.trace(
                proc, "write_flush", dur=self.engine.now - flush_start
            )
        if self.cfg.weak_state:
            return  # the legacy protocol sends no write notices
        for page in state.dirty:
            yield from self._publish_page(proc, page, from_nle=False)
        state.dirty.clear()
        for page in list(state.nle.drain()):
            yield from self._publish_page(proc, page, from_nle=True)

    def _publish_page(
        self, proc: Processor, page: int, from_nle: bool
    ) -> Generator:
        dir_entry = self.directory.entry(page)
        entry = self._entry(proc.pid, page)
        if from_nle:
            dir_entry.never_exclusive = True
        others = dir_entry.others(proc.pid)
        may_go_exclusive = (
            self.cfg.exclusive_mode
            and not from_nle
            and not dir_entry.never_exclusive
        )
        if not others and may_go_exclusive:
            dir_entry.exclusive_holder = proc.pid
            self.trace(proc, "exclusive_enter", page=page)
            yield from self._dir_update(proc, page=page)
            return  # keeps read/write permission: no more faults/notices
        for other in sorted(others):
            yield from proc.busy(self.costs.lock_mc, Category.PROTOCOL)
            if self.procs[other].write_notices.append(page):
                self.network.write(
                    proc.node.nid, self.costs.write_notice_bytes
                )
                proc.bump("write_notices_sent")
                self.trace(proc, "write_notice", page=page, to=other)
        if entry.perm is Protection.READ_WRITE:
            self._set_perm(proc.pid, page, entry, Protection.READ)
            yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)

    def _process_acquire(self, proc: Processor) -> Generator:
        state = self.procs[proc.pid]
        if self.cfg.weak_state:
            # Legacy protocol: optimistically assume every weak page was
            # modified during the interval; invalidate them all.
            for page, entry in self.entries[proc.pid].items():
                if entry.perm is Protection.NONE:
                    continue
                yield from proc.busy(0.5, Category.PROTOCOL)  # dir check
                dir_entry = self.directory.entry(page)
                if not dir_entry.weak:
                    continue
                dir_entry.sharers.discard(proc.pid)
                yield from self._dir_update(proc, page=page)
                self._set_perm(proc.pid, page, entry, Protection.NONE)
                yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)
            return
        for page in list(state.write_notices.drain()):
            dir_entry = self.directory.entry(page)
            dir_entry.sharers.discard(proc.pid)
            yield from self._dir_update(proc, page=page)
            entry = self._entry(proc.pid, page)
            if entry.perm is not Protection.NONE:
                self._set_perm(proc.pid, page, entry, Protection.NONE)
                self.trace(proc, "invalidate", page=page)
                yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)

    # ------------------------------------------------------------------
    # synchronization API
    # ------------------------------------------------------------------

    def lock_acquire(self, proc: Processor, lock_id: int) -> Generator:
        yield from self.sync.lock(lock_id).acquire(proc)
        yield from self._process_acquire(proc)

    def lock_release(self, proc: Processor, lock_id: int) -> Generator:
        yield from self._process_release(proc)
        yield from self.sync.lock(lock_id).release(proc)

    def barrier(self, proc: Processor, barrier_id: int) -> Generator:
        yield from self._process_release(proc)
        self.trace(proc, "barrier_arrive", barrier=barrier_id)
        yield from self.sync.barrier(barrier_id).arrive_and_wait(proc)
        yield from self._process_acquire(proc)
        if self._mem_limit is not None:
            yield from self._evict_cold_copies(proc)

    # ------------------------------------------------------------------
    # memory pressure (PR 7)
    # ------------------------------------------------------------------

    def _node_copy_pages(self, nid: int):
        """(pid, page, last_touch) of every resident remote copy held
        by the node's processors (home-mapped pages occupy no frame)."""
        resident = []
        for peer in self.cluster.nodes[nid].processors:
            touch = self.procs[peer.pid].touch
            for page, entry in self.entries[peer.pid].items():
                if entry.perm is Protection.NONE or entry.copy is None:
                    continue
                resident.append((peer.pid, page, touch.get(page, 0.0)))
        return resident

    def _evict_cold_copies(self, proc: Processor) -> Generator:
        """Enforce the per-node page-copy budget at a barrier.

        The paper's machines never paged, so the legacy simulator keeps
        every copy forever; at 256+ processors with full-size inputs
        the aggregate copy footprint would exceed any real node.  With
        ``node_mem_pages`` set, each processor leaving a barrier checks
        its node's residency and drops its own **coldest** read-only
        copies (oldest last fault first; exclusive and writable pages
        are pinned — they are the working set) until the node fits.
        Each eviction is a normal unmap: leave the sharing set, post
        the directory update, mprotect to NONE — so later re-reads
        fault and re-fetch, exactly like a first touch.
        """
        resident = self._node_copy_pages(proc.node.nid)
        excess = len(resident) - self._mem_limit
        if excess <= 0:
            return
        pid = proc.pid
        table = self.entries[pid]
        mine = sorted(
            (
                (when, page)
                for owner, page, when in resident
                if owner == pid
                and table[page].perm is Protection.READ
            ),
        )
        state = self.procs[pid]
        for when, page in mine[:excess]:
            entry = table[page]
            dir_entry = self.directory.entry(page)
            dir_entry.sharers.discard(pid)
            yield from self._dir_update(proc, page=page)
            self._set_perm(pid, page, entry, Protection.NONE)
            entry.copy = None  # release the frame
            state.touch.pop(page, None)
            proc.bump("copy_evictions")
            self.trace(proc, "evict", page=page)
            yield from proc.busy(self.costs.mprotect, Category.PROTOCOL)

    def flag_set(self, proc: Processor, flag_id: int) -> Generator:
        yield from self._process_release(proc)
        yield from self.sync.flag(flag_id).post(proc)

    def flag_wait(self, proc: Processor, flag_id: int) -> Generator:
        yield from self.sync.flag(flag_id).wait(proc)
        yield from self._process_acquire(proc)

    # ------------------------------------------------------------------
    # remote request service
    # ------------------------------------------------------------------

    def serve(self, proc: Processor, request: Request) -> Generator:
        if request.kind != PAGE_FETCH:
            raise RuntimeError(f"cashmere cannot serve {request.kind!r}")
        page = request.payload
        # Reading the cold page from memory is the first of the two bus
        # passes; the messenger charges the transmit-region write.
        yield from proc.busy(
            0.5 * self.costs.memcpy_cost(self.space.page_size),
            Category.PROTOCOL,
        )
        snapshot = self._master_page(page).copy()
        yield from self.messenger.reply(
            proc, request, payload=snapshot, size=self.space.page_size
        )

    # ------------------------------------------------------------------
    # cost modelling
    # ------------------------------------------------------------------

    def compute_factors(self, ws: WorkingSet):
        if self.cfg.write_double_dummy:
            # The paper's diagnostic: double every write to one local
            # dummy address, removing the cache-footprint effect while
            # keeping the doubled-instruction overhead.
            extra_l1 = extra_l2 = 0
        else:
            extra_l1, extra_l2 = ws.doubled, ws.doubled_l2
        user = self.cache.total_factor(ws)
        total = self.cache.total_factor(ws, extra_l1, extra_l2)
        return user, total, Category.WDOUBLE

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def _perm_entries(self, pid: int):
        return (
            (page, entry.perm) for page, entry in self.entries[pid].items()
        )

    def check_invariants(self) -> None:
        self.directory.check()
        self.check_perm_bitmaps()
        for pid, table in self.entries.items():
            for page, entry in table.items():
                dir_entry = self.directory.entry(page)
                if entry.perm is not Protection.NONE:
                    if pid not in dir_entry.sharers:
                        raise AssertionError(
                            f"p{pid} maps page {page} but is not a sharer"
                        )
                if entry.perm is Protection.READ_WRITE:
                    holder = dir_entry.exclusive_holder
                    if holder is not None and holder != pid:
                        raise AssertionError(
                            f"page {page}: p{pid} writable while exclusive "
                            f"to p{holder}"
                        )
