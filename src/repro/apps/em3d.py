"""Em3d: electromagnetic wave propagation in 3D (paper Section 4.2).

"The major data structure is an array that contains the set of magnetic
and electric nodes.  These are equally distributed among the processors
in the system.  For each phase in the computation, each processor
updates the electromagnetic potential of its nodes based on the
potential of neighboring nodes...  the standard input assumes that nodes
that belong to a processor have dependencies only on nodes that belong
to that processor or neighboring processors.  Processors use barriers to
synchronize between computational phases."

The dependency graph here follows the standard input: each node depends
on ``degree`` nodes of the other kind drawn from a window around its own
index, so remote dependencies touch only the neighbouring bands.  The
node count is deliberately not a multiple of the page size, so band
boundaries split pages and a halo page is only *partially* written by
the neighbour — the sharing granularity on which "the diffs of
TreadMarks result in less data communication than ... page reads"
(Section 4.3).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.config import WorkingSet
from repro.core import Program, SharedArray
from repro.apps import kernels
from repro.apps.common import band, deterministic_rng, pick_scale

US_PER_EDGE = 0.3  # one weighted dependency update
WINDOW = 96  # dependency window around a node's own index


def default_params(scale: str = "small") -> Dict:
    """Scaled-down versions of the paper's 60646-node graph."""
    sizes = {
        "tiny": dict(n_nodes=256, degree=4, iters=4),
        "small": dict(n_nodes=31200, degree=8, iters=8),
        "large": dict(n_nodes=46800, degree=8, iters=12),
        # The paper's full 60646-node bipartite graph.
        "xlarge": dict(n_nodes=60646, degree=8, iters=16),
    }
    return pick_scale(sizes, scale)


def _dependencies(params: Dict) -> Dict[str, np.ndarray]:
    """Static dependency lists (private data, built at program load)."""
    rng = deterministic_rng(params.get("seed", 1997) + 1)
    n, degree = params["n_nodes"], params["degree"]
    offsets = rng.integers(-WINDOW, WINDOW + 1, size=(n, degree))
    targets = (np.arange(n)[:, None] + offsets) % n
    weights = rng.random((n, degree)) * 0.01
    return {"targets": targets, "weights": weights}


def setup(space, params: Dict) -> Dict:
    n = params["n_nodes"]
    rng = deterministic_rng(params.get("seed", 1997))
    e_nodes = SharedArray.alloc(space, "em3d_e", np.float64, (n,))
    h_nodes = SharedArray.alloc(space, "em3d_h", np.float64, (n,))
    e_nodes.initialize(rng.random(n))
    h_nodes.initialize(rng.random(n))
    deps = _dependencies(params)
    return {"e": e_nodes, "h": h_nodes, **deps}


def worker(env, shared: Dict, params: Dict):
    n, degree, iters = params["n_nodes"], params["degree"], params["iters"]
    e_nodes, h_nodes = shared["e"], shared["h"]
    targets, weights = shared["targets"], shared["weights"]
    lo, hi = band(env.rank, env.nprocs, n)
    n_mine = hi - lo
    my_targets = targets[lo:hi]
    my_weights = weights[lo:hi]
    # The halo spans the dependency window on each side.
    rlo, rhi = max(lo - WINDOW, 0), min(hi + WINDOW, n)
    edges = n_mine * degree
    ws = WorkingSet(primary=0)

    def wrap_indices():
        # Dependencies wrap around the ring; fold them into [rlo, rhi) by
        # reading the wrapped rows separately.
        inside = (my_targets >= rlo) & (my_targets < rhi)
        return inside

    inside_mask = wrap_indices()
    for _ in range(iters):
        for mine, other in ((e_nodes, h_nodes), (h_nodes, e_nodes)):
            window = yield from other.read_range(env, rlo, rhi - rlo)
            full = None
            if not inside_mask.all():
                full = yield from other.read_range(env, 0, n)
            yield from env.compute(edges * US_PER_EDGE, polls=edges, ws=ws)
            if kernels.ENABLED:
                gathered = kernels.em3d_gather(
                    window, full, my_targets, inside_mask, rlo, rhi
                )
            else:
                source = full if full is not None else None
                gathered = np.where(
                    inside_mask,
                    window[np.clip(my_targets - rlo, 0, rhi - rlo - 1)],
                    0.0,
                )
                if source is not None:
                    gathered = np.where(
                        inside_mask, gathered, source[my_targets]
                    )
            current = yield from mine.read_range(env, lo, n_mine)
            if kernels.ENABLED:
                updated = kernels.em3d_update(current, my_weights, gathered)
            else:
                updated = current - (my_weights * gathered).sum(axis=1)
            yield from mine.write_range(env, lo, updated)
            yield from env.barrier(0)
    env.stop_timer()
    if env.rank == 0:
        e_final = yield from e_nodes.read_all(env)
        h_final = yield from h_nodes.read_all(env)
        return e_final, h_final
    return None


def program() -> Program:
    return Program(name="em3d", setup=setup, worker=worker)
