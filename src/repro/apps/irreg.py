"""IRREG: an irregular, false-sharing-prone extension workload (PR 10).

Not one of the paper's eight applications — a policy stressor built for
the sharing-policy study (``repro-dsm policies``, docs/POLICIES.md).
It models the hash-table/graph class of workloads DRust and the
fine-granularity DSM literature use to show false sharing dominating
page-based protocols:

* Shared state is an array of 256-byte *buckets* (32 float64 slots),
  double-buffered (``cur``/``nxt``).  Buckets are owned block-cyclically
  — ``owner(b) = b % nprocs`` — so every 8 KB page interleaves buckets
  of **all** processors.
* Work is *sparse*: each iteration only the buckets in the rotating
  **active runs** are updated — runs of ``RUN`` consecutive buckets,
  one run in every ``ACTIVE_PERIOD`` run-groups, shifting by one group
  per iteration (a pure function of ``(b, it)``).  A run's ``RUN``
  consecutive buckets belong to ``RUN`` *different* owners, so at page
  granularity every page containing a run is write-shared by several
  processors every iteration (false sharing: whole-page invalidations,
  twins and diff traffic for 256-byte writes), while at ``block256``
  each written bucket has exactly one writer and an owner's unwritten
  buckets stay valid — the write-side churn vanishes.
* Each iteration, an owner reads its active buckets from ``cur``
  (every 8th bucket also reads one pseudo-randomly *hashed* foreign
  bucket — the irregular pointer-chase), writes the updates to
  ``nxt``, and meets a barrier.
* An *audit scan* then sequentially checksums the 8 fixed bucket bands
  of ``nxt`` (band ``k`` audited by rank ``k % nprocs``) and publishes
  each checksum to a shared accumulator.  Only the just-written runs
  re-fault, and within a run the faults are sequential — the pattern
  sequential prefetch exists for.

Results are processor-count independent by construction: every bucket
and every accumulator slot has a single writer per iteration, update
values are pure functions of the previous buffer and the bucket index,
and the fixed 8-band audit partition does not depend on ``nprocs``.
Any granularity × prefetch × homing combination must therefore produce
identical return values (enforced by ``tests/test_sharing_policy.py``).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.config import WorkingSet
from repro.core import Program, SharedArray
from repro.apps.common import band, deterministic_rng, pick_scale

#: float64 slots per bucket: 32 * 8 B = 256 B, the ``block256`` unit.
SLOTS = 32

#: Every 8th bucket chases one hashed foreign bucket per iteration.
FOREIGN_EVERY = 8

#: Fixed audit bands (independent of nprocs, so checksums are too).
NBANDS = 8

#: Active-run shape: runs of RUN consecutive buckets, one run per
#: ACTIVE_PERIOD run-groups, rotating one group per iteration.  Both
#: the run membership and its rotation depend only on ``(b, it)`` —
#: never on ``nprocs`` — so results stay processor-count independent.
RUN = 4
ACTIVE_PERIOD = 8


def _is_active(b: int, it: int) -> bool:
    """Whether bucket ``b`` is updated during iteration ``it``."""
    return ((b // RUN) + it) % ACTIVE_PERIOD == 0

# Per-slot update/scan costs: an irregular, cache-unfriendly workload on
# the paper's 233 MHz 21064A.
US_PER_SLOT = 0.15
SCAN_US_PER_SLOT = 0.04
POLLS_PER_SLOT = 1


def default_params(scale: str = "small") -> Dict:
    sizes = {
        "tiny": dict(blocks=64, iters=4),
        "small": dict(blocks=512, iters=10),
        "large": dict(blocks=1024, iters=12),
        # The registry's nominal "4096 blocks (1 MB)" table size.
        "xlarge": dict(blocks=4096, iters=16),
    }
    return pick_scale(sizes, scale)


def _hash_foreign(b: int, it: int, blocks: int) -> int:
    """Deterministic pseudo-random foreign bucket for bucket ``b`` at
    iteration ``it`` (never ``b`` itself)."""
    f = (b * 2654435761 + it * 40503 + 12345) % blocks
    return (f + 1) % blocks if f == b else f


def setup(space, params: Dict) -> Dict:
    blocks, iters = params["blocks"], params["iters"]
    rng = deterministic_rng(params.get("seed", 1997))
    cur = SharedArray.alloc(space, "irreg_a", np.float64, (blocks * SLOTS,))
    nxt = SharedArray.alloc(space, "irreg_b", np.float64, (blocks * SLOTS,))
    acc = SharedArray.alloc(space, "irreg_acc", np.float64, (iters * NBANDS,))
    cur.initialize(rng.random(blocks * SLOTS))
    nxt.initialize(np.zeros(blocks * SLOTS))
    acc.initialize(np.zeros(iters * NBANDS))
    return {"cur": cur, "nxt": nxt, "acc": acc, "blocks": blocks}


def _update(vals: np.ndarray, b: int, it: int, foreign0: float) -> np.ndarray:
    """New contents of bucket ``b``: a pure function of its old slots,
    its index, the iteration, and (for chased buckets) the first slot of
    the hashed foreign bucket."""
    out = 0.5 * vals + 0.25 * np.roll(vals, 1)
    out += 0.001 * (b + np.arange(SLOTS)) + 0.0001 * it
    out += 0.1 * foreign0
    return out


def worker(env, shared: Dict, params: Dict):
    blocks, iters = params["blocks"], params["iters"]
    cur, nxt, acc = shared["cur"], shared["nxt"], shared["acc"]
    rank, nprocs = env.rank, env.nprocs
    mine = list(range(rank, blocks, nprocs))  # block-cyclic ownership
    # The pointer-chase defeats the cache; no extra protocol footprint.
    ws = WorkingSet(primary=0)
    for it in range(iters):
        # -- update phase: read own active (+ hashed foreign) buckets
        # from ``cur``, write the updates to ``nxt``.
        for b in mine:
            if not _is_active(b, it):
                continue
            vals = yield from cur.read_range(env, b * SLOTS, SLOTS)
            foreign0 = 0.0
            if b % FOREIGN_EVERY == 0:
                f = _hash_foreign(b, it, blocks)
                fvals = yield from cur.read_range(env, f * SLOTS, 1)
                foreign0 = float(fvals[0])
            yield from env.compute(
                SLOTS * US_PER_SLOT, polls=SLOTS * POLLS_PER_SLOT, ws=ws
            )
            yield from nxt.write_range(
                env, b * SLOTS, _update(vals, b, it, foreign0)
            )
        yield from env.barrier(0)
        # -- audit phase: sequential checksum scan of ``nxt`` over the
        # fixed bands (band ``k`` audited by rank ``k % nprocs`` every
        # iteration, so its scanner holds stale copies to re-validate);
        # one writer per accumulator slot.
        for band_idx in range(NBANDS):
            if band_idx % nprocs != rank:
                continue
            lo_b, hi_b = band(band_idx, NBANDS, blocks)
            count = (hi_b - lo_b) * SLOTS
            if count <= 0:
                continue
            data = yield from nxt.read_range(env, lo_b * SLOTS, count)
            yield from env.compute(
                count * SCAN_US_PER_SLOT, polls=count * POLLS_PER_SLOT, ws=ws
            )
            yield from acc.write_range(
                env, it * NBANDS + band_idx, np.array([data.sum()])
            )
        yield from env.barrier(1)
        cur, nxt = nxt, cur
    env.stop_timer()
    if rank == 0:
        final = yield from cur.read_all(env)
        audits = yield from acc.read_all(env)
        return final.sum(), final.reshape(blocks, SLOTS).sum(axis=1), audits
    return None


def program() -> Program:
    return Program(name="irreg", setup=setup, worker=worker)
