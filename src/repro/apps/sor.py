"""SOR: Red-Black Successive Over-Relaxation (paper Section 4.2).

"The red and black arrays are divided into roughly equal size bands of
rows, with each band assigned to a different processor.  Communication
occurs across the boundaries between bands.  Processors synchronize with
barriers."

The red/black coupling below is a simplified stencil that preserves the
protocol-relevant structure exactly: each phase reads the other color's
rows (own band plus one halo row on each side) and overwrites the whole
of its own band, so neighbouring bands share boundary pages and every
iteration moves two halo pages per processor per phase.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.config import WorkingSet
from repro.core import Program, SharedArray
from repro.apps import kernels
from repro.apps.common import band, deterministic_rng, pick_scale

# Per-cell stencil cost: four flops plus the loads/stores of a
# memory-bound sweep on a 233 MHz 21064A.
US_PER_CELL = 0.25
# One poll point per inner-loop iteration (the instrumentation pass
# inserts a check at the top of every loop).
POLLS_PER_CELL = 1


def default_params(scale: str = "small") -> Dict:
    """Scaled-down versions of the paper's 3072x4096 grid."""
    sizes = {
        "tiny": dict(rows=24, cols=32, iters=4),
        "small": dict(rows=256, cols=2048, iters=6),
        "large": dict(rows=768, cols=2048, iters=24),
        # The paper's full 3072x4096 grid (Section 4.2).
        "xlarge": dict(rows=3072, cols=4096, iters=24),
    }
    return pick_scale(sizes, scale)


def _phase_update(other_halo: np.ndarray) -> np.ndarray:
    """One red/black half-sweep for a band.

    ``other_halo`` holds the other color's rows for the band plus one
    halo row above and below.  The first and last grid rows are boundary
    rows and stay fixed, so every updated row has in-range halos.
    """
    up = other_halo[:-2]
    mid = other_halo[1:-1]
    down = other_halo[2:]
    right = np.roll(mid, -1, axis=1)
    return 0.25 * (up + down + mid + right)


def setup(space, params: Dict) -> Dict:
    rows, cols = params["rows"], params["cols"]
    half = cols // 2
    rng = deterministic_rng(params.get("seed", 1997))
    red = SharedArray.alloc(space, "sor_red", np.float64, (rows, half))
    black = SharedArray.alloc(space, "sor_black", np.float64, (rows, half))
    red.initialize(rng.random((rows, half)))
    black.initialize(rng.random((rows, half)))
    return {"red": red, "black": black}


def worker(env, shared: Dict, params: Dict):
    rows, cols, iters = params["rows"], params["cols"], params["iters"]
    half = cols // 2
    red, black = shared["red"], shared["black"]
    lo, hi = band(env.rank, env.nprocs, rows)
    # Skip fixed boundary rows when updating.
    ulo, uhi = max(lo, 1), min(hi, rows - 1)
    cells = max(uhi - ulo, 0) * half
    # The stencil streams through memory; its cache-resident set is tiny,
    # so SOR sees no working-set penalty from doubling or twins (the
    # paper attributes SOR's Cashmere overhead purely to the doubled
    # write instructions).
    ws = WorkingSet(primary=0)
    # Band mirrors (kernel layer): this rank is the only writer of rows
    # [ulo, uhi) of either color, so those rows — once read or written —
    # always match shared memory bitwise, and re-gathering them per phase
    # only repeats event-free hot reads.  Each buffer holds the mirrored
    # band in [1:-1]; only the two halo rows [0] / [-1] are refreshed
    # from shared memory each phase.  Any cold halo page falls back to
    # the full-range read below, which faults the same pages in the same
    # ascending order the scalar path does.
    halo_buf: Dict[int, np.ndarray] = {}
    # Loop-invariant regions, hoisted out of the iteration loop (ROADMAP
    # "profiled micro-levers", the lu block-map idiom): every phase
    # touches the same four shapes — the full halo band, the two single
    # halo rows, and the written band — so their byte segments and page
    # spans are computed once instead of per phase.
    regions: Dict[int, tuple] = {}
    if cells:
        for arr in (red, black):
            regions[id(arr)] = (
                arr.region_rows(ulo - 1, uhi + 1),  # full halo band
                arr.region_rows(ulo - 1, ulo),  # top halo row
                arr.region_rows(uhi, uhi + 1),  # bottom halo row
                arr.region_rows(ulo, uhi),  # written band
            )
    for _ in range(iters):
        for color, source in ((red, black), (black, red)):
            if cells:
                band_reg, top_reg, bot_reg, _ = regions[id(source)]
                halo = None
                if kernels.ENABLED:
                    buf = halo_buf.get(id(source))
                    if buf is not None and source.rows_hot(env, ulo, uhi):
                        # The mirrored interior is provably current
                        # (single writer) and its pages are all hot, so
                        # only the two halo rows can be cold.  Fetching
                        # them alone faults exactly the pages the
                        # full-band read would — the cold subset of the
                        # top row's span, then of the bottom row's, both
                        # ascending, with any page shared between the
                        # two spans faulted once by the first read —
                        # so the event stream is identical.
                        top = source.region_view(env, top_reg)
                        if top is None:
                            top = yield from source.read_region(
                                env, top_reg
                            )
                        bot = source.region_view(env, bot_reg)
                        if bot is None:
                            bot = yield from source.read_region(
                                env, bot_reg
                            )
                        buf[0] = top[0]
                        buf[-1] = bot[0]
                        halo = buf
                if halo is None:
                    halo = source.region_view(env, band_reg)
                    if halo is None:
                        halo = yield from source.read_region(
                            env, band_reg
                        )
                    if kernels.ENABLED:
                        buf = halo_buf.get(id(source))
                        if buf is None:
                            buf = np.array(halo)
                            halo_buf[id(source)] = buf
                        else:
                            buf[:] = halo
                        halo = buf
            yield from env.compute(
                cells * US_PER_CELL, polls=cells * POLLS_PER_CELL, ws=ws
            )
            if cells:
                if kernels.ENABLED:
                    updated = kernels.sor_phase_update(halo)
                else:
                    updated = _phase_update(halo)
                yield from color.write_region(
                    env, regions[id(color)][3], updated
                )
                if kernels.ENABLED:
                    cbuf = halo_buf.get(id(color))
                    if cbuf is None:
                        cbuf = np.empty((uhi - ulo + 2, half))
                        halo_buf[id(color)] = cbuf
                    cbuf[1:-1] = updated
            yield from env.barrier(0)
    env.stop_timer()
    if env.rank == 0:
        red_final = yield from red.read_all(env)
        black_final = yield from black.read_all(env)
        return red_final.sum() + black_final.sum(), red_final, black_final
    return None


def program() -> Program:
    return Program(name="sor", setup=setup, worker=worker)
