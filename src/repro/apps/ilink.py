"""Ilink: genetic linkage analysis from FASTLINK (paper Section 4.2).

"The main shared data is a pool of sparse arrays of genotype
probabilities.  Updates to each array are parallelized.  A master
processor assigns individual array elements to processors in a round
robin fashion in order to improve load balance.  After each processor
has updated its elements, the master processor sums the contributions.
Barriers are used for synchronization.  Scalability is limited by an
inherent serial component and inherent load imbalance."

The essential property the paper's analysis hinges on is *sparsity*:
"only a small portion of each page is modified between synchronization
operations", so TreadMarks' diffs carry far less data than Cashmere's
whole-page reads.  The synthetic genotype recurrence below preserves
that: each iteration updates ``density`` of the elements of each array
in the pool, scattered across its pages, and the master then reduces the
pool serially.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.config import WorkingSet
from repro.core import Program, Region, SharedArray
from repro.apps import kernels
from repro.apps.common import deterministic_rng, pick_scale

US_PER_UPDATE = 25.0  # one genotype-probability recurrence
US_PER_SUM_ELEM = 0.04  # the master's serial reduction


def default_params(scale: str = "small") -> Dict:
    """Scaled-down versions of the paper's CLP data set (15 MB pool)."""
    sizes = {
        "tiny": dict(arrays=4, elems=2048, density=0.05, iters=3),
        "small": dict(arrays=6, elems=8192, density=0.05, iters=3),
        "large": dict(arrays=12, elems=16384, density=0.05, iters=6),
        # ~12.6 MB of genarrays, matching the paper's 15 MB CLP pool.
        "xlarge": dict(arrays=24, elems=65536, density=0.05, iters=8),
    }
    return pick_scale(sizes, scale)


def _sparse_slots(params: Dict) -> np.ndarray:
    """The elements updated each iteration (sparse, deterministic)."""
    rng = deterministic_rng(params.get("seed", 1997) + 2)
    arrays, elems = params["arrays"], params["elems"]
    per_array = max(1, int(elems * params["density"]))
    slots = np.stack(
        [
            np.sort(rng.choice(elems, size=per_array, replace=False))
            for _ in range(arrays)
        ]
    )
    return slots


def setup(space, params: Dict) -> Dict:
    arrays, elems = params["arrays"], params["elems"]
    rng = deterministic_rng(params.get("seed", 1997))
    pool = SharedArray.alloc(space, "ilink_pool", np.float64, (arrays, elems))
    result = SharedArray.alloc(space, "ilink_result", np.float64, (arrays,))
    pool.initialize(rng.random((arrays, elems)))
    result.initialize(np.zeros(arrays))
    return {"pool": pool, "result": result, "slots": _sparse_slots(params)}


def worker(env, shared: Dict, params: Dict):
    arrays, elems, iters = params["arrays"], params["elems"], params["iters"]
    pool, result, slots = shared["pool"], shared["result"], shared["slots"]
    rank, nprocs = env.rank, env.nprocs
    ws = WorkingSet(primary=0)
    # One region per pool array over this rank's round-robin slots, each
    # slot its own one-element segment: the batched scatter replays the
    # element-by-element write loop's per-span protocol charges exactly.
    scatter_regions: Dict[int, Region] = {}
    for it in range(iters):
        # Parallel sparse update: the master assigns elements round-robin.
        n_updates = 0
        for a in range(arrays):
            my_slots = slots[a][rank::nprocs]
            if len(my_slots) == 0:
                continue
            row = yield from pool.read_rows(env, a, a + 1)
            row = row[0]
            values = row[my_slots]
            n_updates += len(my_slots)
            if kernels.ENABLED:
                updated = kernels.ilink_update(values, it)
                reg = scatter_regions.get(a)
                if reg is None:
                    reg = Region(
                        pool,
                        [(a * elems + int(s), 1) for s in my_slots],
                        (len(my_slots),),
                    )
                    scatter_regions[a] = reg
                yield from pool.write_region(env, reg, updated)
            else:
                updated = (
                    0.25 * values + 0.5 * values * values + 0.01 * (it + 1)
                )
                # Scatter the sparse writes element by element within runs
                # of contiguous slots, touching only a few words per page.
                for slot, value in zip(my_slots, updated):
                    yield from pool.write_range(
                        env, a * elems + int(slot), [value]
                    )
        yield from env.compute(
            max(n_updates, 1) * US_PER_UPDATE, polls=max(n_updates, 1), ws=ws
        )
        yield from env.barrier(0)
        # Serial component: the master sums all contributions.
        if rank == 0:
            if kernels.ENABLED:
                pool_rows = []
                for a in range(arrays):
                    row = yield from pool.read_rows(env, a, a + 1)
                    pool_rows.append(row[0])
                total = kernels.ilink_reduce(pool_rows)
            else:
                total = np.zeros(arrays)
                for a in range(arrays):
                    row = yield from pool.read_rows(env, a, a + 1)
                    total[a] = row[0].sum()
            yield from env.compute(
                arrays * elems * US_PER_SUM_ELEM, polls=arrays * elems
            )
            yield from result.write_range(env, 0, total)
        yield from env.barrier(0)
    env.stop_timer()
    if env.rank == 0:
        final = yield from result.read_all(env)
        pool_final = yield from pool.read_all(env)
        return final, pool_final
    return None


def program() -> Program:
    return Program(name="ilink", setup=setup, worker=worker)
