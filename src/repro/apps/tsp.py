"""TSP: branch-and-bound traveling salesman (paper Section 4.2).

"Locks are used to insert and delete unsolved tours in a priority queue.
Updates to the shortest path are protected by a separate lock.  The
algorithm is nondeterministic in the sense that the earlier some
processor stumbles upon the shortest path, the more quickly other parts
of the search space can be pruned."

The shared priority queue (a binary heap of tour slots), the free list,
and the current best tour all live in DSM shared memory and are accessed
under the queue/best locks exactly as in the original program.  Partial
tours deeper than ``local_depth`` remaining cities are solved locally by
depth-first search — the standard coarsening that makes distributed TSP
compute-bound.  The amount of work done varies with the schedule, but
the final tour length is always the optimum, which is what the tests
verify.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core import Program, SharedArray
from repro.apps import kernels
from repro.apps.common import deterministic_rng, pick_scale

QUEUE_LOCK = 0
BEST_LOCK = 1

US_PER_BOUND = 2.0  # lower-bound computation per expanded child
US_PER_DFS_NODE = 150.0  # one node of the local depth-first solve (the paper's
# 17-city subtrees are far deeper; this keeps the task grain comparable)


def default_params(scale: str = "small") -> Dict:
    """Scaled-down versions of the paper's 17-city run.

    ``local_depth`` is the subtree size solved entirely within one
    processor; it sets the task granularity exactly as in distributed
    branch-and-bound codes of the era.
    """
    sizes = {
        "tiny": dict(cities=8, local_depth=5),
        "small": dict(cities=12, local_depth=9),
        "large": dict(cities=13, local_depth=9),
        # Branch-and-bound work explodes factorially: 14 cities is the
        # largest instance that stays overnight-feasible in pure Python
        # (the paper's 17-city run is out of reach here).
        "xlarge": dict(cities=14, local_depth=10),
    }
    return pick_scale(sizes, scale)


def distances(params: Dict) -> np.ndarray:
    rng = deterministic_rng(params.get("seed", 1997))
    c = params["cities"]
    pts = rng.random((c, 2)) * 100.0
    d = np.sqrt(((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2))
    return d


def setup(space, params: Dict) -> Dict:
    c = params["cities"]
    slots = params.get("max_slots", 4096)
    record = c + 3  # bound, length, depth, path[c]
    pool = SharedArray.alloc(space, "tsp_pool", np.float64, (slots, record))
    heap = SharedArray.alloc(space, "tsp_heap", np.float64, (slots + 1,))
    # control: heap_size, free_top, n_idle, best_len
    control = SharedArray.alloc(space, "tsp_control", np.float64, (4,))
    freelist = SharedArray.alloc(space, "tsp_free", np.float64, (slots,))
    best_path = SharedArray.alloc(space, "tsp_best", np.float64, (c,))

    d = distances(params)
    # Seed the incumbent with a greedy nearest-neighbour tour, as real
    # branch-and-bound codes do; without it the first tasks explore
    # unpruned subtrees.
    greedy_len, greedy_path = _greedy_tour(d)
    root = np.zeros(record)
    root[0] = _lower_bound(d, [0], 0.0)
    root[1] = 0.0
    root[2] = 1.0
    root[3] = 0.0  # tour starts at city 0
    pool_init = np.zeros((slots, record))
    pool_init[0] = root
    pool.initialize(pool_init)
    heap_init = np.zeros(slots + 1)
    heap_init[0] = 1  # one entry
    heap_init[1] = 0  # slot 0
    heap.initialize(heap_init)
    # control = [heap_size, free_top, n_idle, best_len]; slots 1..slots-1
    # start on the free stack (slot 0 holds the root tour).
    control.initialize(
        np.array([1.0, float(slots - 1), 0.0, greedy_len])
    )
    free_init = np.zeros(slots)
    free_init[: slots - 1] = np.arange(1, slots, dtype=np.float64)
    freelist.initialize(free_init)
    best_path.initialize(np.array(greedy_path, np.float64))
    return {
        "pool": pool,
        "heap": heap,
        "control": control,
        "free": freelist,
        "best_path": best_path,
        "dist": d,
        "record": record,
        "slots": slots,
    }


def _greedy_tour(d: np.ndarray):
    """Nearest-neighbour tour from city 0 (the initial incumbent)."""
    c = len(d)
    path = [0]
    total = 0.0
    while len(path) < c:
        last = path[-1]
        nxt = min(
            (j for j in range(c) if j not in path), key=lambda j: d[last][j]
        )
        total += d[last][nxt]
        path.append(nxt)
    total += d[path[-1]][0]
    return total, path


def _lower_bound(d: np.ndarray, path: List[int], length: float) -> float:
    """Partial length plus the cheapest continuation edge per open city."""
    c = len(d)
    remaining = [i for i in range(c) if i not in path]
    bound = length
    for city in remaining + [path[-1]]:
        choices = [d[city][j] for j in remaining + [path[0]] if j != city]
        if choices:
            bound += min(choices)
    return bound


def _dfs_solve(d, path, length, best_len):
    """Branch-and-bound DFS under a node.

    Returns ``(best_len, best_path, nodes)`` where ``nodes`` is the
    number of search-tree nodes actually visited (pruned subtrees cost
    nothing, as in the real program).
    """
    c = len(d)
    min_edge = [min(d[i][j] for j in range(c) if j != i) for i in range(c)]
    remaining = frozenset(range(c)) - frozenset(path)
    state = {"best": best_len, "path": None, "nodes": 0}
    stack = list(path)

    def descend(last, rem, total):
        state["nodes"] += 1
        if not rem:
            final = total + d[last][path[0]]
            if final < state["best"]:
                state["best"] = final
                state["path"] = list(stack)
            return
        optimistic = total + sum(min_edge[city] for city in rem)
        if optimistic >= state["best"]:
            return
        for city in sorted(rem, key=lambda j: d[last][j]):
            extended = total + d[last][city]
            if extended >= state["best"]:
                continue
            stack.append(city)
            descend(city, rem - {city}, extended)
            stack.pop()

    descend(path[-1], remaining, length)
    return state["best"], state["path"], state["nodes"]


def worker(env, shared: Dict, params: Dict):
    c = params["cities"]
    local_depth = params["local_depth"]
    d = shared["dist"]
    pool, heap = shared["pool"], shared["heap"]
    control, freelist = shared["control"], shared["free"]
    best_path_arr = shared["best_path"]
    record = shared["record"]
    # The search is data-dependent scalar control flow; the kernel layer
    # hosts the (bit-identical) bound and DFS implementations.
    if kernels.ENABLED:
        lower_bound, dfs_solve = kernels.tsp_lower_bound, kernels.tsp_dfs_solve
    else:
        lower_bound, dfs_solve = _lower_bound, _dfs_solve

    def read_control():
        vals = yield from control.read_range(env, 0, 4)
        return vals

    idle_backoff = 500.0
    registered_idle = False
    while True:
        yield from env.lock_acquire(QUEUE_LOCK)
        ctl = yield from read_control()
        heap_size, free_top, n_idle, best_len = (
            int(ctl[0]),
            int(ctl[1]),
            int(ctl[2]),
            float(ctl[3]),
        )
        if heap_size == 0:
            # Register as idle and *stay* registered while the queue is
            # empty; a processor deregisters only when it takes work, so
            # the idle count converges and termination is detected.
            if not registered_idle:
                registered_idle = True
                n_idle += 1
                yield from control.put(env, 2, n_idle)
            yield from env.lock_release(QUEUE_LOCK)
            if n_idle >= env.nprocs:
                break  # queue drained and everyone idle: done
            yield from env.compute(idle_backoff, polls=50)
            idle_backoff = min(idle_backoff * 2.0, 8000.0)
            continue
        if registered_idle:
            registered_idle = False
            yield from control.put(env, 2, max(n_idle - 1, 0))
        idle_backoff = 500.0
        # Pop the most promising tour (heap root).
        slot = yield from _heap_pop(env, heap, pool, heap_size)
        yield from control.put(env, 0, heap_size - 1)
        tour = yield from pool.read_range(env, slot * record, record)
        yield from freelist.put(env, int(ctl[1]), slot)
        yield from control.put(env, 1, free_top + 1)
        yield from env.lock_release(QUEUE_LOCK)

        bound, length, depth = float(tour[0]), float(tour[1]), int(tour[2])
        path = [int(x) for x in tour[3 : 3 + depth]]
        if bound >= best_len:
            continue  # pruned

        if c - depth <= local_depth:
            # Solve the subtree locally with DFS.
            found_len, found_path, nodes = dfs_solve(d, path, length, best_len)
            yield from env.compute(
                max(nodes, 1) * US_PER_DFS_NODE, polls=max(nodes, 1)
            )
            if found_path is not None:
                yield from env.lock_acquire(BEST_LOCK)
                current = yield from control.get(env, 3)
                if found_len < float(current):
                    yield from control.put(env, 3, found_len)
                    yield from best_path_arr.write_range(
                        env, 0, np.array(found_path, np.float64)
                    )
                yield from env.lock_release(BEST_LOCK)
            continue

        # Expand one level and push the children.
        last = path[-1]
        children = []
        for city in range(c):
            if city in path:
                continue
            child_len = length + d[last][city]
            child_path = path + [city]
            child_bound = lower_bound(d, child_path, child_len)
            children.append((child_bound, child_len, child_path))
        yield from env.compute(
            len(children) * US_PER_BOUND * c, polls=len(children) * c
        )
        for child_bound, child_len, child_path in children:
            if child_bound >= best_len:
                continue
            yield from env.lock_acquire(QUEUE_LOCK)
            ctl = yield from read_control()
            heap_size, free_top = int(ctl[0]), int(ctl[1])
            if free_top == 0:
                raise RuntimeError("tsp slot pool exhausted")
            slot = int((yield from freelist.get(env, free_top - 1)))
            yield from control.put(env, 1, free_top - 1)
            rec = np.zeros(record)
            rec[0] = child_bound
            rec[1] = child_len
            rec[2] = len(child_path)
            rec[3 : 3 + len(child_path)] = child_path
            yield from pool.write_range(env, slot * record, rec)
            yield from _heap_push(env, heap, pool, heap_size, slot, record)
            yield from control.put(env, 0, heap_size + 1)
            yield from env.lock_release(QUEUE_LOCK)
    env.stop_timer()
    if env.rank == 0:
        best_len = yield from control.get(env, 3)
        path = yield from best_path_arr.read_all(env)
        return float(best_len), [int(x) for x in path]
    return None


def _heap_pop(env, heap, pool, heap_size):
    """Remove and return the slot with the lowest bound (timed reads and
    writes of the shared heap array, under the queue lock)."""
    root = int((yield from heap.get(env, 1)))
    if heap_size == 1:
        return root
    last = yield from heap.get(env, heap_size)
    yield from heap.put(env, 1, last)
    # Sift down by bound.
    i = 1
    size = heap_size - 1
    while True:
        left, right = 2 * i, 2 * i + 1
        if left > size:
            break
        child = left
        if right <= size:
            lb = yield from _bound_of(env, heap, pool, left)
            rb = yield from _bound_of(env, heap, pool, right)
            if rb < lb:
                child = right
        here = yield from _bound_of(env, heap, pool, i)
        there = yield from _bound_of(env, heap, pool, child)
        if there >= here:
            break
        a = yield from heap.get(env, i)
        b = yield from heap.get(env, child)
        yield from heap.put(env, i, b)
        yield from heap.put(env, child, a)
        i = child
    return root


def _bound_of(env, heap, pool, heap_index):
    slot = int((yield from heap.get(env, heap_index)))
    record = pool.shape[1]
    bound = yield from pool.read_range(env, slot * record, 1)
    return float(bound[0])


def _heap_push(env, heap, pool, heap_size, slot, record):
    i = heap_size + 1
    yield from heap.put(env, i, slot)
    while i > 1:
        parent = i // 2
        mine = yield from _bound_of(env, heap, pool, i)
        theirs = yield from _bound_of(env, heap, pool, parent)
        if theirs <= mine:
            break
        a = yield from heap.get(env, i)
        b = yield from heap.get(env, parent)
        yield from heap.put(env, i, b)
        yield from heap.put(env, parent, a)
        i = parent


def reference(params: Dict) -> float:
    """Exact optimum via branch-and-bound DFS (test oracle)."""
    d = distances(params)
    best, _path, _nodes = _dfs_solve(d, [0], 0.0, np.inf)
    return best


def program() -> Program:
    return Program(name="tsp", setup=setup, worker=worker)
