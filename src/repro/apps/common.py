"""Helpers shared by the benchmark applications."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

#: Scale-tier aliases accepted anywhere a tier name is: ``paper`` is the
#: full-size input set every app's docstring quotes, i.e. ``xlarge``.
SCALE_ALIASES = {"paper": "xlarge"}


def pick_scale(sizes: Dict[str, Dict], scale: str) -> Dict:
    """Resolve a scale tier (honouring aliases) to a fresh params dict.

    Every app's ``default_params`` goes through here so the tier names
    — ``tiny``/``small``/``large``/``xlarge`` plus the ``paper`` alias —
    stay uniform across the registry.
    """
    resolved = SCALE_ALIASES.get(scale, scale)
    try:
        return dict(sizes[resolved])
    except KeyError:
        known = sorted(sizes) + sorted(SCALE_ALIASES)
        raise ValueError(f"unknown scale {scale!r}; known: {known}")


def band(rank: int, nprocs: int, n: int) -> Tuple[int, int]:
    """Contiguous band ``[lo, hi)`` of ``n`` rows for ``rank``.

    Rows are divided into roughly equal bands, with the first ``n %
    nprocs`` processors getting one extra row — the banding every
    band-partitioned application in the paper uses.
    """
    if not (0 <= rank < nprocs):
        raise ValueError(f"rank {rank} out of range for {nprocs}")
    base = n // nprocs
    extra = n % nprocs
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def cyclic_rows(rank: int, nprocs: int, n: int) -> range:
    """Rows assigned cyclically (Gauss's load-balanced distribution)."""
    return range(rank, n, nprocs)


def deterministic_rng(seed: int) -> np.random.Generator:
    """A seeded generator so every run sees identical input data."""
    return np.random.default_rng(seed)
