"""Water: molecular dynamics from SPLASH (paper Section 4.2).

"The shared array of molecule structures is divided into equal
contiguous chunks, with each chunk assigned to a different processor.
The bulk of the interprocessor communication happens during a
computation phase that computes intermolecular forces.  Each processor
accumulates its forces locally and then acquires per-processor locks to
update the globally shared force vectors, resulting in a migratory
sharing pattern."

The physics is a simplified Lennard-Jones pairwise potential over the
oxygen positions: the O(n^2/2) force phase, the lock-protected global
accumulation, and the barrier structure are exactly the paper's; the
intra-molecular terms are folded into the per-pair cost constant.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.config import WorkingSet
from repro.core import Program, SharedArray
from repro.apps import kernels
from repro.apps.common import band, deterministic_rng, pick_scale

US_PER_PAIR = 0.45  # Lennard-Jones pair: ~30 flops incl. the sqrt
US_PER_MOL_UPDATE = 0.3  # position/velocity integration per molecule
DT = 1e-4


def default_params(scale: str = "small") -> Dict:
    """Scaled-down versions of the paper's 4096-molecule run."""
    sizes = {
        "tiny": dict(n_mols=48, steps=2),
        "small": dict(n_mols=3072, steps=2),
        "large": dict(n_mols=4096, steps=2),
        # The paper's 4096 molecules, run for twice the steps so the
        # steady-state sharing pattern dominates startup.
        "xlarge": dict(n_mols=4096, steps=4),
    }
    return pick_scale(sizes, scale)


def setup(space, params: Dict) -> Dict:
    n = params["n_mols"]
    rng = deterministic_rng(params.get("seed", 1997))
    positions = SharedArray.alloc(space, "water_pos", np.float64, (n, 3))
    velocities = SharedArray.alloc(space, "water_vel", np.float64, (n, 3))
    forces = SharedArray.alloc(space, "water_force", np.float64, (n, 3))
    positions.initialize(rng.random((n, 3)) * 4.0)
    velocities.initialize((rng.random((n, 3)) - 0.5) * 0.1)
    forces.initialize(np.zeros((n, 3)))
    return {"pos": positions, "vel": velocities, "force": forces}


def _pair_forces(my_pos: np.ndarray, lo: int, all_pos: np.ndarray):
    """Forces from pairs (i, j) with i in my chunk and j > i."""
    n = len(all_pos)
    contrib = np.zeros_like(all_pos)
    for local_i, i in enumerate(range(lo, lo + len(my_pos))):
        if i + 1 >= n:
            continue
        delta = all_pos[i + 1 :] - my_pos[local_i]
        r2 = np.maximum((delta * delta).sum(axis=1), 0.25)
        inv6 = 1.0 / (r2 * r2 * r2)
        magnitude = (24.0 * inv6 * (2.0 * inv6 - 1.0) / r2)[:, np.newaxis]
        pair = magnitude * delta
        contrib[i + 1 :] += pair
        contrib[i] -= pair.sum(axis=0)
    return contrib


def worker(env, shared: Dict, params: Dict):
    n, steps = params["n_mols"], params["steps"]
    pos, vel, force = shared["pos"], shared["vel"], shared["force"]
    rank, nprocs = env.rank, env.nprocs
    lo, hi = band(rank, nprocs, n)
    n_mine = hi - lo
    pairs = sum(max(n - i - 1, 0) for i in range(lo, hi))
    ws = WorkingSet(primary=min(n * 3 * 8, 12 * 1024))
    # One region per victim chunk, reused across the migratory
    # accumulation loop every step (the chunk bands never change).
    accum_regions: Dict[int, object] = {}
    for _ in range(steps):
        # Zero the global force vectors for the chunk we own.
        yield from force.write_rows(env, lo, np.zeros((n_mine, 3)))
        yield from env.barrier(0)

        # Force phase: all positions against my chunk.
        all_pos = yield from pos.read_rows(env, 0, n)
        yield from env.compute(pairs * US_PER_PAIR, polls=pairs, ws=ws)
        if kernels.ENABLED:
            contrib = kernels.water_pair_forces(all_pos[lo:hi], lo, all_pos)
        else:
            contrib = _pair_forces(all_pos[lo:hi], lo, all_pos)

        # Migratory accumulation under per-processor locks.
        for victim in range(nprocs):
            target = (rank + victim) % nprocs
            vlo, vhi = band(target, nprocs, n)
            if vhi == vlo:
                continue
            yield from env.lock_acquire(target)
            updated = None
            if kernels.ENABLED:
                reg = accum_regions.get(target)
                if reg is None:
                    reg = force.region_rows(vlo, vhi)
                    accum_regions[target] = reg
                current = force.region_view(env, reg)
                if current is not None:
                    # Consume the (possibly zero-copy) view before the
                    # next yield; the add snapshots the same bytes the
                    # scalar path's read copied.
                    updated = current + contrib[vlo:vhi]
            if updated is None:
                current = yield from force.read_rows(env, vlo, vhi)
            yield from env.compute(
                (vhi - vlo) * 3 * 0.05, polls=vhi - vlo
            )
            if updated is None:
                yield from force.write_rows(
                    env, vlo, current + contrib[vlo:vhi]
                )
            else:
                yield from force.write_region(env, reg, updated)
            yield from env.lock_release(target)
        yield from env.barrier(0)

        # Update phase: integrate my molecules.
        my_force = yield from force.read_rows(env, lo, hi)
        my_vel = yield from vel.read_rows(env, lo, hi)
        my_pos = yield from pos.read_rows(env, lo, hi)
        yield from env.compute(
            n_mine * US_PER_MOL_UPDATE, polls=n_mine, ws=ws
        )
        if kernels.ENABLED:
            new_vel, new_pos = kernels.water_integrate(
                my_pos, my_vel, my_force, DT
            )
        else:
            new_vel = my_vel + my_force * DT
            new_pos = my_pos + new_vel * DT
        yield from vel.write_rows(env, lo, new_vel)
        yield from pos.write_rows(env, lo, new_pos)
        yield from env.barrier(0)
    env.stop_timer()
    if rank == 0:
        final_pos = yield from pos.read_all(env)
        final_vel = yield from vel.read_all(env)
        return final_pos, final_vel
    return None


def program() -> Program:
    return Program(name="water", setup=setup, worker=worker)
