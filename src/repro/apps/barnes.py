"""Barnes: hierarchical Barnes-Hut N-body from SPLASH (Section 4.2).

"Each leaf of the program's tree represents a body, and each internal
node a 'cell': a collection of bodies in close physical proximity.  The
major shared data structures are two arrays, one representing the bodies
and the other representing the cells.  The Barnes-Hut tree construction
is performed sequentially, while all other phases are parallelized...
Synchronization consists of barriers between phases."

Bodies are 9 doubles (position, velocity, acceleration), so ~113 bodies
share one 8 KB page and the interleaved assignment of bodies to
processors produces heavy multi-writer false sharing — the pattern on
which the paper reports Cashmere beating TreadMarks (home-node merging
replaces diff exchanges among all writers of a page).  The sequential
tree build on processor 0 is the serial fraction that makes Barnes stop
scaling past 16 processors in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import WorkingSet
from repro.core import Program, Region, SharedArray
from repro.apps import kernels
from repro.apps.common import deterministic_rng, pick_scale

THETA = 0.6  # opening angle
US_PER_INTERACTION = 10.0  # one gravity interaction (the paper's
# 128K-body traversals are ~10x deeper; this keeps per-body work comparable)
US_PER_TREE_NODE = 8.0  # sequential tree construction per insertion
DT = 0.025
BODY_FIELDS = 9  # pos(3) + vel(3) + acc(3)
CELL_FIELDS = 16  # mass, com(3), half, children(8), body, padding(2)
CHUNK = 4  # bodies are handed out in interleaved chunks of this size


def default_params(scale: str = "small") -> Dict:
    """Scaled-down versions of the paper's 128K-body run."""
    sizes = {
        "tiny": dict(n_bodies=64, steps=2),
        "small": dict(n_bodies=1024, steps=2),
        "large": dict(n_bodies=2048, steps=2),
        # The octree build serializes in pure Python, so 4096 bodies is
        # the overnight ceiling (the paper runs 128K on real hardware).
        "xlarge": dict(n_bodies=4096, steps=3),
    }
    return pick_scale(sizes, scale)


@dataclass
class _Cell:
    """One Barnes-Hut octree cell (built privately, then published)."""

    center: np.ndarray
    half: float
    mass: float = 0.0
    com: np.ndarray = field(default_factory=lambda: np.zeros(3))
    children: List[Optional[int]] = field(default_factory=lambda: [None] * 8)
    body: Optional[int] = None  # leaf payload


def setup(space, params: Dict) -> Dict:
    n = params["n_bodies"]
    rng = deterministic_rng(params.get("seed", 1997))
    bodies = SharedArray.alloc(
        space, "barnes_bodies", np.float64, (n, BODY_FIELDS)
    )
    init = np.zeros((n, BODY_FIELDS))
    init[:, 0:3] = rng.random((n, 3)) * 2.0 - 1.0  # positions
    init[:, 3:6] = (rng.random((n, 3)) - 0.5) * 0.1  # velocities
    bodies.initialize(init)
    # The cell array: mass, com(3), half, children(8 indices), body,
    # padded to 16 doubles so 64 cells tile an 8 KB page exactly.  A
    # Barnes-Hut octree holds ~1.5 cells per body; 2.5x is headroom.
    max_cells = (5 * n) // 2
    cells = SharedArray.alloc(
        space, "barnes_cells", np.float64, (max_cells, CELL_FIELDS)
    )
    cells.initialize(np.zeros((max_cells, CELL_FIELDS)))
    masses = np.ones(n) / n
    return {"bodies": bodies, "cells": cells, "masses": masses, "max_cells": max_cells}


def _build_tree(positions: np.ndarray, masses: np.ndarray) -> List[_Cell]:
    """Sequential Barnes-Hut tree build; returns the flattened cells."""
    center = (positions.max(axis=0) + positions.min(axis=0)) / 2.0
    half = float((positions.max(axis=0) - positions.min(axis=0)).max()) / 2.0
    half = max(half, 1e-6) * 1.01
    cells: List[_Cell] = [_Cell(center=center.copy(), half=half)]

    def octant(cell: _Cell, pos: np.ndarray) -> int:
        index = 0
        for axis in range(3):
            if pos[axis] > cell.center[axis]:
                index |= 1 << axis
        return index

    def child_center(cell: _Cell, index: int) -> np.ndarray:
        offset = np.array(
            [
                cell.half / 2 if index & (1 << axis) else -cell.half / 2
                for axis in range(3)
            ]
        )
        return cell.center + offset

    def insert(cell_idx: int, body: int) -> None:
        cell = cells[cell_idx]
        if cell.body is None and all(c is None for c in cell.children):
            if cell.mass == 0.0:
                cell.body = body
                cell.mass = masses[body]
                cell.com = positions[body].copy()
                return
        if cell.body is not None:
            old = cell.body
            cell.body = None
            _push_down(cell_idx, old)
        _push_down(cell_idx, body)
        cell.mass += masses[body]

    def _push_down(cell_idx: int, body: int) -> None:
        cell = cells[cell_idx]
        index = octant(cell, positions[body])
        if cell.children[index] is None:
            child = _Cell(
                center=child_center(cell, index), half=cell.half / 2
            )
            cells.append(child)
            cell.children[index] = len(cells) - 1
        insert(cell.children[index], body)

    for body in range(len(positions)):
        root = cells[0]
        if root.body is None and all(c is None for c in root.children):
            if root.mass == 0.0:
                root.body = body
                root.mass = masses[body]
                root.com = positions[body].copy()
                continue
        insert(0, body)

    _summarize(cells, 0, positions, masses)
    return cells


def _summarize(cells: List[_Cell], idx: int, positions, masses) -> None:
    cell = cells[idx]
    if cell.body is not None:
        cell.mass = masses[cell.body]
        cell.com = positions[cell.body].copy()
        return
    total = 0.0
    com = np.zeros(3)
    for child_idx in cell.children:
        if child_idx is None:
            continue
        _summarize(cells, child_idx, positions, masses)
        child = cells[child_idx]
        total += child.mass
        com += child.mass * child.com
    cell.mass = total
    cell.com = com / total if total > 0 else cell.center.copy()


def _encode_cells(cells: List[_Cell], max_cells: int) -> np.ndarray:
    if len(cells) > max_cells:
        raise RuntimeError("cell array overflow; raise max_cells")
    out = np.zeros((max_cells, CELL_FIELDS))
    for i, cell in enumerate(cells):
        out[i, 0] = cell.mass
        out[i, 1:4] = cell.com
        out[i, 4] = cell.half
        out[i, 5:13] = [
            -1.0 if c is None else float(c) for c in cell.children
        ]
        out[i, 13] = -1.0 if cell.body is None else float(cell.body)
    return out


def _force_on(body: int, pos: np.ndarray, fetch_cell, masses):
    """Barnes-Hut traversal; ``fetch_cell`` is a generator that reads one
    cell record from the shared cell array, faulting pages on demand (the
    real program touches only the tree pages its traversals visit)."""
    force = np.zeros(3)
    interactions = 0
    stack = [0]
    while stack:
        idx = stack.pop()
        record = yield from fetch_cell(idx)
        mass = record[0]
        if mass <= 0.0:
            continue
        com = record[1:4]
        half = record[4]
        leaf_body = int(record[13])
        delta = com - pos
        dist2 = float(delta @ delta)
        if leaf_body >= 0:
            if leaf_body != body:
                interactions += 1
                force += mass * delta / (dist2 + 1e-4) ** 1.5
            continue
        if dist2 > 0 and (2 * half) ** 2 < THETA * THETA * dist2:
            interactions += 1
            force += mass * delta / (dist2 + 1e-4) ** 1.5
            continue
        for child in record[5:13]:
            if child >= 0:
                stack.append(int(child))
    return force, interactions


def _my_chunks(rank: int, nprocs: int, n: int) -> List[int]:
    """Interleaved chunk assignment (dynamic load balance stand-in that
    keeps the multi-writer false sharing of the real program)."""
    mine = []
    chunk_count = (n + CHUNK - 1) // CHUNK
    for chunk in range(rank, chunk_count, nprocs):
        mine.extend(
            range(chunk * CHUNK, min((chunk + 1) * CHUNK, n))
        )
    return mine


def worker(env, shared: Dict, params: Dict):
    n, steps = params["n_bodies"], params["steps"]
    bodies, cells = shared["bodies"], shared["cells"]
    masses, max_cells = shared["masses"], shared["max_cells"]
    mine = _my_chunks(env.rank, env.nprocs, n)
    ws = WorkingSet(primary=0)
    # Bulk regions over this rank's interleaved bodies, built once: the
    # acceleration columns (one segment per body), and the pos/vel
    # columns as *two* segments per body so the batched write replays
    # the scalar path's two write calls — and their per-span protocol
    # charges — exactly.
    acc_region = bodies.region_row_gather(mine, 6, 9)
    posvel_region = Region(
        bodies,
        [
            seg
            for b in mine
            for seg in ((b * BODY_FIELDS, 3), (b * BODY_FIELDS + 3, 3))
        ],
        (len(mine), 6),
    )
    for _ in range(steps):
        # Phase 1: sequential tree construction on processor 0.
        if env.rank == 0:
            all_bodies = yield from bodies.read_all(env)
            positions = all_bodies[:, 0:3]
            yield from env.compute(n * US_PER_TREE_NODE, polls=n)
            tree = _build_tree(positions, masses)
            encoded = _encode_cells(tree, max_cells)
            yield from cells.write_rows(env, 0, encoded)
        yield from env.barrier(0)

        # Phase 2: force computation on assigned bodies.  Tree pages
        # are demand-fetched by the traversals, as in the real program.
        # Fetch-blocking heuristic keyed on the VM page (not the sharing
        # unit): keeps the access pattern — and results — policy-invariant.
        page_rows = env.protocol.space.vm_page_size // (CELL_FIELDS * 8)
        cell_cache = {}

        def fetch_cell(idx):
            block = idx // page_rows
            rows = cell_cache.get(block)
            if rows is None:
                first = block * page_rows
                last = min(first + page_rows, max_cells)
                rows = yield from cells.read_rows(env, first, last)
                cell_cache[block] = rows
            return rows[idx - block * page_rows]

        all_bodies = yield from bodies.read_all(env)
        new_acc = {}
        for body in mine:
            # Compute interleaves with tree-page fetches, as in the real
            # traversal: remote requests land while this processor is
            # busy, which is where the interrupt-vs-polling gap lives.
            force, inter = yield from _force_on(
                body, all_bodies[body, 0:3], fetch_cell, masses
            )
            new_acc[body] = force / masses[body]
            yield from env.compute(
                inter * US_PER_INTERACTION, polls=max(inter, 1), ws=ws
            )
        if kernels.ENABLED and mine:
            acc_block = np.stack([new_acc[b] for b in mine])
            yield from bodies.write_region(env, acc_region, acc_block)
        else:
            for body in mine:
                yield from bodies.write_range(
                    env, body * BODY_FIELDS + 6, new_acc[body]
                )
        yield from env.barrier(0)

        # Phase 3: position/velocity update for assigned bodies.
        all_bodies = yield from bodies.read_all(env)
        yield from env.compute(len(mine) * 1.0, polls=len(mine))
        if kernels.ENABLED and mine:
            pos_block, vel_block = kernels.barnes_integrate(
                all_bodies, mine, DT
            )
            posvel = np.concatenate([pos_block, vel_block], axis=1)
            yield from bodies.write_region(env, posvel_region, posvel)
        else:
            for body in mine:
                vel = all_bodies[body, 3:6] + all_bodies[body, 6:9] * DT
                pos = all_bodies[body, 0:3] + vel * DT
                yield from bodies.write_range(env, body * BODY_FIELDS, pos)
                yield from bodies.write_range(
                    env, body * BODY_FIELDS + 3, vel
                )
        yield from env.barrier(0)
    env.stop_timer()
    if env.rank == 0:
        final = yield from bodies.read_all(env)
        return final
    return None


def program() -> Program:
    return Program(name="barnes", setup=setup, worker=worker)
