"""Registry of the paper's eight applications (Table 2 order)."""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple


class AppSpec(NamedTuple):
    """How the harness finds and scales one application."""

    name: str
    module: str
    paper_problem_size: str
    paper_sequential_seconds: float


# Table 2 of the paper: problem sizes and sequential execution times on
# one 233 MHz 21064A.  (Several numerals are OCR-damaged in the source
# text; values here are the commonly cited ones and are only used for
# side-by-side reporting, never for computation.)
APPS = (
    AppSpec("sor", "repro.apps.sor", "3072x4096 (50 MB)", 194.96),
    AppSpec("lu", "repro.apps.lu", "2046x2046 (33 MB)", 254.77),
    AppSpec("water", "repro.apps.water", "4096 mols (4 MB)", 1847.56),
    AppSpec("tsp", "repro.apps.tsp", "17 cities (1 MB)", 4036.95),
    AppSpec("gauss", "repro.apps.gauss", "2046x2046 (33 MB)", 953.71),
    AppSpec("ilink", "repro.apps.ilink", "CLP (15 MB)", 898.97),
    AppSpec("em3d", "repro.apps.em3d", "60646 nodes (49 MB)", 161.43),
    AppSpec("barnes", "repro.apps.barnes", "128K bodies (26 MB)", 469.43),
)

APP_NAMES = tuple(spec.name for spec in APPS)

# Post-paper extension workloads (PR 10+).  Kept out of ``APPS`` so the
# paper's tables, figures, and defaults keep iterating over exactly the
# Table 2 eight; extension apps are addressable everywhere an explicit
# app name is accepted (CLI, serving layer, study drivers).  The
# "sequential seconds" entry is a nominal figure for reporting only —
# these workloads have no paper column to reproduce.
EXTENSION_APPS = (
    AppSpec("irreg", "repro.apps.irreg", "4096 blocks (1 MB)", 120.0),
)

ALL_APP_NAMES = APP_NAMES + tuple(spec.name for spec in EXTENSION_APPS)


def load(name: str):
    """Import and return the app module for ``name``."""
    import importlib

    for spec in APPS + EXTENSION_APPS:
        if spec.name == name:
            return importlib.import_module(spec.module)
    raise ValueError(f"unknown application {name!r}; known: {ALL_APP_NAMES}")


def spec(name: str) -> AppSpec:
    for found in APPS + EXTENSION_APPS:
        if found.name == name:
            return found
    raise ValueError(f"unknown application {name!r}; known: {ALL_APP_NAMES}")
