"""Gauss: Gaussian elimination with cyclic row distribution
(paper Section 4.2).

"Each row of the matrix is the responsibility of a single processor.
For load balance, the rows are distributed among processors cyclically.
A synchronization flag for each row indicates when it is available to
other rows for use as a pivot."

Rows are padded to a page, as the paper's 2048-column rows occupy whole
pages.  Row ``k``'s flag is ``k`` and its owner is ``k % nprocs`` —
exactly the convention the TreadMarks flag implementation needs.

Section 4.3 attributes the large Cashmere/TreadMarks gap to cache
behaviour: the primary working set (pivot row + target row, plus the
doubled copy under Cashmere) shrinks as elimination proceeds and fits L1
"first for TreadMarks and at a later point for Cashmere"; the secondary
working set (each processor's remaining rows) eventually fits L2, giving
Cashmere a late jump that TreadMarks misses because twins and diffs
compete for the same space.  The working-set declarations below encode
precisely that analysis.

Back-substitution runs untimed on rank 0 after the final barrier: at
simulation scale its serial page fetches would dominate, whereas at the
paper's scale it is noise (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.config import WorkingSet
from repro.core import Program, SharedArray
from repro.apps import kernels
from repro.apps.common import deterministic_rng, pick_scale

US_PER_ELEM = 0.1  # one dependent multiply-subtract, memory bound

PAPER_N = 2046
PAPER_DATA_BYTES = 33 * 1024 * 1024  # Table 2: 33 MB


def cost_overrides(params: Dict) -> Dict:
    """Scale the cache sizes with the scaled-down problem.

    Gauss's paper behaviour is defined by where its working sets cross
    the cache boundaries (primary vs. 16 KB L1, per-processor data vs.
    1 MB L2).  Shrinking the matrix without shrinking the caches would
    erase those transitions, so the simulated caches shrink by the same
    ratios, keeping the crossover processor counts where the paper saw
    them (documented in DESIGN.md / EXPERIMENTS.md).
    """
    from repro.config import CostModel

    base = CostModel()
    n = params["n"]
    row_ratio = n / PAPER_N
    data_bytes = n * _padded_width(n, 8192) * 8
    data_ratio = data_bytes / PAPER_DATA_BYTES
    return {
        "l1_bytes": max(2048, int(base.l1_bytes * row_ratio)),
        "l2_bytes": max(32 * 1024, int(base.l2_bytes * data_ratio)),
    }


def default_params(scale: str = "small") -> Dict:
    """Scaled-down versions of the paper's 2046x2046 system."""
    sizes = {
        "tiny": dict(n=48),
        "small": dict(n=320),
        "large": dict(n=512),
        # The paper's full 2046x2046 system.
        "xlarge": dict(n=2046),
    }
    return pick_scale(sizes, scale)


def _padded_width(n: int, page_size: int) -> int:
    per_page = page_size // 8
    width = n + 1  # augmented column
    return ((width + per_page - 1) // per_page) * per_page


def setup(space, params: Dict) -> Dict:
    n = params["n"]
    # Pad to the VM page (not the sharing unit): data layout must not
    # vary with the granularity policy, or results would differ.
    width = _padded_width(n, space.vm_page_size)
    rng = deterministic_rng(params.get("seed", 1997))
    a = rng.random((n, n)) + np.eye(n) * n  # diagonally dominant
    b = rng.random(n)
    augmented = np.zeros((n, width))
    augmented[:, :n] = a
    augmented[:, n] = b
    matrix = SharedArray.alloc(space, "gauss_matrix", np.float64, (n, width))
    matrix.initialize(augmented)
    return {"matrix": matrix, "n": n, "width": width}


def _ws(n: int, k: int, rank_rows: int, row_bytes: int) -> WorkingSet:
    active = (n - k) * 8  # live portion of one row
    return WorkingSet(
        primary=2 * active,  # pivot row + target row
        doubled=active,  # MC copy of the row being eliminated
        secondary=rank_rows * row_bytes,  # my remaining rows
        twin_l2=(rank_rows * row_bytes) // 2,  # twins + diff cache
    )


def worker(env, shared: Dict, params: Dict):
    n, width = params["n"], shared["width"]
    matrix = shared["matrix"]
    rank, nprocs = env.rank, env.nprocs
    row_bytes = width * 8
    # Local cache of rows already read; rows never change after their
    # flag is set, so this mirrors what stays in local memory.
    mine = {
        r: None for r in range(rank, n, nprocs)
    }
    # Vectorized-path mirror of this rank's rows.  Each row has exactly
    # one writer (this rank), so once gathered hot the mirror always
    # equals shared memory, and the pages it shadows can never be
    # invalidated (no other processor ever produces write notices for
    # them) — skipping the re-read each round drops only reads that
    # would have been event-free hot hits.  ``mirror_rows`` is the
    # ascending row list the mirror covers; each round's ``my_rows`` is
    # a suffix of it.
    mirror = None
    mirror_rows = None
    # Loop-invariant gather geometry, hoisted out of the pivot loop
    # (ROADMAP "profiled micro-levers"): each step's region covers a
    # suffix of this rank's ascending row list with a sliding column
    # window, so the per-row byte bases are computed once up front and
    # ``my_rows`` advances by pointer instead of a fresh O(rows)
    # comprehension per pivot.
    rows_list = list(mine)  # ascending: range(rank, n, nprocs) order
    gather = matrix.row_gather(rows_list)
    next_idx = 0  # first entry of rows_list still > k
    for k in range(n - 1):
        owner = k % nprocs
        if owner == rank:
            yield from env.flag_set(k)
        else:
            yield from env.flag_wait(k)
        pivot = matrix.rows(env, k, k + 1)  # hot: no generator frame
        if pivot is None:
            pivot = yield from matrix.read_rows(env, k, k + 1)
        pivot = pivot[0]
        while next_idx < len(rows_list) and rows_list[next_idx] <= k:
            next_idx += 1
        my_rows = rows_list[next_idx:]
        if not my_rows:
            continue
        rank_rows = len(my_rows)
        elems = kernels.gauss_elim_elems(rank_rows, n, k)
        yield from env.compute(
            elems * US_PER_ELEM,
            polls=elems,
            ws=_ws(n, k, rank_rows, row_bytes),
        )
        if kernels.ENABLED:
            if mirror is None:
                # One hot gather of my full remaining rows seeds the
                # mirror.  A miss (cold page, or fastpath disabled)
                # leaves it unseeded and this round runs the scalar
                # loop below — bit-identical fault replay — until a
                # later round gathers hot.
                got = matrix.region_view(env, gather.region(next_idx))
                if got is not None:
                    mirror = np.array(got)  # writable copy
                    mirror_rows = my_rows
            if mirror is not None:
                # One kernel call over a strided slice of the mirror,
                # then one region write of the live columns — same
                # per-row [k, n] segments, same row order, as the
                # scalar loop's write_range calls.
                i0 = len(mirror_rows) - rank_rows
                block = mirror[i0:, k : n + 1]
                updated = kernels.gauss_eliminate(block, pivot, k, n)
                yield from matrix.write_region(
                    env, gather.region(next_idx, k, n + 1), updated
                )
                block[:] = updated
                continue
        for r in my_rows:
            current = matrix.rows(env, r, r + 1)
            if current is None:
                current = yield from matrix.read_rows(env, r, r + 1)
            current = current[0]
            factor = current[k] / pivot[k]
            updated = current[k : n + 1] - factor * pivot[k : n + 1]
            updated[0] = 0.0
            # Only the active columns [k, n] change; columns left of the
            # pivot are already zero and the padding is never touched.
            yield from matrix.write_range(
                env, r * width + k, updated
            )
    yield from env.barrier(0)
    env.stop_timer()
    if rank == 0:
        # Untimed back-substitution and verification gather.
        final = yield from matrix.read_all(env)
        x = _back_substitute(final[:, : n + 1])
        return x, final[:, : n + 1]
    return None


def _back_substitute(aug: np.ndarray) -> np.ndarray:
    n = len(aug)
    x = np.zeros(n)
    for i in range(n - 1, -1, -1):
        x[i] = (aug[i, n] - aug[i, i + 1 : n] @ x[i + 1 :]) / aug[i, i]
    return x


def reference(params: Dict) -> np.ndarray:
    """Direct NumPy solution of the same system."""
    rng = deterministic_rng(params.get("seed", 1997))
    n = params["n"]
    a = rng.random((n, n)) + np.eye(n) * n
    b = rng.random(n)
    return np.linalg.solve(a, b)


def program() -> Program:
    return Program(name="gauss", setup=setup, worker=worker)
