"""Vectorized application kernels over the bulk region API.

Post-PR4 profiles put the flat-profile lead inside the *application
workers*: lu/gauss drive :class:`~repro.core.runtime.shared.SharedArray`
one row (or one element) at a time even though the paper's kernels —
SPLASH-2 blocked LU, banded red/black SOR, cyclically-distributed Gauss
elimination — are dense block/row operations under a single per-flop
cost model.  This module is the compute half of the fix: one vectorized
numpy implementation of each app's inner loop, paired with the region
half (``SharedArray.read_region`` / ``write_region`` / ``region_view``)
that moves the same bytes with one gather/scatter.

**Bitwise contract.**  Every kernel produces *bit-identical* output to
the scalar reference loop retained in its app module: the same IEEE
operations in the same per-element order, only batched across rows
instead of dispatched per row.  This is load-bearing, not cosmetic —
kernel output is written back into DSM shared memory, where TreadMarks
diffs it byte-by-byte against twins; a single differing low bit would
change diff sizes, message bytes, and therefore simulated times.  The
equivalence tests in ``tests/test_app_kernels.py`` pin kernel-vs-scalar
equality with ``==``, never ``allclose``.

**Flop charging.**  Simulated compute time is charged through one hook,
:func:`flop_cost`: a kernel invocation costs ``flops * us_per_flop``
microseconds, with the flop count given by the ``*_flops`` helpers
below — the exact expressions the scalar loops charged, so charge
totals (and hence simulated results) are identical with the kernel
layer on or off.

**Escape hatch.**  ``SimOptions(kernels=False)`` — the CLI's
``--no-kernels`` flag or the deprecated ``REPRO_DSM_NO_KERNELS=1``
alias — restores the per-element scalar reference loops in every app.
Simulated stats, counters, and traces are bit-identical either way
(locked in by ``tests/test_engine_equivalence.py``); only wall clock
differs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro import options as _options

#: Module-level switch, mirrored from :mod:`repro.options` exactly like
#: ``repro.core.fastpath.ENABLED`` — the app workers probe a plain
#: global per phase instead of consulting the options object.
_initial = _options.current()
ENABLED = _initial.kernels


def set_enabled(flag: bool) -> None:
    """Toggle the kernel layer in-process (benchmarks and tests)."""
    global ENABLED
    ENABLED = bool(flag)


# ---------------------------------------------------------------------------
# flop accounting — the single charging hook
# ---------------------------------------------------------------------------


def flop_cost(flops: float, us_per_flop: float) -> float:
    """Simulated microseconds charged for one kernel invocation.

    Every kernel call charges ``flops * us_per_flop``; the ``*_flops``
    helpers below reproduce the scalar loops' expressions exactly, so
    the charge stream is unchanged by the kernel layer.
    """
    return flops * us_per_flop


def lu_diag_flops(block: int) -> float:
    """Unpivoted LU of one ``block x block`` block."""
    return float(block) ** 3 / 3


def lu_perimeter_flops(block: int) -> float:
    """One triangular solve of a perimeter block."""
    return float(block) ** 3 / 2


def lu_interior_flops(block: int) -> float:
    """One interior rank-``block`` update (dgemm)."""
    return 2 * float(block) ** 3


def gauss_elim_elems(rank_rows: int, n: int, k: int) -> int:
    """Dependent multiply-subtracts in one elimination round."""
    return rank_rows * (n - k)


def sor_cells(rows: int, half: int) -> int:
    """Stencil cells updated in one red/black half-sweep."""
    return rows * half


# ---------------------------------------------------------------------------
# LU — blocked dense factorization (dgemm/trsm-shaped block kernels)
# ---------------------------------------------------------------------------
#
# The per-column recurrences are inherently sequential, so these stay
# column loops — but with the broadcasted product written out directly
# (``col[:, None] * row``) instead of ``np.outer``'s
# asarray/ravel/reshape detour, and the copy taken once up front.  The
# multiplies, divides, and subtracts are the same IEEE ops on the same
# operands in the same order as the scalar references in ``apps/lu.py``.


def lu_factor_diag(a: np.ndarray) -> np.ndarray:
    """Unpivoted LU of one block, L and U packed together.

    Bit-identical to ``repro.apps.lu._factor_diag``.
    """
    lu = np.array(a)  # fresh writable copy (a may be a read-only view)
    n = lu.shape[0]
    for i in range(n):
        col = lu[i + 1 :, i]
        col /= lu[i, i]
        lu[i + 1 :, i + 1 :] -= col[:, None] * lu[i, i + 1 :]
    return lu


def lu_solve_col(a: np.ndarray, diag_lu: np.ndarray) -> np.ndarray:
    """A := A @ U^-1 — bit-identical to ``apps.lu._solve_col``."""
    out = np.array(a)
    n = out.shape[0]
    for j in range(n):
        col = out[:, j]
        col /= diag_lu[j, j]
        out[:, j + 1 :] -= col[:, None] * diag_lu[j, j + 1 :]
    return out


def lu_solve_row(a: np.ndarray, diag_lu: np.ndarray) -> np.ndarray:
    """A := L^-1 @ A — bit-identical to ``apps.lu._solve_row``."""
    out = np.array(a)
    n = out.shape[0]
    for i in range(n):
        out[i + 1 :, :] -= diag_lu[i + 1 :, i][:, None] * out[i, :]
    return out


def lu_interior_update(
    mine: np.ndarray, col: np.ndarray, row: np.ndarray
) -> np.ndarray:
    """A[i][j] -= L[i][k] @ U[k][j] (the dgemm phase)."""
    return mine - col @ row


# ---------------------------------------------------------------------------
# Gauss — one elimination round over all of a processor's rows at once
# ---------------------------------------------------------------------------


def gauss_eliminate(
    block: np.ndarray, pivot: np.ndarray, k: int, n: int
) -> np.ndarray:
    """Eliminate column ``k`` from every row of ``block``.

    ``block`` holds the **live columns** ``[k, n]`` of a processor's
    remaining rows (in flag order); ``pivot`` is row ``k`` (full
    width).  Returns the updated live columns for every row —
    elementwise the same divide/multiply/subtract the scalar per-row
    loop performs, batched over rows.
    """
    live = pivot[k : n + 1]
    factors = block[:, 0] / pivot[k]
    updated = block - factors[:, None] * live
    updated[:, 0] = 0.0  # the eliminated column is exactly zero
    return updated


def gauss_back_substitute(aug: np.ndarray) -> np.ndarray:
    """Back-substitution over the upper-triangular augmented system."""
    n = len(aug)
    x = np.zeros(n)
    for i in range(n - 1, -1, -1):
        x[i] = (aug[i, n] - aug[i, i + 1 : n] @ x[i + 1 :]) / aug[i, i]
    return x


# ---------------------------------------------------------------------------
# SOR — 5-point red/black stencil over one band
# ---------------------------------------------------------------------------


def sor_phase_update(other_halo: np.ndarray) -> np.ndarray:
    """One red/black half-sweep for a band (bit-identical to
    ``apps.sor._phase_update``)."""
    up = other_halo[:-2]
    mid = other_halo[1:-1]
    down = other_halo[2:]
    right = np.roll(mid, -1, axis=1)
    return 0.25 * (up + down + mid + right)


# ---------------------------------------------------------------------------
# Water — pairwise Lennard-Jones forces and integration
# ---------------------------------------------------------------------------
#
# The force accumulation order is semantically load-bearing (float adds
# do not reassociate), so the kernel keeps the per-molecule accumulation
# loop of the scalar reference and batches only the per-pair vector
# math, which was already vectorized per row.


def water_pair_forces(
    my_pos: np.ndarray, lo: int, all_pos: np.ndarray
) -> np.ndarray:
    """Forces from pairs (i, j) with i in my chunk and j > i.

    Bit-identical to ``apps.water._pair_forces``.
    """
    n = len(all_pos)
    contrib = np.zeros_like(all_pos)
    for local_i, i in enumerate(range(lo, lo + len(my_pos))):
        if i + 1 >= n:
            continue
        delta = all_pos[i + 1 :] - my_pos[local_i]
        r2 = np.maximum((delta * delta).sum(axis=1), 0.25)
        inv6 = 1.0 / (r2 * r2 * r2)
        magnitude = (24.0 * inv6 * (2.0 * inv6 - 1.0) / r2)[:, np.newaxis]
        pair = magnitude * delta
        contrib[i + 1 :] += pair
        contrib[i] -= pair.sum(axis=0)
    return contrib


def water_integrate(
    pos: np.ndarray, vel: np.ndarray, force: np.ndarray, dt: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Velocity/position update for a chunk: ``(new_vel, new_pos)``."""
    new_vel = vel + force * dt
    new_pos = pos + new_vel * dt
    return new_vel, new_pos


# ---------------------------------------------------------------------------
# Barnes — leapfrog integration over a processor's interleaved chunks
# ---------------------------------------------------------------------------


def barnes_integrate(
    bodies: np.ndarray, mine: Sequence[int], dt: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Position/velocity update for the bodies in ``mine``.

    ``bodies`` is the full (n, 9) body array; returns ``(pos, vel)``
    blocks in ``mine`` order — elementwise the per-body update of the
    scalar loop, batched with one fancy-index gather.
    """
    sel = bodies[np.asarray(mine, dtype=np.intp)]
    vel = sel[:, 3:6] + sel[:, 6:9] * dt
    pos = sel[:, 0:3] + vel * dt
    return pos, vel


# ---------------------------------------------------------------------------
# Em3d — weighted dependency gather/update for one node band
# ---------------------------------------------------------------------------


def em3d_gather(
    window: np.ndarray,
    full,
    my_targets: np.ndarray,
    inside_mask: np.ndarray,
    rlo: int,
    rhi: int,
) -> np.ndarray:
    """Dependency values for a band, drawn from the halo ``window`` (or
    the ``full`` array for the few ring-wrapped dependencies)."""
    gathered = np.where(
        inside_mask,
        window[np.clip(my_targets - rlo, 0, rhi - rlo - 1)],
        0.0,
    )
    if full is not None:
        gathered = np.where(inside_mask, gathered, full[my_targets])
    return gathered


def em3d_update(
    current: np.ndarray, my_weights: np.ndarray, gathered: np.ndarray
) -> np.ndarray:
    """One band update: subtract the weighted dependency sum."""
    return current - (my_weights * gathered).sum(axis=1)


# ---------------------------------------------------------------------------
# Ilink — sparse genotype recurrence and the master's pool reduction
# ---------------------------------------------------------------------------


def ilink_update(values: np.ndarray, it: int) -> np.ndarray:
    """The genotype-probability recurrence over one row's sparse slots."""
    return 0.25 * values + 0.5 * values * values + 0.01 * (it + 1)


def ilink_reduce(pool_rows: np.ndarray) -> np.ndarray:
    """Per-array sums of the whole pool (the master's serial phase)."""
    return np.stack([row.sum() for row in pool_rows])


# ---------------------------------------------------------------------------
# TSP — branch-and-bound search (inherently scalar: data-dependent
# control flow).  The kernel layer hosts the search so all compute
# implementations live in one place; the app module retains the scalar
# reference these are pinned against.
# ---------------------------------------------------------------------------


def tsp_lower_bound(d: np.ndarray, path: List[int], length: float) -> float:
    """Partial length plus the cheapest continuation edge per open city.

    Bit-identical to ``apps.tsp._lower_bound``: ``min`` is exact, and
    the accumulation order over cities is preserved.
    """
    c = len(d)
    remaining = [i for i in range(c) if i not in path]
    bound = length
    for city in remaining + [path[-1]]:
        choices = [d[city][j] for j in remaining + [path[0]] if j != city]
        if choices:
            bound += min(choices)
    return bound


def tsp_dfs_solve(d, path, length, best_len):
    """Branch-and-bound DFS under a node: ``(best, path, nodes)``.

    Bit-identical to ``apps.tsp._dfs_solve`` — same visit order, same
    pruning comparisons, so the node count (which is charged simulated
    time) is unchanged.
    """
    c = len(d)
    min_edge = [min(d[i][j] for j in range(c) if j != i) for i in range(c)]
    remaining = frozenset(range(c)) - frozenset(path)
    state = {"best": best_len, "path": None, "nodes": 0}
    stack = list(path)

    def descend(last, rem, total):
        state["nodes"] += 1
        if not rem:
            final = total + d[last][path[0]]
            if final < state["best"]:
                state["best"] = final
                state["path"] = list(stack)
            return
        optimistic = total + sum(min_edge[city] for city in rem)
        if optimistic >= state["best"]:
            return
        for city in sorted(rem, key=lambda j: d[last][j]):
            extended = total + d[last][city]
            if extended >= state["best"]:
                continue
            stack.append(city)
            descend(city, rem - {city}, extended)
            stack.pop()

    descend(path[-1], remaining, length)
    return state["best"], state["path"], state["nodes"]
