"""LU: blocked dense LU factorization from SPLASH-2 (paper Section 4.2).

"The matrix A is divided into square blocks for temporal and spatial
locality.  Each block is owned by a particular processor, which performs
all computation on it."

The matrix is stored block-contiguous, so with the paper's 32x32 blocks
one block is exactly one 8 KB page.  The paper traces Cashmere's poor LU
performance to write doubling pushing the 16 KB primary working set out
of the 21064A's first-level cache (Section 4.3), which the working-set
declaration below reproduces.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.config import WorkingSet
from repro.core import Program, SharedArray
from repro.apps import kernels
from repro.apps.common import deterministic_rng, pick_scale

# Per-flop cost of the blocked kernels (dgemm-like inner loops, cache
# resident on a 233 MHz 21064A).
US_PER_FLOP = 0.03


def default_params(scale: str = "small") -> Dict:
    """Scaled-down versions of the paper's 2048x2048, 32x32-block run."""
    sizes = {
        "tiny": dict(n=64, block=16),
        "small": dict(n=512, block=32),
        "large": dict(n=768, block=32),
        # The paper's full 2048x2048 matrix with 32x32 blocks.
        "xlarge": dict(n=2048, block=32),
    }
    return pick_scale(sizes, scale)


def _owner(bi: int, bj: int, nblocks: int, nprocs: int) -> int:
    """2D scatter ownership, as in SPLASH-2."""
    return (bi * nblocks + bj) % nprocs


def _working_set(block: int) -> WorkingSet:
    """The paper's analysis: primary working set is two blocks (the
    destination block plus a source block); doubling adds the MC copy of
    the destination block."""
    block_bytes = block * block * 8
    return WorkingSet(
        primary=2 * block_bytes,
        doubled=block_bytes,
        twin=0,  # twins are touched once per interval, not per inner loop
    )


def setup(space, params: Dict) -> Dict:
    n, block = params["n"], params["block"]
    if n % block:
        raise ValueError("matrix size must be a multiple of the block size")
    nb = n // block
    rng = deterministic_rng(params.get("seed", 1997))
    # Diagonally dominant so the factorization needs no pivoting.
    dense = rng.random((n, n)) + np.eye(n) * n
    blocked = (
        dense.reshape(nb, block, nb, block).swapaxes(1, 2).copy()
    )  # [bi][bj][i][j], each block contiguous
    matrix = SharedArray.alloc(
        space, "lu_matrix", np.float64, (nb * nb, block * block)
    )
    matrix.initialize(blocked.reshape(nb * nb, block * block))
    return {"matrix": matrix, "dense": dense}


def _block_row(nb: int, bi: int, bj: int) -> int:
    return bi * nb + bj


def worker(env, shared: Dict, params: Dict):
    n, block = params["n"], params["block"]
    nb = n // block
    matrix = shared["matrix"]
    ws = _working_set(block)
    if kernels.ENABLED:
        # The kernels are bit-identical to the scalar helpers below
        # (same IEEE ops, same order) with ``np.outer``'s
        # asarray/ravel detour replaced by direct broadcasting, and
        # they copy their input up front, so they accept the read-only
        # zero-copy block views from ``region_view``.
        factor_diag = kernels.lu_factor_diag
        solve_col = kernels.lu_solve_col
        solve_row = kernels.lu_solve_row
        interior_update = kernels.lu_interior_update
    else:
        factor_diag = _factor_diag
        solve_col = _solve_col
        solve_row = _solve_row
        interior_update = _interior_update

    block_regions = {}  # row -> Region, page spans computed once
    view_missed = set()  # rows whose region_view probe missed once

    def read_block(bi, bj):
        row = _block_row(nb, bi, bj)
        if kernels.ENABLED and row not in view_missed:
            # Hot hit: a read-only zero-copy view of the block's page
            # (one block is page-contiguous).  Blocks are only written
            # in a *different* phase from every read of them, with
            # barriers between, so a view taken here holds stable bytes
            # for as long as the caller keeps it.  Remote blocks are
            # re-invalidated every step, so after the first miss the
            # probe can never pay off — skip it from then on (the view
            # is event-free, so skipping it cannot change the
            # simulation).
            reg = block_regions.get(row)
            if reg is None:
                reg = block_regions[row] = matrix.region_rows(row, row + 1)
            view = matrix.region_view(env, reg)
            if view is not None:
                return view.reshape(block, block)
            view_missed.add(row)
        rows = matrix.rows(env, row, row + 1)  # hot: no generator frame
        if rows is None:
            rows = yield from matrix.read_rows(env, row, row + 1)
        return rows.reshape(block, block)

    def write_block(bi, bj, data):
        yield from matrix.write_rows(
            env, _block_row(nb, bi, bj), data.reshape(1, block * block)
        )

    for k in range(nb):
        # Phase 1: the diagonal block's owner factors it in place.
        if _owner(k, k, nb, env.nprocs) == env.rank:
            diag = yield from read_block(k, k)
            yield from env.compute(
                kernels.flop_cost(kernels.lu_diag_flops(block), US_PER_FLOP),
                polls=block * block,
                ws=ws,
            )
            lu = factor_diag(diag)
            yield from write_block(k, k, lu)
        yield from env.barrier(0)

        # Phase 2: perimeter blocks (row k and column k).
        diag = None
        for bi in range(k + 1, nb):
            if _owner(bi, k, nb, env.nprocs) == env.rank:
                if diag is None:
                    diag = yield from read_block(k, k)
                mine = yield from read_block(bi, k)
                yield from env.compute(
                    kernels.flop_cost(
                        kernels.lu_perimeter_flops(block), US_PER_FLOP
                    ),
                    polls=block * block,
                    ws=ws,
                )
                yield from write_block(bi, k, solve_col(mine, diag))
            if _owner(k, bi, nb, env.nprocs) == env.rank:
                if diag is None:
                    diag = yield from read_block(k, k)
                mine = yield from read_block(k, bi)
                yield from env.compute(
                    kernels.flop_cost(
                        kernels.lu_perimeter_flops(block), US_PER_FLOP
                    ),
                    polls=block * block,
                    ws=ws,
                )
                yield from write_block(k, bi, solve_row(mine, diag))
        yield from env.barrier(0)

        # Phase 3: interior update A[i][j] -= L[i][k] @ U[k][j].
        col_cache = {}
        row_cache = {}
        for bi in range(k + 1, nb):
            for bj in range(k + 1, nb):
                if _owner(bi, bj, nb, env.nprocs) != env.rank:
                    continue
                if bi not in col_cache:
                    col_cache[bi] = yield from read_block(bi, k)
                if bj not in row_cache:
                    row_cache[bj] = yield from read_block(k, bj)
                mine = yield from read_block(bi, bj)
                yield from env.compute(
                    kernels.flop_cost(
                        kernels.lu_interior_flops(block), US_PER_FLOP
                    ),
                    polls=block * block,
                    ws=ws,
                )
                updated = interior_update(mine, col_cache[bi], row_cache[bj])
                yield from write_block(bi, bj, updated)
        yield from env.barrier(0)
    env.stop_timer()
    if env.rank == 0:
        final = yield from matrix.read_all(env)
        return final
    return None


def _factor_diag(a: np.ndarray) -> np.ndarray:
    """Unpivoted LU of one block, L and U packed together."""
    lu = a.copy()
    n = len(lu)
    for i in range(n):
        lu[i + 1 :, i] /= lu[i, i]
        lu[i + 1 :, i + 1 :] -= np.outer(lu[i + 1 :, i], lu[i, i + 1 :])
    return lu


def _solve_col(a: np.ndarray, diag_lu: np.ndarray) -> np.ndarray:
    """A := A @ U^-1 (column-perimeter triangular solve)."""
    n = len(a)
    out = a.copy()
    for j in range(n):
        out[:, j] /= diag_lu[j, j]
        out[:, j + 1 :] -= np.outer(out[:, j], diag_lu[j, j + 1 :])
    return out


def _solve_row(a: np.ndarray, diag_lu: np.ndarray) -> np.ndarray:
    """A := L^-1 @ A (row-perimeter triangular solve)."""
    n = len(a)
    out = a.copy()
    for i in range(n):
        out[i + 1 :, :] -= np.outer(diag_lu[i + 1 :, i], out[i, :])
    return out


def _interior_update(
    mine: np.ndarray, col: np.ndarray, row: np.ndarray
) -> np.ndarray:
    """A[i][j] -= L[i][k] @ U[k][j] (the dgemm phase)."""
    return mine - col @ row


def program() -> Program:
    return Program(name="lu", setup=setup, worker=worker)
