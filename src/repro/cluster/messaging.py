"""Request/response messaging over the Memory Channel (or kernel UDP).

TreadMarks uses this layer for everything (it treats the Memory Channel
purely as a fast messaging system); Cashmere uses it only for page-fetch
requests, since directories, locks and write notices travel as plain
remote writes.

Two transports are modelled (Section 3.4):

* ``MEMORY_CHANNEL`` — user-level message buffers in MC space; when the
  two processes share a node the buffers live in ordinary shared memory
  and never touch the network.
* ``UDP`` — DEC's kernel-level UDP over MC: the same wire, plus a kernel
  crossing on each end of every message.

Requests are delivered into the target processor's mailbox; the reply
path never needs an interrupt because requesters spin (and service other
incoming requests re-entrantly while they spin).
"""

from __future__ import annotations

import itertools
from typing import Any, Generator

from repro.config import CostModel, Transport
from repro.cluster.machine import Cluster, Processor
from repro.cluster.network import NetworkModel
from repro.sim import Engine, Event
from repro.stats import Category

LOCAL_MSG_LATENCY = 1.0  # us; same-node buffers in hardware-coherent memory


class Request:
    """One in-flight request, awaiting a reply.

    Slotted, with its delivery target and reply payload carried in the
    object itself: the wire-delay continuations are plain module
    functions taking the request as their argument, so the send path
    allocates no per-message dict or closure (PR 4 hot-path overhaul —
    this request/reply machinery dominates ``gauss`` Cashmere runs).
    """

    __slots__ = (
        "kind",
        "requester",
        "payload",
        "size",
        "reply_event",
        "seq",
        "replied",
        "_target",
        "_reply_payload",
    )

    def __init__(
        self,
        kind: str,
        requester: Processor,
        payload: Any,
        size: int,
        reply_event: Event,
        seq: int = 0,
        replied: bool = False,
    ):
        self.kind = kind
        self.requester = requester
        self.payload = payload
        self.size = size
        self.reply_event = reply_event
        self.seq = seq
        self.replied = replied
        self._target: Processor = None
        self._reply_payload: Any = None

    def __repr__(self) -> str:
        return f"<Request #{self.seq} {self.kind} from p{self.requester.pid}>"


def _deliver(request: Request) -> None:
    """Wire-delay continuation: the request lands at its target."""
    request._target.deliver(request)


def _land_reply(request: Request) -> None:
    """Wire-delay continuation: the reply reaches the requester."""
    event = request.reply_event
    if not event.triggered:
        event.succeed(request._reply_payload)


class Messenger:
    """Sends requests and replies, charging CPU and wire costs."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        network: NetworkModel,
        costs: CostModel,
        transport: Transport,
    ):
        self.engine = engine
        self.cluster = cluster
        self.network = network
        self.costs = costs
        self.transport = transport
        self._seq = itertools.count(1)
        # Per-message constants, resolved once (the transport and the
        # network backend never change after construction).  The backend
        # decides what a message costs in CPU terms — a kernel crossing
        # on Ethernet, a verbs doorbell on RDMA, a user-level buffer
        # copy on the Memory Channel (plus a kernel crossing under UDP).
        self._cpu_per_msg, self._recv_cpu = network.msg_cpus(transport)

    # -- cost helpers ------------------------------------------------------

    def _wire(self, src: Processor, dst: Processor, nbytes: int) -> float:
        """Absolute sim time at which ``nbytes`` land at ``dst``."""
        if src.node is dst.node:
            return self.engine.now + LOCAL_MSG_LATENCY
        return self.network.write(src.node.nid, nbytes, dst_node=dst.node.nid)

    # -- request / reply ------------------------------------------------------

    def post_request(
        self,
        src: Processor,
        dst: Processor,
        kind: str,
        payload: Any = None,
        size: int = 0,
    ) -> Generator[Event, Any, Request]:
        """Send a request to ``dst`` and return the in-flight Request.

        The caller decides when (and whether) to block on
        ``request.reply_event`` — Cashmere and TreadMarks both overlap
        multiple outstanding requests at a fault.
        """
        request = Request(
            kind=kind,
            requester=src,
            payload=payload,
            size=size,
            reply_event=self.engine.event(),
            seq=next(self._seq),
        )
        nbytes = size + self.costs.msg_header
        marshal = 0.5 * self.costs.memcpy_cost(size)
        cpu = self._cpu_per_msg + marshal
        if cpu > 0:  # inlined Processor.busy: one frame fewer per send
            yield cpu
            src.charge(Category.PROTOCOL, cpu)
        src.bump("messages")
        src.bump("data_bytes", nbytes)
        arrive = self._wire(src, dst, nbytes)
        request._target = dst
        self.engine.schedule(
            max(arrive, self.engine.now) + self._recv_cpu, _deliver, request
        )
        return request

    def request(
        self,
        src: Processor,
        dst: Processor,
        kind: str,
        payload: Any = None,
        size: int = 0,
    ) -> Generator[Event, Any, Any]:
        """Send a request and spin until the reply arrives."""
        req = yield from self.post_request(src, dst, kind, payload, size)
        return (yield from src.wait(req.reply_event))

    def reply(
        self,
        servicer: Processor,
        request: Request,
        payload: Any = None,
        size: int = 0,
    ) -> Generator[Event, Any, None]:
        """Send the reply for ``request`` from ``servicer``."""
        if request.replied:
            raise RuntimeError(f"{request!r} already replied")
        request.replied = True
        nbytes = size + self.costs.msg_header
        # Marshalling the payload into the transmit region moves it
        # across the server's bus once (the Memory Channel has no remote
        # reads, so data always flows through a CPU; payloads such as
        # fresh diffs are cache-hot).  Handlers serving *cold* data add
        # the read pass themselves.
        marshal = 0.5 * self.costs.memcpy_cost(size)
        cpu = self._cpu_per_msg + marshal
        if cpu > 0:  # inlined Processor.busy
            yield cpu
            servicer.charge(Category.PROTOCOL, cpu)
        servicer.bump("messages")
        servicer.bump("data_bytes", nbytes)
        arrive = self._wire(servicer, request.requester, nbytes)
        request._reply_payload = payload
        self.engine.schedule(
            max(arrive, self.engine.now), _land_reply, request
        )

    def forward(
        self,
        via: Processor,
        dst: Processor,
        request: Request,
        extra_bytes: int = 0,
    ) -> Generator[Event, Any, None]:
        """Forward an in-flight request to another processor (TreadMarks
        lock requests go manager -> current owner)."""
        nbytes = request.size + extra_bytes + self.costs.msg_header
        cpu = self._cpu_per_msg
        if cpu > 0:  # inlined Processor.busy
            yield cpu
            via.charge(Category.PROTOCOL, cpu)
        via.bump("messages")
        via.bump("data_bytes", nbytes)
        arrive = self._wire(via, dst, nbytes)
        request._target = dst
        self.engine.schedule(
            max(arrive, self.engine.now) + self._recv_cpu, _deliver, request
        )
