"""Interconnect timing models behind the :class:`NetworkModel` interface.

The paper's entire argument rests on the constants of one device — DEC's
Memory Channel (~5 us user-level remote *writes*, no remote reads,
~30 MB/s links).  To let the reproduction ask whether its conclusions
survive on other networks, the timing model is an interface with three
backends (``RunConfig.network`` / ``--network`` select one):

``memch``
    The paper's first-generation Memory Channel (Section 3.1):
    user-level remote writes only, totally ordered, broadcast-capable,
    link bandwidth limited by the 32-bit PCI bus and aggregate bandwidth
    by the early device driver.  The default, and bit-identical to the
    pre-interface model.

``rdma``
    A modern RDMA/InfiniBand-class fabric (constants per the
    "User-level DSM System for Modern High-Performance Interconnection
    Networks" direction in PAPERS.md): user-level one-sided remote
    *reads and writes* at ~1-2 us, ~50 Gbit/s per link, a non-blocking
    switch, and per-queue-pair occupancy accounting.

``ethernet``
    Commodity switched Ethernet under kernel TCP/IP at the other
    extreme: tens-of-microseconds one-way latency, ~100 Mbit/s links,
    and a kernel crossing (CPU cost) on each end of every message.

All ``write``/``read`` methods return the simulated time at which the
data is visible at the destination; they also advance the internal
busy-until bookkeeping.  The caller charges CPU time separately — the
network model accounts only for the wire (per-message CPU constants are
*exposed* here via :meth:`NetworkModel.msg_cpus` but charged by the
messaging layer).

Backend constants are catalogued by :meth:`NetworkModel.describe`;
``docs/NETWORKS.md`` documents every backend and
``tests/test_network_docs.py`` keeps the two in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import ClusterConfig, CostModel, NETWORK_BACKENDS, Transport


@dataclass
class LinkUsage:
    """Aggregate traffic accounting for one transmit link."""

    bytes_sent: int = 0
    transfers: int = 0


class NetworkModel:
    """Occupancy-based interconnect timing model (abstract base).

    The contract every backend implements:

    * :meth:`write` — schedule ``nbytes`` from ``src_node``; return the
      absolute sim time the data is visible at the destination(s).
      ``dst_node`` (when the caller knows it) lets point-to-point
      fabrics account per-destination occupancy; broadcast-capable
      fabrics may ignore it.
    * :meth:`read` — one-sided remote read: ``src_node`` pulls
      ``nbytes`` out of ``from_node``'s memory with **no remote CPU
      involvement**.  Only backends with ``remote_reads = True``
      implement it; others raise ``RuntimeError``.
    * :meth:`flush_time` — sim time at which every write issued so far
      from ``src_node`` has drained (release write-through waits).
    * :meth:`msg_cpus` — the per-message ``(send_cpu, recv_cpu)``
      microseconds the request/reply messaging layer must charge on
      this fabric for the given transport.
    * Usage accounting — ``usage[src]`` per-link byte/transfer
      counters and ``aggregate_bytes``, identical across backends
      (occupancy conservation is property-tested over all backends).
    """

    #: registry key (``--network`` value); set by each backend
    name: str = ""
    #: True when the fabric supports user-level one-sided remote reads
    remote_reads: bool = False

    def __init__(self, engine, cluster: ClusterConfig, costs: CostModel):
        self.engine = engine
        self.cluster = cluster
        self.costs = costs
        self._link_busy: List[float] = [0.0] * cluster.n_nodes
        self.usage: List[LinkUsage] = [
            LinkUsage() for _ in range(cluster.n_nodes)
        ]
        self.total_bytes = 0

    # -- accounting (shared) --------------------------------------------

    def _account(self, src_node: int, nbytes: int) -> None:
        self.usage[src_node].bytes_sent += nbytes
        self.usage[src_node].transfers += 1
        self.total_bytes += nbytes

    @property
    def aggregate_bytes(self) -> int:
        return self.total_bytes

    # -- timing contract -------------------------------------------------

    def write(
        self,
        src_node: int,
        nbytes: int,
        broadcast: bool = False,
        dst_node: int = -1,
    ) -> float:
        raise NotImplementedError

    def read(self, src_node: int, from_node: int, nbytes: int) -> float:
        """One-sided remote read; unsupported on this fabric by default."""
        raise RuntimeError(
            f"network backend {self.name!r} has no remote reads"
        )

    def flush_time(self, src_node: int) -> float:
        raise NotImplementedError

    def msg_cpus(self, transport: Transport) -> Tuple[float, float]:
        """Per-message ``(send_cpu_us, recv_cpu_us)`` for ``transport``."""
        raise NotImplementedError

    # -- documentation catalog -------------------------------------------

    @classmethod
    def describe(cls) -> Dict[str, str]:
        """Constant name -> value strings for ``docs/NETWORKS.md``."""
        raise NotImplementedError


class MemoryChannel(NetworkModel):
    """The paper's first-generation Memory Channel (Section 3.1).

    * user-level remote *writes* only — no remote reads;
    * ~5.2 us process-to-process write latency;
    * per-link bandwidth limited by the 32-bit PCI bus (~30 MB/s) and
      aggregate bandwidth limited by the early device driver (~32 MB/s);
    * writes are totally ordered and may be broadcast to every node;
    * optional loop-back of a node's own writes (used only for locks).

    Transfers are modelled with busy-until occupancy times per transmit
    link plus a shared hub pipe, which reproduces the paper's
    observation that the "relatively modest cross-sectional bandwidth
    ... limits the performance of write-through".  Constants live in
    :class:`~repro.config.CostModel` (``mc_*``) so the existing
    bandwidth/latency sweeps keep working unchanged.
    """

    name = "memch"
    remote_reads = False

    def __init__(self, engine, cluster: ClusterConfig, costs: CostModel):
        super().__init__(engine, cluster, costs)
        self._hub_busy: float = 0.0

    def write(
        self,
        src_node: int,
        nbytes: int,
        broadcast: bool = False,
        dst_node: int = -1,
    ) -> float:
        """Schedule a remote write of ``nbytes`` from ``src_node``.

        A broadcast occupies the hub once and is seen by every node (the
        hub replicates it), which is how Cashmere pushes directory
        updates.  ``dst_node`` is ignored: every transfer crosses the
        one shared hub regardless of destination.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        now = self.engine.now
        start = max(now, self._link_busy[src_node])
        link_end = start + nbytes / self.costs.mc_link_bandwidth
        hub_start = max(start, self._hub_busy)
        hub_end = hub_start + nbytes / self.costs.mc_aggregate_bandwidth
        done = max(link_end, hub_end)
        self._link_busy[src_node] = link_end
        self._hub_busy = hub_end
        self._account(src_node, nbytes)
        return done + self.costs.mc_latency

    def flush_time(self, src_node: int) -> float:
        """Sim time at which all writes issued so far from ``src_node``
        have drained (used by Cashmere releases to wait for write-through
        completion)."""
        return max(self._link_busy[src_node], 0.0) + self.costs.mc_latency

    def msg_cpus(self, transport: Transport) -> Tuple[float, float]:
        # User-level MC buffers: sender-side cost only (includes the
        # sense-reversing flow-control flags); DEC's kernel UDP adds a
        # kernel crossing on each end.
        if transport is Transport.UDP:
            return self.costs.msg_cpu_udp, self.costs.msg_cpu_udp
        return self.costs.msg_cpu_mc, 0.0

    @classmethod
    def describe(cls) -> Dict[str, str]:
        costs = CostModel()
        return {
            "latency_us": f"{costs.mc_latency:g}",
            "link_bandwidth_bytes_per_us": f"{costs.mc_link_bandwidth:g}",
            "aggregate_bandwidth_bytes_per_us": (
                f"{costs.mc_aggregate_bandwidth:g}"
            ),
            "remote_reads": "no",
            "msg_cpu_send_us": f"{costs.msg_cpu_mc:g}",
            "msg_cpu_recv_us": "0",
        }


# --- RDMA/InfiniBand-class fabric constants (all microseconds/bytes) ----
#
# Calibrated to the modern-interconnect numbers the related work cites
# (SNIPPETS.md snippet 2: ~50 Gbit/s per InfiniBand link, latency tens
# of times below kernel TCP; the user-level-DSM paper's 1-2 us
# one-sided operations).
RDMA_LATENCY = 1.5  # one-sided RDMA write, posted to visible
RDMA_READ_LATENCY = 3.0  # one-sided read: request + data round trip
RDMA_LINK_BANDWIDTH = 6000.0  # bytes/us (~48 Gbit/s per link)
RDMA_SWITCH_BANDWIDTH = 48000.0  # bytes/us (non-blocking 8-port switch)
RDMA_MSG_CPU = 0.9  # verbs post: WQE build + doorbell write
RDMA_RECV_CPU = 0.0  # completion-queue polling at user level


class RdmaNetwork(NetworkModel):
    """A modern RDMA fabric: one-sided reads *and* writes, fat links.

    Differences from the Memory Channel that matter to the protocols:

    * :meth:`read` exists — a page or diff can stream out of a remote
      node's memory with no remote CPU involvement, which removes the
      request/reply round trip (and the interrupt/poll disturbance)
      from TreadMarks/HLRC data fetches.
    * Per-**queue-pair** occupancy: a (source, destination) pair has its
      own send queue, so transfers to distinct destinations from one
      node overlap; the shared resources are the source link and the
      (effectively non-blocking) switch.
    * No hardware broadcast: a broadcast write occupies the source link
      once per destination node (the switch replicates nothing), which
      is what makes Cashmere's directory broadcast scale poorly here.
    """

    name = "rdma"
    remote_reads = True

    def __init__(self, engine, cluster: ClusterConfig, costs: CostModel):
        super().__init__(engine, cluster, costs)
        self._switch_busy: float = 0.0
        self._qp_busy: Dict[Tuple[int, int], float] = {}

    def _transfer(self, src_node: int, nbytes: int, dst_node: int) -> float:
        """Common wire timing: QP serialization, link, switch."""
        now = self.engine.now
        start = max(now, self._link_busy[src_node])
        if dst_node >= 0:
            qp = (src_node, dst_node)
            start = max(start, self._qp_busy.get(qp, 0.0))
        link_end = start + nbytes / RDMA_LINK_BANDWIDTH
        switch_start = max(start, self._switch_busy)
        switch_end = switch_start + nbytes / RDMA_SWITCH_BANDWIDTH
        done = max(link_end, switch_end)
        self._link_busy[src_node] = link_end
        self._switch_busy = switch_end
        if dst_node >= 0:
            self._qp_busy[(src_node, dst_node)] = done
        return done

    def write(
        self,
        src_node: int,
        nbytes: int,
        broadcast: bool = False,
        dst_node: int = -1,
    ) -> float:
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if broadcast:
            # No hardware replication: one unicast per other node, all
            # serialized on the source link.
            done = self.engine.now
            fanout = max(1, self.cluster.n_nodes - 1)
            for _ in range(fanout):
                done = self._transfer(src_node, nbytes, -1)
            self._account(src_node, nbytes * fanout)
            return done + RDMA_LATENCY
        done = self._transfer(src_node, nbytes, dst_node)
        self._account(src_node, nbytes)
        return done + RDMA_LATENCY

    def read(self, src_node: int, from_node: int, nbytes: int) -> float:
        """One-sided read: the data crosses ``from_node``'s link; the
        extra latency covers the request half of the round trip."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        done = self._transfer(from_node, nbytes, src_node)
        self._account(from_node, nbytes)
        return done + RDMA_READ_LATENCY

    def flush_time(self, src_node: int) -> float:
        return max(self._link_busy[src_node], 0.0) + RDMA_LATENCY

    def msg_cpus(self, transport: Transport) -> Tuple[float, float]:
        # Verbs are user-level on every transport: the UDP variant has
        # no kernel to cross here.
        return RDMA_MSG_CPU, RDMA_RECV_CPU

    @classmethod
    def describe(cls) -> Dict[str, str]:
        return {
            "latency_us": f"{RDMA_LATENCY:g}",
            "read_latency_us": f"{RDMA_READ_LATENCY:g}",
            "link_bandwidth_bytes_per_us": f"{RDMA_LINK_BANDWIDTH:g}",
            "switch_bandwidth_bytes_per_us": f"{RDMA_SWITCH_BANDWIDTH:g}",
            "remote_reads": "yes",
            "msg_cpu_send_us": f"{RDMA_MSG_CPU:g}",
            "msg_cpu_recv_us": f"{RDMA_RECV_CPU:g}",
        }


# --- Commodity Ethernet/TCP constants (all microseconds/bytes) ----------
ETH_LATENCY = 35.0  # one-way kernel-to-kernel over a switched LAN
ETH_LINK_BANDWIDTH = 12.5  # bytes/us (100 Mbit/s link)
ETH_SWITCH_BANDWIDTH = 125.0  # bytes/us (switch backplane)
ETH_MSG_CPU = 60.0  # kernel socket crossing, each end of every message


class EthernetNetwork(NetworkModel):
    """Commodity switched Ethernet under kernel TCP/IP.

    The other extreme from the Memory Channel: no remote memory access
    of any kind — every byte moves through a kernel socket on both ends
    (``msg_cpus`` charges a kernel crossing to sender *and* receiver on
    every transport), one-way latency is an order of magnitude above
    MC's, and links are thin.  "Remote writes" issued by the protocols
    (directory broadcasts, write-through) are modelled as wire traffic
    with this latency — the CPU cost of the messaging that would carry
    them is deliberately left out, making the model a *lower bound* on
    Ethernet's real cost to Cashmere (it loses the comparison anyway;
    see docs/NETWORKS.md).
    """

    name = "ethernet"
    remote_reads = False

    def __init__(self, engine, cluster: ClusterConfig, costs: CostModel):
        super().__init__(engine, cluster, costs)
        self._switch_busy: float = 0.0

    def write(
        self,
        src_node: int,
        nbytes: int,
        broadcast: bool = False,
        dst_node: int = -1,
    ) -> float:
        if nbytes < 0:
            raise ValueError("negative transfer size")
        now = self.engine.now
        start = max(now, self._link_busy[src_node])
        if broadcast:
            # Switched Ethernet floods a broadcast frame: one link
            # occupancy at the source, replicated by the switch.
            pass
        link_end = start + nbytes / ETH_LINK_BANDWIDTH
        switch_start = max(start, self._switch_busy)
        switch_end = switch_start + nbytes / ETH_SWITCH_BANDWIDTH
        done = max(link_end, switch_end)
        self._link_busy[src_node] = link_end
        self._switch_busy = switch_end
        self._account(src_node, nbytes)
        return done + ETH_LATENCY

    def flush_time(self, src_node: int) -> float:
        return max(self._link_busy[src_node], 0.0) + ETH_LATENCY

    def msg_cpus(self, transport: Transport) -> Tuple[float, float]:
        # Kernel sockets both ways, whatever the nominal transport.
        return ETH_MSG_CPU, ETH_MSG_CPU

    @classmethod
    def describe(cls) -> Dict[str, str]:
        return {
            "latency_us": f"{ETH_LATENCY:g}",
            "link_bandwidth_bytes_per_us": f"{ETH_LINK_BANDWIDTH:g}",
            "switch_bandwidth_bytes_per_us": f"{ETH_SWITCH_BANDWIDTH:g}",
            "remote_reads": "no",
            "msg_cpu_send_us": f"{ETH_MSG_CPU:g}",
            "msg_cpu_recv_us": f"{ETH_MSG_CPU:g}",
        }


#: Backend registry, keyed by the ``--network`` / ``RunConfig.network``
#: name.  ``repro.config.NETWORK_BACKENDS`` lists the same names (the
#: config layer cannot import this module); the assertion keeps them in
#: lock step.
NETWORK_MODELS: Dict[str, type] = {
    cls.name: cls for cls in (MemoryChannel, RdmaNetwork, EthernetNetwork)
}
assert tuple(NETWORK_MODELS) == NETWORK_BACKENDS


def build_network(
    name: str, engine, cluster: ClusterConfig, costs: CostModel
) -> NetworkModel:
    """Instantiate the backend registered under ``name``."""
    try:
        model = NETWORK_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(NETWORK_MODELS))
        raise ValueError(
            f"unknown network backend {name!r}; known: {known}"
        ) from None
    return model(engine, cluster, costs)
