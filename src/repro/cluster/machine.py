"""Nodes and processors of the simulated AlphaServer cluster.

A :class:`Processor` executes application work as *interruptible compute
blocks* and services remote requests through one of the paper's three
mechanisms:

* ``POLL`` — the compute block reacts to an arriving request at the next
  poll point (a small constant reaction time);
* ``INTERRUPT`` — an ``imc_kill``-style inter-node signal disturbs the
  compute block after the ~1 ms kernel delivery latency;
* ``PROTOCOL_PROCESSOR`` — requests are routed to a dedicated CPU on the
  node, and compute blocks are never disturbed.

While a processor is *blocked* (waiting for a reply, a lock, or a
barrier) it always services incoming requests immediately, mirroring both
systems' re-entrant spin-wait handlers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generator, List, Optional

from repro.config import ClusterConfig, CostModel, Mechanism
from repro.sim import Engine, Event
from repro.stats import Category, StatsBoard


def _interrupt_fire(proc: "Processor") -> None:
    """Kernel signal delivery lands: disturb the running compute block."""
    proc._interrupt_pending = False
    disturb = proc._disturb
    if disturb is not None and not disturb.triggered:
        disturb.succeed()


class Processor:
    """One CPU: compute, wait, and remote-request service."""

    def __init__(
        self,
        engine: Engine,
        pid: int,
        node: "Node",
        cpu: int,
        mechanism: Mechanism,
        costs: CostModel,
        stats: StatsBoard,
    ):
        self.engine = engine
        self.pid = pid  # global rank (or -1 for a protocol processor)
        self.node = node
        self.cpu = cpu
        self.mechanism = mechanism
        self.costs = costs
        self.stats = stats
        # Cached ProcStats: one attribute load on every charge/bump
        # instead of a bounds check plus StatsBoard.__getitem__.
        self._stat = stats[pid] if pid >= 0 else None
        self.mailbox: Deque = deque()
        self.server: Optional[Callable] = None  # request -> generator
        self._arrival: Optional[Event] = None
        self._disturb: Optional[Event] = None
        self._interrupt_pending = False

    def __repr__(self) -> str:
        return f"<Processor {self.pid} node={self.node.nid} cpu={self.cpu}>"

    # -- accounting -----------------------------------------------------

    def charge(self, category: Category, dt: float) -> None:
        stat = self._stat
        if stat is not None:
            if dt < 0:
                raise ValueError(f"negative charge {dt} to {category}")
            stat.time[category] += dt

    def bump(self, counter: str, n: int = 1) -> None:
        stat = self._stat
        if stat is not None:
            stat.counters[counter] += n

    # -- request delivery -------------------------------------------------

    def deliver(self, request) -> None:
        """A remote request has landed in this processor's receive region."""
        self.mailbox.append(request)
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()
        if self.mechanism is Mechanism.INTERRUPT:
            self._post_interrupt()

    def _post_interrupt(self) -> None:
        """Schedule the kernel's (slow) signal delivery for a request."""
        if self._interrupt_pending:
            return  # one in-flight signal covers queued requests
        self._interrupt_pending = True
        self.engine.schedule(
            self.engine.now + self.costs.interrupt_latency,
            _interrupt_fire,
            self,
        )

    def _arrival_event(self) -> Event:
        if self._arrival is None or self._arrival.triggered:
            self._arrival = self.engine.event()
        return self._arrival

    def _disturb_event(self) -> Optional[Event]:
        """The event that may cut a compute block short, if any."""
        if self.mechanism is Mechanism.POLL:
            return self._arrival_event()
        if self.mechanism is Mechanism.INTERRUPT:
            if self._disturb is None or self._disturb.triggered:
                self._disturb = self.engine.event()
            if self.mailbox and not self._interrupt_pending:
                self._post_interrupt()
            return self._disturb
        return None  # PROTOCOL_PROCESSOR: compute is never disturbed

    # -- compute ----------------------------------------------------------

    def compute(
        self,
        us: float,
        polls: int = 0,
        shares: Optional[dict] = None,
        interruptible: bool = True,
    ) -> Generator:
        """Run for ``us`` simulated microseconds of CPU work.

        ``shares`` maps :class:`Category` to a fraction of the block
        (default: all USER).  ``polls`` is the number of poll points the
        instrumentation pass inserted into this block; under the polling
        mechanism their cost is added and charged to POLL.
        """
        if us < 0:
            raise ValueError("negative compute time")
        if polls and self.mechanism is Mechanism.POLL:
            shares = dict(shares) if shares else {Category.USER: 1.0}
            poll_us = polls * self.costs.poll_check
            total = us + poll_us
            if total > 0:
                scale = us / total
                shares = {c: f * scale for c, f in shares.items()}
                shares[Category.POLL] = (
                    shares.get(Category.POLL, 0.0) + poll_us / total
                )
            us = total
        elif shares:
            shares = dict(shares)
        else:
            shares = None  # the common all-USER block: no dict at all
        remaining = us
        while remaining > 1e-9:
            if self.mailbox and self.mechanism is not Mechanism.INTERRUPT:
                yield from self.drain()
            start = self.engine.now
            if (
                not interruptible
                or self.mechanism is Mechanism.PROTOCOL_PROCESSOR
            ):
                # Nothing can cut the block short: sleep it out as one
                # bare delay (no Timeout object, no AnyOf).
                yield remaining
                self._charge_shares(
                    shares, min(self.engine.now - start, remaining)
                )
                break
            timeout = self.engine.timeout(remaining)
            disturb = self._disturb_event()  # POLL/INTERRUPT: never None
            fired = yield self.engine.any_of([timeout, disturb])
            elapsed = self.engine.now - start
            self._charge_shares(shares, min(elapsed, remaining))
            remaining -= elapsed
            if fired is timeout or remaining <= 1e-9:
                break
            # A request arrived mid-block: finish reaching the reaction
            # point (next poll, or the interrupt trampoline), then serve.
            if self.mechanism is Mechanism.POLL:
                reaction = min(self.costs.poll_reaction, remaining)
                if reaction > 0:
                    yield reaction
                    self._charge_shares(shares, reaction)
                    remaining -= reaction
            elif self.mechanism is Mechanism.INTERRUPT:
                self.charge(Category.PROTOCOL, self.costs.signal_local)
                yield self.costs.signal_local
            yield from self.drain()

    def _charge_shares(self, shares: Optional[dict], dt: float) -> None:
        if dt <= 0:
            return
        if shares is None:
            self.charge(Category.USER, dt)
            return
        for category, fraction in shares.items():
            self.charge(category, dt * fraction)

    def busy(self, us: float, category: Category) -> Generator:
        """Uninterruptible occupancy (protocol handler work, memcpy...).

        Yields a bare delay — the engine's allocation-free wait channel —
        because this is the single most-executed wait in full runs (every
        message send, handler occupancy, and doubled write lands here).
        """
        if us > 0:
            yield us
            self.charge(category, us)

    # -- blocking wait with request service -------------------------------

    def wait(
        self, event: Event, category: Category = Category.COMM_WAIT
    ) -> Generator:
        """Block until ``event`` fires, servicing requests meanwhile."""
        while True:
            if self.mailbox:
                yield from self.drain()
            if event.triggered:
                return event.value
            start = self.engine.now
            yield self.engine.any_of([event, self._arrival_event()])
            self.charge(category, self.engine.now - start)
            if event.triggered and not self.mailbox:
                return event.value

    # -- request service ----------------------------------------------------

    def drain(self) -> Generator:
        """Service every queued request with the registered server."""
        while self.mailbox:
            request = self.mailbox.popleft()
            if self.server is None:
                raise RuntimeError(f"{self!r} has no request server")
            yield from self.server(self, request)

    def serve_forever(self) -> Generator:
        """Main loop of a dedicated protocol processor."""
        while True:
            if self.mailbox:
                yield from self.drain()
            else:
                yield self._arrival_event()


class Node:
    """An SMP node: up to four CPUs plus one network adapter.

    The node is interconnect-agnostic — the adapter's timing lives in
    the :class:`~repro.cluster.network.NetworkModel` backend (Memory
    Channel by default; see docs/NETWORKS.md).
    """

    def __init__(self, nid: int):
        self.nid = nid
        self.processors: List[Processor] = []
        self.protocol_processor: Optional[Processor] = None
        self._next_target = 0

    def request_target(self) -> Processor:
        """The CPU that should service a request addressed to this node.

        With a dedicated protocol processor it is always that CPU;
        otherwise requests rotate over the node's compute CPUs, spreading
        the service burden of popular home nodes.
        """
        if self.protocol_processor is not None:
            return self.protocol_processor
        target = self.processors[self._next_target % len(self.processors)]
        self._next_target += 1
        return target


class Cluster:
    """The whole machine: nodes, processors, and rank placement.

    ``placement`` maps global rank -> (node id, cpu id).  The paper's
    standard placements for n processors are produced by
    :func:`repro.harness.configs.placement`.
    """

    def __init__(
        self,
        engine: Engine,
        cluster_cfg: ClusterConfig,
        costs: CostModel,
        mechanism: Mechanism,
        placement: List[tuple],
        stats: StatsBoard,
    ):
        self.engine = engine
        self.config = cluster_cfg
        self.costs = costs
        self.mechanism = mechanism
        self.nodes = [Node(nid) for nid in range(cluster_cfg.n_nodes)]
        self.procs: List[Processor] = []
        used_nodes = set()
        for rank, (nid, cpu) in enumerate(placement):
            if not (0 <= nid < cluster_cfg.n_nodes):
                raise ValueError(f"rank {rank}: node {nid} out of range")
            if not (0 <= cpu < cluster_cfg.cpus_per_node):
                raise ValueError(f"rank {rank}: cpu {cpu} out of range")
            proc = Processor(
                engine, rank, self.nodes[nid], cpu, mechanism, costs, stats
            )
            self.nodes[nid].processors.append(proc)
            self.procs.append(proc)
            used_nodes.add(nid)
        if mechanism is Mechanism.PROTOCOL_PROCESSOR:
            pp_cpu = cluster_cfg.cpus_per_node - 1
            for nid in used_nodes:
                node = self.nodes[nid]
                if any(p.cpu == pp_cpu for p in node.processors):
                    raise ValueError(
                        f"node {nid}: cpu {pp_cpu} is reserved for the "
                        "protocol processor"
                    )
                pp = Processor(
                    engine, -1, node, pp_cpu, mechanism, costs, stats
                )
                node.protocol_processor = pp

    @property
    def nprocs(self) -> int:
        return len(self.procs)

    def proc(self, rank: int) -> Processor:
        return self.procs[rank]

    def start_protocol_processors(self) -> None:
        for node in self.nodes:
            if node.protocol_processor is not None:
                self.engine.process(
                    node.protocol_processor.serve_forever(),
                    name=f"pp-node{node.nid}",
                    daemon=True,
                    shard=node.nid,
                )

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.procs[rank_a].node is self.procs[rank_b].node
