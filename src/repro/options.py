"""Typed simulation options: the one place runtime toggles live.

Three PRs of growth scattered the simulator's switches across
environment variables (``REPRO_DSM_NO_FASTPATH``, ``REPRO_DSM_DEBUG``,
and now ``REPRO_DSM_NO_CALQUEUE``).  :class:`SimOptions` consolidates
them into a single dataclass that the CLI plumbs from flags
(``--no-fastpath``, ``--debug-checks``, ``--no-calqueue``) and that the
parallel harness ships to worker processes inside each
:class:`~repro.harness.parallel.PointSpec`.

The environment variables keep working as **deprecated aliases**: they
are folded into :meth:`SimOptions.from_env` and produce a one-time
stderr warning pointing at the replacement flag.  Every toggle is a
wall-clock lever only — simulated results are bit-identical in every
combination (locked in by ``tests/test_engine_equivalence.py``) — with
one documented exception: ``network`` selects the simulated
interconnect backend (docs/NETWORKS.md) and therefore *changes
simulated results*.  It rides in SimOptions because it is plumbed the
same way (CLI flag -> context -> workers), but the authoritative copy
is :attr:`repro.config.RunConfig.network`, which enters the
result-cache key; each backend's results are pinned by their own
goldens (``tests/golden_networks.json``).
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, replace
from typing import Optional

#: Deprecated environment aliases: var -> (SimOptions field, value when
#: the var is set, replacement CLI flag named in the warning).
_ENV_ALIASES = {
    "REPRO_DSM_NO_FASTPATH": ("fastpath", False, "--no-fastpath"),
    "REPRO_DSM_DEBUG": ("debug_checks", True, "--debug-checks"),
    "REPRO_DSM_NO_CALQUEUE": ("calqueue", False, "--no-calqueue"),
    "REPRO_DSM_NO_KERNELS": ("kernels", False, "--no-kernels"),
    "REPRO_DSM_NO_SHARD": ("shard", False, "--no-shard"),
}

_warned_vars = set()


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0")


def _warn_once(var: str, flag: str) -> None:
    if var in _warned_vars:
        return
    _warned_vars.add(var)
    print(
        f"[repro-dsm] warning: ${var} is deprecated; "
        f"use the {flag} flag (or repro.SimOptions) instead",
        file=sys.stderr,
    )


@dataclass(frozen=True)
class SimOptions:
    """Runtime toggles for one simulation (all default to the fast,
    production configuration; every field is A/B-verified bit-identical).

    ``fastpath``
        Vectorized permission-bitmap hit path for shared accesses
        (PR 3).  Off restores the per-page generator loop.
    ``debug_checks``
        Re-verify bitmap/permission coherence at every barrier.
    ``calqueue``
        Bucketed calendar queue + event pooling in the simulation
        engine (PR 4).  Off restores the plain binary-heap
        scheduler with per-event allocation — the A/B escape hatch.
    ``kernels``
        Vectorized application kernels over the bulk region API
        (PR 5).  Off restores the per-element scalar reference loops
        in every app — the A/B escape hatch for the kernel layer.
    ``shard``
        Sharded calendar queue in the simulation engine (PR 7): the
        same-timestamp cascade ring, recycled bucket free list, and
        batched bare-delay resume that keep large-P event storms O(1)
        per entry.  Off restores the PR 4 flat calendar queue — the
        A/B escape hatch for the sharded scheduler.  Only meaningful
        when ``calqueue`` is on (the binary heap has no shards).
    ``network``
        Interconnect backend name (``memch``, ``rdma``, ``ethernet``;
        see docs/NETWORKS.md).  **Not** a wall-clock toggle: it changes
        simulated results and is copied into
        :attr:`repro.config.RunConfig.network` (the cache-keyed,
        authoritative field) by the facade and harness.
    ``granularity`` / ``prefetch`` / ``homing``
        The sharing-policy triple (docs/POLICIES.md): coherence unit
        size, software prefetch policy, and home-assignment policy.
        Like ``network`` these are simulated semantics, not wall-clock
        toggles — the authoritative, cache-keyed copies live on
        :class:`repro.config.RunConfig`; SimOptions only plumbs them
        CLI flag -> context -> workers.  The default triple
        ``(page, none, first-touch)`` reproduces the pre-policy
        simulator bit-for-bit.
    """

    fastpath: bool = True
    debug_checks: bool = False
    calqueue: bool = True
    kernels: bool = True
    shard: bool = True
    network: str = "memch"
    granularity: str = "page"
    prefetch: str = "none"
    homing: str = "first-touch"

    @classmethod
    def from_env(cls, warn: bool = True) -> "SimOptions":
        """Build options from the deprecated ``REPRO_DSM_*`` aliases."""
        options = cls()
        for var, (fld, value, flag) in _ENV_ALIASES.items():
            if _env_flag(var):
                if warn:
                    _warn_once(var, flag)
                options = replace(options, **{fld: value})
        return options

    @classmethod
    def from_flags(
        cls,
        no_fastpath: bool = False,
        debug_checks: bool = False,
        no_calqueue: bool = False,
        no_kernels: bool = False,
        no_shard: bool = False,
        network: Optional[str] = None,
        granularity: Optional[str] = None,
        prefetch: Optional[str] = None,
        homing: Optional[str] = None,
    ) -> "SimOptions":
        """Build options from CLI flag values, layered over the
        environment aliases (explicit flags win)."""
        options = cls.from_env()
        if no_fastpath:
            options = replace(options, fastpath=False)
        if debug_checks:
            options = replace(options, debug_checks=True)
        if no_calqueue:
            options = replace(options, calqueue=False)
        if no_kernels:
            options = replace(options, kernels=False)
        if no_shard:
            options = replace(options, shard=False)
        if network is not None:
            options = replace(options, network=network)
        if granularity is not None:
            options = replace(options, granularity=granularity)
        if prefetch is not None:
            options = replace(options, prefetch=prefetch)
        if homing is not None:
            options = replace(options, homing=homing)
        return options

    def apply(self) -> "SimOptions":
        """Install these options as the process-wide current set.

        Mirrors the toggles into the modules that consume them
        (``repro.core.fastpath`` keeps its ``ENABLED``/``DEBUG`` module
        globals for backward compatibility; new engines pick up the
        queue mode at construction).  Returns self for chaining.
        """
        global _current
        _current = self
        from repro.core import fastpath

        fastpath.ENABLED = self.fastpath
        fastpath.DEBUG = self.debug_checks
        from repro.apps import kernels

        kernels.ENABLED = self.kernels
        return self


#: The process-wide options; engines and the fast path read this at
#: construction / import.  ``SimOptions.apply`` replaces it.
_current: Optional[SimOptions] = None


def current() -> SimOptions:
    """The active options (initialized from the environment once)."""
    global _current
    if _current is None:
        _current = SimOptions.from_env()
    return _current


def reset_for_tests() -> None:
    """Forget the cached options and warnings (test isolation)."""
    global _current
    _current = None
    _warned_vars.clear()
