"""Per-processor time accounting and event counters."""

from repro.stats.counters import Category, ProcStats, StatsBoard
from repro.stats.breakdown import Breakdown

__all__ = ["Category", "ProcStats", "StatsBoard", "Breakdown"]
