"""Optional protocol event tracing.

With ``RunConfig(trace=True)`` the protocols record every observable
coherence event — faults, page fetches, twins, diffs, invalidations,
synchronization — as :class:`TraceEvent` tuples.  The trace is exposed
on ``RunResult.trace`` and is the basis of the protocol-microscope
example and of fine-grained protocol tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One protocol event at a simulated instant."""

    time: float
    pid: int
    kind: str
    details: Tuple[Tuple[str, Any], ...] = ()

    def get(self, key: str, default=None):
        for name, value in self.details:
            if name == key:
                return value
        return default

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.details)
        return f"[{self.time:12.1f}us] p{self.pid:<3} {self.kind:<18} {parts}"


class Tracer:
    """Collects protocol events; a disabled tracer costs one branch."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def emit(self, time: float, pid: int, kind: str, **details) -> None:
        if not self.enabled:
            return
        self.events.append(
            TraceEvent(time, pid, kind, tuple(sorted(details.items())))
        )

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def for_pid(self, pid: int) -> List[TraceEvent]:
        return [e for e in self.events if e.pid == pid]

    def for_page(self, page: int) -> List[TraceEvent]:
        return [e for e in self.events if e.get("page") == page]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def render(self, limit: Optional[int] = None) -> str:
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(str(e) for e in events)


NULL_TRACER = Tracer(enabled=False)
