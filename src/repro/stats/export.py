"""Structured trace export: JSONL and Chrome trace-event format.

A trace file is *self-describing*: every exported run carries a
metadata record (variant, scale, processor count, cluster topology,
the full cost-model constants, aggregate counters, and the Figure 6
breakdown), so a file on disk can be interpreted without the command
line that produced it.

Two formats:

* **JSONL** (``format="jsonl"``) — one JSON object per line.  Each run
  starts with a ``{"type": "run", ...}`` metadata record followed by
  one ``{"type": "event", ...}`` record per trace event.  Lossless:
  :func:`read_jsonl` reconstructs the exact event sequence.
* **Chrome trace-event** (``format="chrome"``) — a single JSON object
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  Each run becomes one process, each simulated processor one track
  (thread); coherence events render as instants and compute/comm spans
  as durations.  Timestamps are simulated microseconds.

Schemas are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, IO, List, Optional, Sequence, Union

from repro.stats.trace import TraceEvent, Tracer

#: bumped when a record's shape changes; readers should check it
TRACE_SCHEMA_VERSION = 1

EXPORT_FORMATS = ("jsonl", "chrome")

#: Chrome thread id used for protocol-processor events (their simulated
#: pid is -1, which trace viewers handle poorly as a thread id).
PP_TRACK_OFFSET = 1000


def _json_default(value):
    """Serialize NumPy scalars and other non-JSON leaves."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value)
    return str(value)


def run_metadata(result, scale: Optional[str] = None) -> Dict[str, Any]:
    """Provenance for one :class:`repro.core.RunResult`.

    Everything needed to interpret (or re-run) the trace: program,
    variant, processor count, cluster topology, protocol feature flags,
    and the full cost model, plus the run's aggregate outcome.
    """
    cfg = result.config
    meta: Dict[str, Any] = {
        "type": "run",
        "schema": TRACE_SCHEMA_VERSION,
        "generator": "repro-dsm",
        "program": result.program,
        "variant": cfg.variant.name,
        "system": cfg.variant.system.value,
        "mechanism": cfg.variant.mechanism.value,
        "transport": cfg.variant.transport.value,
        "nprocs": cfg.nprocs,
        "scale": scale,
        "network": cfg.network,
        "cluster": asdict(cfg.cluster),
        "costs": asdict(cfg.costs),
        "flags": {
            "warm_start": cfg.warm_start,
            "first_touch_homes": cfg.first_touch_homes,
            "exclusive_mode": cfg.exclusive_mode,
            "write_double_dummy": cfg.write_double_dummy,
            "remote_reads": cfg.remote_reads,
            "weak_state": cfg.weak_state,
        },
        "exec_time_us": result.exec_time,
        "network_bytes": result.network_bytes,
        "counters": dict(result.stats.aggregate_counters()),
        "breakdown_us": result.breakdown.as_dict(),
    }
    if result.trace is not None:
        meta["events"] = len(result.trace)
    return meta


@dataclass
class TraceRun:
    """One run's exported trace: metadata plus its event timeline."""

    meta: Dict[str, Any]
    events: List[TraceEvent] = field(default_factory=list)

    @staticmethod
    def from_result(result, scale: Optional[str] = None) -> "TraceRun":
        if result.trace is None:
            raise ValueError(
                f"run of {result.program!r} carries no trace; "
                "pass RunConfig(trace=True)"
            )
        return TraceRun(
            meta=run_metadata(result, scale=scale),
            events=result.trace.timeline(),
        )

    @property
    def label(self) -> str:
        nprocs = self.meta.get("nprocs", "?")
        return (
            f"{self.meta.get('program', '?')}/"
            f"{self.meta.get('variant', '?')} ({nprocs}p)"
        )

    def tracer(self) -> Tracer:
        """Rebuild a queryable :class:`Tracer` over the events (used
        after :func:`read_jsonl` to get the full query API back)."""
        tracer = Tracer(enabled=True)
        tracer.events = list(self.events)
        return tracer


RunsLike = Union[TraceRun, Sequence[TraceRun]]


def _as_runs(runs: RunsLike) -> List[TraceRun]:
    if isinstance(runs, TraceRun):
        return [runs]
    return list(runs)


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def dump_jsonl(runs: RunsLike, stream: IO[str]) -> None:
    for run in _as_runs(runs):
        json.dump(run.meta, stream, default=_json_default)
        stream.write("\n")
        for event in run.events:
            record = event.to_dict()
            record["type"] = "event"
            json.dump(record, stream, default=_json_default)
            stream.write("\n")


def write_jsonl(runs: RunsLike, path: str) -> None:
    """Write runs as JSON Lines (one self-describing block per run)."""
    with open(path, "w") as stream:
        dump_jsonl(runs, stream)


def read_jsonl(path: str) -> List[TraceRun]:
    """Parse a JSONL trace file back into :class:`TraceRun` objects."""
    runs: List[TraceRun] = []
    with open(path) as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "run":
                runs.append(TraceRun(meta=record))
            elif kind == "event":
                if not runs:
                    raise ValueError(
                        f"{path}:{lineno}: event before any run record"
                    )
                runs[-1].events.append(TraceEvent.from_dict(record))
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown record type {kind!r}"
                )
    return runs


# ---------------------------------------------------------------------------
# Chrome trace-event format (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------

def _chrome_tid(event_pid: int, nprocs: int) -> int:
    """Trace-viewer thread id for a simulated processor.

    Protocol processors all carry simulated pid -1 (they are anonymous
    request servers); they share one synthetic track above the compute
    processors rather than a negative thread id.
    """
    if event_pid >= 0:
        return event_pid
    return PP_TRACK_OFFSET + nprocs


def chrome_trace(runs: RunsLike) -> Dict[str, Any]:
    """Build a Chrome trace-event JSON object.

    One viewer *process* per run (so two protocols of the same app can
    be loaded side by side), one *thread* per simulated processor.
    Instants become ``ph: "i"`` events, spans become ``ph: "X"``
    complete events.  Per-track timestamps are non-decreasing.
    """
    trace_events: List[Dict[str, Any]] = []
    metas: List[Dict[str, Any]] = []
    for run_index, run in enumerate(_as_runs(runs)):
        nprocs = int(run.meta.get("nprocs", 0))
        metas.append(run.meta)
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": run_index, "tid": 0,
            "args": {"name": run.label},
        })
        trace_events.append({
            "ph": "M", "name": "process_sort_index", "pid": run_index,
            "tid": 0, "args": {"sort_index": run_index},
        })
        tids = set()
        events = sorted(run.events, key=lambda e: e.time)
        body: List[Dict[str, Any]] = []
        for event in events:
            tid = _chrome_tid(event.pid, nprocs)
            tids.add((tid, event.pid))
            record: Dict[str, Any] = {
                "name": event.kind,
                "ts": event.time,
                "pid": run_index,
                "tid": tid,
                "args": event.details_dict(),
            }
            if event.is_span:
                record["ph"] = "X"
                record["dur"] = event.dur
                record["cat"] = "span"
            else:
                record["ph"] = "i"
                record["s"] = "t"  # thread-scoped instant
                record["cat"] = "coherence"
            body.append(record)
        for tid, event_pid in sorted(tids):
            name = (
                f"p{event_pid}" if event_pid >= 0 else "protocol processors"
            )
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": run_index,
                "tid": tid, "args": {"name": name},
            })
            trace_events.append({
                "ph": "M", "name": "thread_sort_index", "pid": run_index,
                "tid": tid, "args": {"sort_index": tid},
            })
        trace_events.extend(body)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro-dsm",
            "schema": TRACE_SCHEMA_VERSION,
            "runs": metas,
        },
    }


def write_chrome(runs: RunsLike, path: str) -> None:
    """Write runs as one Chrome trace-event JSON file."""
    with open(path, "w") as stream:
        json.dump(chrome_trace(runs), stream, default=_json_default)


# ---------------------------------------------------------------------------
# format dispatch
# ---------------------------------------------------------------------------

def export_runs(runs: RunsLike, path: str, format: str = "jsonl") -> None:
    """Write runs to ``path`` in the requested format."""
    if format == "jsonl":
        write_jsonl(runs, path)
    elif format == "chrome":
        write_chrome(runs, path)
    else:
        known = ", ".join(EXPORT_FORMATS)
        raise ValueError(f"unknown trace format {format!r}; known: {known}")
