"""The stable programmatic facade over the reproduction.

Four entry points cover everything callers used to reach by importing
driver and protocol internals:

``list_apps()``
    The application registry, by name.
``run_point(app, variant, nprocs, ...)``
    One simulation — an application under one protocol variant on one
    processor count (or its sequential baseline) — returning the core
    :class:`~repro.core.runtime.program.RunResult`.
``build_system(variant, nprocs, ...)``
    A fully wired simulated cluster (engine, network, messenger,
    protocol) with no application attached, for tests and
    microbenchmarks that drive the protocol directly.
``run_experiment(driver, ...)``
    One paper artifact — ``table1/2/3``, ``figure5/6``, ``sweep``, or
    the cross-era ``cross_era`` study — returning the common
    :class:`~repro.harness.results.DriverResult` envelope (typed rows +
    counters + breakdown + provenance + rendered text).

Wall-clock toggles travel as a :class:`~repro.options.SimOptions`
(CLI: ``--no-fastpath``, ``--debug-checks``, ``--no-calqueue``); every
combination is simulated-result bit-identical.  The exception is
``SimOptions.network`` (CLI: ``--network {memch,rdma,ethernet}``),
which selects the simulated interconnect backend and *changes
simulated results* — see ``docs/NETWORKS.md``.  The full reference
with a migration table from the old entry points lives in
``docs/API.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.apps import registry
from repro.config import (
    ClusterConfig,
    CostModel,
    RunConfig,
    Variant,
    variant_by_name,
)
from repro.core.runtime.program import (
    RunResult,
    System,
    build_system as _build_system,
)
from repro.harness.parallel import SEQUENTIAL, PointSpec, execute_point
from repro.harness.results import DriverResult
from repro.options import SimOptions

#: Drivers ``run_experiment`` accepts, in the CLI's order.
EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "figure5",
    "figure6",
    "sweep",
    "cross_era",
    "scaling",
    "policies",
)

VariantLike = Union[str, Variant, None]


def list_apps() -> List[str]:
    """Names of the registered benchmark applications (the paper's
    Table 2 eight plus extension workloads such as ``irreg``)."""
    return list(registry.ALL_APP_NAMES)


def _as_variant(variant: VariantLike) -> Optional[Variant]:
    if variant is None or isinstance(variant, Variant):
        return variant
    return variant_by_name(variant)


def point_spec(
    app: str,
    variant: VariantLike = None,
    nprocs: int = 1,
    *,
    scale: str = "small",
    params: Optional[Dict[str, Any]] = None,
    cluster: Optional[ClusterConfig] = None,
    costs: Optional[CostModel] = None,
    warm_start: bool = True,
    trace: bool = False,
    options: Optional[SimOptions] = None,
    **overrides: Any,
) -> PointSpec:
    """Build the :class:`PointSpec` that :func:`run_point` would run.

    The one place request parameters become an executable spec: the
    serving layer (``repro.serving``) resolves every network request
    through this same builder, which is what guarantees a served
    result is byte-for-byte the result of the equivalent direct
    :func:`run_point` call.
    """
    resolved = _as_variant(variant)
    module = registry.load(app)
    if options is not None:
        # The network backend and the sharing-policy triple are
        # simulated semantics, not wall-clock toggles: copy them into
        # the RunConfig overrides (explicit keywords win).
        overrides.setdefault("network", options.network)
        overrides.setdefault("granularity", options.granularity)
        overrides.setdefault("prefetch", options.prefetch)
        overrides.setdefault("homing", options.homing)
    if cluster is None:
        # Auto-grow past the paper's 32-CPU testbed (PR 7): counts that
        # fit keep the default 8-node cluster (and its goldens); larger
        # ones add nodes, never CPUs per node.
        from repro.harness.configs import cluster_for

        cluster = cluster_for(
            nprocs,
            mechanism=None if resolved is None else resolved.mechanism,
        )
    return PointSpec(
        app=app,
        variant_name=SEQUENTIAL if resolved is None else resolved.name,
        nprocs=nprocs,
        params=dict(params) if params is not None else module.default_params(scale),
        cluster=cluster,
        costs=costs or CostModel(),
        warm_start=warm_start,
        trace=trace,
        overrides=overrides,
        options=options,
    )


def run_point(
    app: str,
    variant: VariantLike = None,
    nprocs: int = 1,
    *,
    scale: str = "small",
    params: Optional[Dict[str, Any]] = None,
    cluster: Optional[ClusterConfig] = None,
    costs: Optional[CostModel] = None,
    warm_start: bool = True,
    trace: bool = False,
    options: Optional[SimOptions] = None,
    cache=None,
    **overrides: Any,
) -> RunResult:
    """Run one simulation point and return its :class:`RunResult`.

    ``variant=None`` runs the app's sequential (unlinked) baseline.
    ``params`` defaults to the app's ``default_params(scale)``;
    ``costs`` defaults to the plain paper cost model (the harness's
    per-app scaled-cache overrides apply only through
    :func:`run_experiment` / ``ExperimentContext``, matching the
    long-standing ``run_program`` behaviour).  Extra keyword arguments
    become :class:`~repro.config.RunConfig` overrides
    (``first_touch_homes=False``, ``weak_state=True``, ...).

    ``cache`` (a :class:`~repro.harness.cache.ResultCache`) makes the
    call serving-aware: hits skip the simulation, misses store their
    result, and either way ``result.extras["cache"]`` records the
    fingerprint, whether it hit, and the cache's running
    :class:`~repro.harness.cache.CacheStats` — in-band metadata rather
    than the old stderr-only counters.  The simulated result is
    identical with or without a cache.
    """
    spec = point_spec(
        app,
        variant,
        nprocs,
        scale=scale,
        params=params,
        cluster=cluster,
        costs=costs,
        warm_start=warm_start,
        trace=trace,
        options=options,
        **overrides,
    )
    if cache is None:
        return execute_point(spec)
    from repro.harness.cache import key_for_spec

    key = key_for_spec(spec)
    result = cache.get(key)
    hit = result is not None
    if not hit:
        result = execute_point(spec)
        cache.put(key, result)
    result.extras["cache"] = {
        "key": key,
        "hit": hit,
        "stats": cache.stats.as_dict(),
    }
    return result


def cache_info(
    cache_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Programmatic view of the on-disk result cache.

    Returns ``{"stats": CacheStats.as_dict(), **ResultCache.summary()}``
    — the same shape ``repro-dsm cache stats`` prints and ``GET
    /v1/stats`` nests under ``"cache"``.  ``cache_dir`` defaults to the
    standard location (``REPRO_DSM_CACHE`` / ``~/.cache/repro-dsm``).
    The ``stats`` block counts only *this* handle's activity (a fresh
    handle reports zeros); the surrounding summary — entries, bytes,
    configured bounds — reflects the directory itself.
    """
    from pathlib import Path as _Path

    from repro.harness.cache import ResultCache

    cache = ResultCache(
        cache_dir=_Path(cache_dir) if cache_dir else None
    )
    return {"stats": cache.stats.as_dict(), **cache.summary()}


def cache_prune(
    max_bytes: Optional[int] = None,
    max_entries: Optional[int] = None,
    *,
    cache_dir: Optional[str] = None,
    clear: bool = False,
) -> Dict[str, Any]:
    """Evict cached results down to the given bounds (LRU-by-atime).

    ``max_bytes``/``max_entries`` bound the directory after pruning
    (``0`` or ``None`` leaves that axis unbounded); ``clear=True``
    removes everything.  Returns the :meth:`ResultCache.prune` report:
    ``{"evicted", "reclaimed_bytes", "entries", "bytes"}``.
    """
    from pathlib import Path as _Path

    from repro.harness.cache import ResultCache

    cache = ResultCache(
        cache_dir=_Path(cache_dir) if cache_dir else None
    )
    if clear:
        return cache.clear()
    return cache.prune(max_bytes=max_bytes, max_entries=max_entries)


def build_system(
    variant: VariantLike,
    nprocs: int,
    *,
    cluster: Optional[ClusterConfig] = None,
    costs: Optional[CostModel] = None,
    warm_start: bool = False,
    trace: bool = False,
    space=None,
    **overrides: Any,
) -> System:
    """Assemble a started simulated cluster with no application.

    Returns a :class:`~repro.core.runtime.program.System` whose engine,
    messenger, and protocol are live — drive them directly with
    ``system.engine.process(...)`` / ``system.engine.run()``.
    """
    resolved = _as_variant(variant)
    if resolved is None:
        raise ValueError("build_system needs a protocol variant")
    if cluster is None:
        from repro.harness.configs import cluster_for

        cluster = cluster_for(nprocs, mechanism=resolved.mechanism)
    cfg = RunConfig(
        variant=resolved,
        nprocs=nprocs,
        cluster=cluster,
        costs=costs or CostModel(),
        warm_start=warm_start,
        trace=trace,
        **overrides,
    )
    return _build_system(cfg, space=space)


def run_experiment(
    driver: str,
    *,
    ctx=None,
    scale: str = "small",
    warm_start: bool = True,
    jobs: int = 1,
    cache=None,
    pool=None,
    options: Optional[SimOptions] = None,
    **driver_kwargs: Any,
) -> DriverResult:
    """Run one experiment driver and return its result envelope.

    ``driver`` is one of :data:`EXPERIMENTS`.  Pass an existing
    :class:`~repro.harness.runner.ExperimentContext` as ``ctx`` to
    share caches/baselines across invocations; otherwise one is built
    from ``scale``/``warm_start``/``jobs``/``cache``/``pool``
    (``pool`` — a :func:`repro.harness.parallel.persistent_pool` — fans
    every batch across long-lived workers with no per-batch pool
    spin-up; the caller owns its lifetime).  ``options`` (when given)
    is applied process-wide and shipped to worker processes.
    Driver-specific parameters (``apps=``, ``variants=``, ``counts=``,
    ``nprocs=``, ``knob=``...) pass through.
    """
    import importlib

    if driver not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {driver!r}; known: {EXPERIMENTS}"
        )
    if options is not None:
        options.apply()
    if ctx is None:
        from repro.harness.runner import ExperimentContext

        ctx = ExperimentContext(
            scale=scale,
            warm_start=warm_start,
            jobs=jobs,
            cache=cache,
            pool=pool,
            options=options,
        )
    module = importlib.import_module(f"repro.harness.{driver}")
    return module.run(ctx=ctx, **driver_kwargs)


__all__ = [
    "EXPERIMENTS",
    "DriverResult",
    "RunResult",
    "SimOptions",
    "System",
    "build_system",
    "cache_info",
    "cache_prune",
    "list_apps",
    "point_spec",
    "run_experiment",
    "run_point",
]
