"""Cluster configuration and the simulation cost model.

All times are simulated microseconds.  The constants come from Section 4.1
("Basic Operation Costs") and Section 3.1 of the paper.  The OCR of the
source text drops digits in a few numbers; every such constant is marked
``# OCR`` together with the value chosen and the reasoning.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.memory import policy as sharing_policy


class SystemKind(enum.Enum):
    """Which DSM protocol a run uses."""

    CASHMERE = "cashmere"
    TREADMARKS = "treadmarks"
    # Extension beyond the paper: home-based LRC, the hybrid the field
    # converged on shortly afterwards (see repro.core.hlrc).
    HLRC = "hlrc"


class Mechanism(enum.Enum):
    """How a processor learns about incoming remote requests."""

    INTERRUPT = "int"  # imc_kill / sigio inter-node interrupts
    POLL = "poll"  # polling inserted at loop back-edges
    PROTOCOL_PROCESSOR = "pp"  # one CPU per node dedicated to requests


class Transport(enum.Enum):
    """Messaging substrate used by the request/response layer."""

    MEMORY_CHANNEL = "mc"  # user-level MC message buffers
    UDP = "udp"  # DEC kernel-level UDP over the Memory Channel


@dataclass(frozen=True)
class Variant:
    """One of the six protocol implementations compared in the paper."""

    name: str
    system: SystemKind
    mechanism: Mechanism
    transport: Transport = Transport.MEMORY_CHANNEL

    def __str__(self) -> str:
        return self.name


CSM_PP = Variant("csm_pp", SystemKind.CASHMERE, Mechanism.PROTOCOL_PROCESSOR)
CSM_INT = Variant("csm_int", SystemKind.CASHMERE, Mechanism.INTERRUPT)
CSM_POLL = Variant("csm_poll", SystemKind.CASHMERE, Mechanism.POLL)
TMK_UDP_INT = Variant(
    "tmk_udp_int", SystemKind.TREADMARKS, Mechanism.INTERRUPT, Transport.UDP
)
TMK_MC_INT = Variant("tmk_mc_int", SystemKind.TREADMARKS, Mechanism.INTERRUPT)
TMK_MC_POLL = Variant("tmk_mc_poll", SystemKind.TREADMARKS, Mechanism.POLL)

# Extension variants (not part of the paper's six).
HLRC_POLL = Variant("hlrc_poll", SystemKind.HLRC, Mechanism.POLL)
HLRC_INT = Variant("hlrc_int", SystemKind.HLRC, Mechanism.INTERRUPT)

ALL_VARIANTS = (CSM_PP, CSM_INT, CSM_POLL, TMK_UDP_INT, TMK_MC_INT, TMK_MC_POLL)
EXTENSION_VARIANTS = (HLRC_POLL, HLRC_INT)
POLLING_VARIANTS = (CSM_POLL, TMK_MC_POLL)

_VARIANTS_BY_NAME = {v.name: v for v in ALL_VARIANTS + EXTENSION_VARIANTS}


def variant_by_name(name: str) -> Variant:
    """Look a variant up by its paper name (e.g. ``"csm_poll"``)."""
    try:
        return _VARIANTS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_VARIANTS_BY_NAME))
        raise ValueError(f"unknown variant {name!r}; known: {known}") from None


#: Interconnect backends selectable via ``RunConfig.network`` /
#: ``--network``.  The classes live in :mod:`repro.cluster.network`
#: (which imports this module, so only the names can live here); that
#: module asserts its registry matches this tuple.  See docs/NETWORKS.md.
NETWORK_BACKENDS = ("memch", "rdma", "ethernet")


@dataclass(frozen=True)
class ClusterConfig:
    """Topology of the simulated AlphaServer cluster.

    The paper's testbed is eight 4-processor AlphaServer 2100 4/233 nodes
    connected by a first-generation Memory Channel.
    """

    n_nodes: int = 8
    cpus_per_node: int = 4
    page_size: int = 8192  # Digital Unix virtual-memory page size (bytes)
    cache_line: int = 64  # bytes

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.cpus_per_node < 1:
            raise ValueError("cluster needs at least one node and one cpu")
        if self.page_size < 64 or self.page_size % 8:
            raise ValueError("page_size must be a multiple of 8 and >= 64")

    @property
    def total_cpus(self) -> int:
        return self.n_nodes * self.cpus_per_node


@dataclass(frozen=True)
class CostModel:
    """Measured basic-operation costs (microseconds unless noted).

    Defaults model the paper's first-generation Memory Channel testbed;
    ``second_generation()`` models the projected follow-on network
    (roughly half the latency and an order of magnitude more bandwidth).
    """

    # --- Memory Channel network (Section 3.1) ---
    mc_latency: float = 5.2  # process-to-process remote-write latency
    mc_link_bandwidth: float = 30.0  # bytes/us per link (~30 MB/s)  # OCR
    mc_aggregate_bandwidth: float = 32.0  # bytes/us through the hub
    # The early device driver limited aggregate bandwidth to ~32 MB/s.

    # --- Virtual memory operations (Section 4.1) ---
    mprotect: float = 62.0  # memory protection change
    page_fault: float = 89.0  # kernel fault delivery to user handler  # OCR
    # (text reads "Page faults cost 9 s"; 89us is consistent with the
    #  62us protection-change cost on the same kernel)

    # --- Signals / interrupts (Sections 3.2, 4.1) ---
    signal_local: float = 69.0  # local signal delivery
    signal_send: float = 45.0  # sender-side cost of imc_kill  # OCR
    interrupt_latency: float = 900.0  # end-to-end inter-node signal (~1 ms)

    # --- Polling (Section 3.2) ---
    poll_check: float = 0.017  # one 4-instruction poll at 233 MHz
    poll_reaction: float = 2.0  # mean delay until the next poll point

    # --- Messaging layer ---
    msg_cpu_mc: float = 9.0  # user-level buffer send/receive CPU cost
    # (includes the sense-reversing flow-control flags of Section 3.4)
    msg_cpu_udp: float = 80.0  # kernel UDP send/receive CPU cost
    msg_header: int = 32  # bytes of header per protocol message

    # --- Cashmere protocol (Sections 2.1, 3.3, 4.1) ---
    dir_modify: float = 5.0  # directory entry update, no lock
    dir_modify_locked: float = 16.0  # update incl. entry lock (home move)
    dir_entry_bytes: int = 32  # eight 4-byte words broadcast per update
    lock_mc: float = 11.0  # uncontended MC lock acquire+release
    lock_kernel: float = 280.0  # Digital Unix kernel MC lock  # OCR
    # A doubled write is a 5-instruction sequence ending in a store to an
    # uncached PCI transmit region; calibrated so SOR's doubling overhead
    # lands at the paper's measured ~19% of total execution time.
    write_double: float = 0.08
    write_notice_bytes: int = 4  # one packed notice word on the wire

    # --- TreadMarks protocol (Sections 2.2, 4.1) ---
    twin_page_8k: float = 362.0  # twin (copy) of an 8 KB page
    diff_page_min: float = 290.0  # diff of a nearly clean 8 KB page  # OCR
    diff_page_max: float = 530.0  # diff of a fully dirty 8 KB page  # OCR
    diff_apply_base: float = 60.0  # per-diff decode/merge entry cost
    diff_apply_per_kb: float = 25.0  # merging a diff into a page copy
    interval_record_bytes: int = 12  # serialized interval header (compressed)
    interval_process: float = 12.0  # incorporating one received record
    vts_entry_bytes: int = 1  # timestamps travel delta-compressed

    # --- Local memory (AlphaServer 2100 memcpy ~ 22 MB/s effective) ---
    memcpy_per_kb: float = 45.0  # derived from the 362us 8 KB twin cost

    # --- Caches (21064A: 16 KB L1; 2100 board cache as L2) ---
    l1_bytes: int = 16 * 1024
    l2_bytes: int = 1 * 1024 * 1024
    l2_penalty: float = 1.6  # compute inflation when working out of L2
    # (the 21064A's L2 is off-chip; blocked kernels slow down sharply)
    mem_penalty: float = 2.3  # compute inflation when working out of DRAM

    # --- Sharing-unit scaling (PR 10, docs/POLICIES.md) ---
    # Per-message floor for unit-scaled costs: however small the
    # sharing unit, a twin/diff/fetch still pays at least one
    # user-level message's CPU cost (= msg_cpu_mc).  Linear scaling
    # alone would let a 64-byte unit charge 2.8 us for a twin — below
    # a single wire message, which no real implementation achieves.
    # The floor never binds at page size or above (every per-8KB base
    # is >= 290 us), so default-granularity results are untouched.
    unit_cost_floor: float = 9.0

    def page_sized(self, base_8k: float, page_size: int) -> float:
        """Scale a per-8KB-page cost to ``page_size`` bytes.

        Clamped below by :attr:`unit_cost_floor` so sub-page sharing
        units cannot charge less than one wire message per operation.
        """
        return max(base_8k * (page_size / 8192.0), self.unit_cost_floor)

    def twin_cost(self, page_size: int) -> float:
        return self.page_sized(self.twin_page_8k, page_size)

    def diff_cost(self, page_size: int, dirty_fraction: float) -> float:
        """Cost of creating a diff; grows with the dirty fraction."""
        span = self.diff_page_max - self.diff_page_min
        base = self.diff_page_min + span * min(max(dirty_fraction, 0.0), 1.0)
        return self.page_sized(base, page_size)

    def memcpy_cost(self, nbytes: int) -> float:
        return self.memcpy_per_kb * (nbytes / 1024.0)

    @staticmethod
    def second_generation() -> "CostModel":
        """The second-generation Memory Channel the paper anticipates:
        roughly half the latency and an order of magnitude more bandwidth.
        """
        return CostModel(
            mc_latency=2.6,
            mc_link_bandwidth=300.0,
            mc_aggregate_bandwidth=320.0,
        )


@dataclass(frozen=True)
class WorkingSet:
    """Cache working sets declared by an application compute phase.

    ``primary`` is the inner-loop working set (first-level cache);
    ``secondary`` is the phase's larger reuse set (second-level cache —
    Gauss's remaining rows, for example).

    The protocol-added footprints are split by cache level, following the
    paper's Section 4.3 analysis: ``doubled``/``doubled_l2`` are the
    extra bytes Cashmere's write doubling adds to the primary/secondary
    sets (the local MC copies of the written data); ``twin``/``twin_l2``
    are what TreadMarks' twins and diffs add.  LU and Gauss put doubling
    pressure on L1; Gauss additionally puts twin/diff pressure on L2,
    which is why Cashmere gets the paper's 32-processor L2 jump and
    TreadMarks does not.
    """

    primary: int = 0
    secondary: int = 0
    doubled: int = 0
    doubled_l2: int = 0
    twin: int = 0
    twin_l2: int = 0


@dataclass
class RunConfig:
    """Everything a single simulated program execution needs."""

    variant: Variant
    nprocs: int
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    costs: CostModel = field(default_factory=CostModel)
    # Interconnect backend (see repro.cluster.network / docs/NETWORKS.md).
    # "memch" is the paper's Memory Channel; "rdma" and "ethernet" are
    # the cross-era what-if fabrics.  Changes simulated results, so it
    # enters the result-cache key.
    network: str = "memch"
    first_touch_homes: bool = True  # Cashmere home placement policy
    exclusive_mode: bool = True  # Cashmere exclusive-mode optimisation
    write_double_dummy: bool = False  # paper's dummy-address diagnostic
    # A hypothetical Memory Channel with *hardware remote reads* (the
    # paper's csm_pp variant only emulates this conservatively with a
    # dedicated processor): page fetches cost wire time only, with no
    # remote CPU involvement and a single bus crossing.
    remote_reads: bool = False
    # The simulation studies' original protocol (Section 2.1): pages with
    # any writer sit in the "weak state" and every sharer invalidates
    # them at every acquire — no write notices, no exclusive mode.  The
    # implemented protocol replaced this; the flag revives it for the
    # ablation that motivates the change.
    weak_state: bool = False
    # Record every protocol event (see repro.stats.trace).
    trace: bool = False
    # Pre-validate read-only copies everywhere before timing starts.
    # The paper's runs are minutes long, so cold distribution of the data
    # set is negligible there; at simulation scale it can dominate, and
    # this switch isolates the steady-state protocol comparison.
    warm_start: bool = False
    # --- Scaling past the paper (PR 7) -------------------------------
    # All three knobs default to ``None`` = automatic: at <= 32
    # processors (the paper's machine) the automatic policy selects the
    # exact legacy behaviour, keeping every golden bit-identical; above
    # 32 it switches to the scalable structures.  Setting a value
    # explicitly forces that structure at any processor count (that is
    # how the equivalence tests compare hierarchical vs flat at 8p).
    # All three change simulated results when active, so their resolved
    # values enter the result-cache key.
    #
    # Barrier fan-in: Cashmere's MC tree barrier arity (2 is the legacy
    # tree), and the group size of the LRC hierarchical group-leader
    # barrier (None picks ~sqrt(nprocs) groups above 32 processors;
    # <= 32 stays with the paper's flat single-manager barrier).
    barrier_fanin: Optional[int] = None
    # Cashmere directory shards: page-interleaved directory segments,
    # each anchored at a home node that receives *unicast* directory
    # updates instead of the legacy all-node broadcast.  None = 1 shard
    # (legacy broadcast) at <= 32 processors, one shard per node above.
    dir_shards: Optional[int] = None
    # Per-node page-copy budget: the maximum number of remote page
    # copies a node keeps before cold copies are evicted (invalidated)
    # at release points.  None = unlimited (the paper's machines never
    # paged).  Changes simulated results when it actually evicts.
    node_mem_pages: Optional[int] = None
    # --- Sharing policy (PR 10, docs/POLICIES.md) --------------------
    # The unit of sharing and its fetch/placement policies.  The
    # default triple (page, none, first-touch) reconstructs the
    # pre-policy stack exactly — bit-identical to every golden; any
    # other value changes simulated results and enters the cache key
    # (by resolved value, see repro.harness.cache.run_key).
    granularity: str = "page"  # block256/block1k/block2k/page/region2/region4
    prefetch: str = "none"  # none/seq/stride
    homing: str = "first-touch"  # first-touch/round-robin/dynamic

    def __post_init__(self) -> None:
        if self.network not in NETWORK_BACKENDS:
            known = ", ".join(NETWORK_BACKENDS)
            raise ValueError(
                f"unknown network backend {self.network!r}; known: {known}"
            )
        if self.nprocs < 1:
            raise ValueError("need at least one processor")
        if self.nprocs > self.compute_cpus_available:
            raise ValueError(
                f"{self.nprocs} processors requested but only "
                f"{self.compute_cpus_available} compute CPUs available "
                f"for {self.variant.name}"
            )
        if self.barrier_fanin is not None and self.barrier_fanin < 2:
            raise ValueError("barrier_fanin must be >= 2")
        if self.dir_shards is not None and self.dir_shards < 1:
            raise ValueError("dir_shards must be >= 1")
        if self.node_mem_pages is not None and self.node_mem_pages < 1:
            raise ValueError("node_mem_pages must be >= 1")
        sharing_policy.validate_prefetch(self.prefetch)
        sharing_policy.validate_homing(self.homing)
        # Resolution also validates divisibility against the VM page.
        sharing_policy.resolve_unit_size(
            self.granularity, self.cluster.page_size
        )

    # -- sharing policy (PR 10) ----------------------------------------

    @property
    def unit_bytes(self) -> Optional[int]:
        """Sharing-unit size in bytes; ``None`` means "the VM page".

        ``None`` at the default granularity lets the address space be
        constructed exactly as the pre-policy tree constructed it —
        the bit-identity guarantee by construction, not by arithmetic.
        """
        return sharing_policy.resolve_unit_size(
            self.granularity, self.cluster.page_size
        )

    @property
    def resolved_unit_bytes(self) -> int:
        """Unit size with the VM-page default made concrete (for the
        result-cache key: ``granularity="page"`` and an explicit unit
        of the same byte count share an entry)."""
        return self.unit_bytes or self.cluster.page_size

    @property
    def resolved_homing(self) -> str:
        """Homing mode after the legacy ``first_touch_homes`` ablation
        flag (PR 0's Cashmere knob) is folded in: switching first-touch
        off demotes the default to round-robin, exactly the behaviour
        the first-touch ablation always had.  An explicit non-default
        ``homing`` wins over the legacy flag."""
        if self.homing == "first-touch" and not self.first_touch_homes:
            return "round-robin"
        return self.homing

    def make_prefetcher(self):
        """A fresh per-run prefetcher, or ``None`` for demand fetch."""
        return sharing_policy.make_prefetcher(self.prefetch)

    # -- scaling policy (PR 7) -----------------------------------------

    @property
    def resolved_barrier_fanin(self) -> int:
        """Cashmere tree-barrier arity: 2 is the paper's legacy tree
        (exact legacy cost formula), the automatic policy widens to 4
        above 32 processors (lower total depth x per-level cost)."""
        if self.barrier_fanin is not None:
            return self.barrier_fanin
        return 2 if self.nprocs <= 32 else 4

    @property
    def hierarchical_barriers(self) -> bool:
        """Whether the LRC barrier runs the two-stage group-leader
        scheme instead of the paper's flat single-manager round."""
        return self.barrier_fanin is not None or self.nprocs > 32

    @property
    def lrc_barrier_group(self) -> int:
        """Member count per group of the hierarchical LRC barrier."""
        if self.barrier_fanin is not None:
            return max(2, self.barrier_fanin)
        return max(2, math.isqrt(max(self.nprocs - 1, 1)) + 1)

    @property
    def resolved_dir_shards(self) -> int:
        """Cashmere directory shard count (1 = legacy broadcast)."""
        if self.dir_shards is not None:
            return self.dir_shards
        return 1 if self.nprocs <= 32 else self.cluster.n_nodes

    @property
    def compute_cpus_available(self) -> int:
        per_node = self.cluster.cpus_per_node
        if self.variant.mechanism is Mechanism.PROTOCOL_PROCESSOR:
            per_node -= 1  # one CPU per node is dedicated to requests
        return self.cluster.n_nodes * per_node
