"""Reproduction of "VM-Based Shared Memory on Low-Latency,
Remote-Memory-Access Networks" (Kontothanassis et al., ISCA 1997).

The package simulates a 32-processor AlphaServer cluster connected by a
DEC Memory Channel network and runs two complete page-based software DSM
systems on it — Cashmere (directory + write-through to home nodes) and
TreadMarks (lazy release consistency with twins and diffs) — together
with the paper's eight benchmark applications and the harness that
regenerates every table and figure of the evaluation.

Quickstart::

    from repro import run_program, run_sequential, RunConfig, CSM_POLL
    from repro.apps import sor

    app = sor.program()
    params = sor.default_params()
    seq = run_sequential(app, params)
    par = run_program(app, RunConfig(variant=CSM_POLL, nprocs=8), params)
    print("speedup:", par.speedup_over(seq.exec_time))
"""

from repro.config import (
    ALL_VARIANTS,
    CSM_INT,
    CSM_PP,
    CSM_POLL,
    EXTENSION_VARIANTS,
    HLRC_INT,
    HLRC_POLL,
    POLLING_VARIANTS,
    TMK_MC_INT,
    TMK_MC_POLL,
    TMK_UDP_INT,
    ClusterConfig,
    CostModel,
    Mechanism,
    RunConfig,
    SystemKind,
    Transport,
    Variant,
    WorkingSet,
    variant_by_name,
)
from repro.core import (
    Program,
    RunResult,
    SharedArray,
    run_program,
    run_sequential,
)
from repro.memory import AddressSpace
from repro.options import SimOptions

__version__ = "1.0.0"

__all__ = [
    "ALL_VARIANTS",
    "EXTENSION_VARIANTS",
    "HLRC_INT",
    "HLRC_POLL",
    "AddressSpace",
    "CSM_INT",
    "CSM_PP",
    "CSM_POLL",
    "ClusterConfig",
    "CostModel",
    "Mechanism",
    "POLLING_VARIANTS",
    "Program",
    "RunConfig",
    "RunResult",
    "SharedArray",
    "SimOptions",
    "SystemKind",
    "TMK_MC_INT",
    "TMK_MC_POLL",
    "TMK_UDP_INT",
    "Transport",
    "Variant",
    "WorkingSet",
    "run_program",
    "run_sequential",
    "variant_by_name",
]
