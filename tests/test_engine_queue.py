"""Property tests for the calendar-queue scheduler and event pooling.

The engine promises that the bucketed calendar queue (the default) and
the plain binary heap (``SimOptions(calqueue=False)``) fire every event
in exactly the same order — same timestamps, same within-timestamp
sequence — and that pooled ``Timeout``/``AnyOf`` reuse never leaks a
callback from one generation to the next.  These tests drive both
promises with randomized schedules; ``tests/test_engine_equivalence.py``
additionally runs the application goldens in both queue modes.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import options as options_mod
from repro.sim import Engine, Interrupt

DELAYS = (0.0, 0.5, 1.0, 1.0, 2.0, 3.0, 5.0)


def _engine(calqueue: bool) -> Engine:
    return Engine(replace(options_mod.current(), calqueue=calqueue))


def _delay_trace(calqueue, delays_per_proc):
    """Run one process per delay list; log every resume (time, pid, i).

    Mixes the two sleep styles deterministically — bare-delay yields and
    pooled ``Timeout`` events — since both must occupy identical queue
    positions.
    """
    engine = _engine(calqueue)
    log = []

    def worker(pid, delays):
        for i, delay in enumerate(delays):
            if (pid + i) % 2:
                yield engine.timeout(delay)
            else:
                yield float(delay)
            log.append((engine.now, pid, i))

    for pid, delays in enumerate(delays_per_proc):
        engine.process(worker(pid, delays), name=f"p{pid}")
    engine.run()
    return log


@st.composite
def _schedules(draw):
    nprocs = draw(st.integers(min_value=1, max_value=4))
    return [
        draw(
            st.lists(
                st.sampled_from(DELAYS), min_size=1, max_size=8
            )
        )
        for _ in range(nprocs)
    ]


@given(_schedules())
@settings(max_examples=60, deadline=None)
def test_random_delay_schedules_fire_identically(delays_per_proc):
    assert _delay_trace(True, delays_per_proc) == _delay_trace(
        False, delays_per_proc
    )


def _mixed_actions(seed: int):
    """A deterministic random workload: delays, timeouts, any-ofs."""
    rng = random.Random(seed)
    nprocs = rng.randint(2, 5)
    return [
        [
            (
                rng.choice(("delay", "timeout", "anyof")),
                rng.choice(DELAYS),
            )
            for _ in range(rng.randint(3, 10))
        ]
        for _ in range(nprocs)
    ]


def _mixed_trace(calqueue, actions_per_proc):
    """Delays + pooled timeouts + any-of fan-ins + event waits."""
    engine = _engine(calqueue)
    nprocs = len(actions_per_proc)
    flags = [engine.event() for _ in range(nprocs)]
    log = []

    def worker(pid, actions):
        for i, (kind, delay) in enumerate(actions):
            if kind == "delay":
                yield float(delay)
            elif kind == "timeout":
                yield engine.timeout(delay)
            else:
                yield engine.any_of(
                    [engine.timeout(delay), engine.timeout(delay + 1.0)]
                )
                log.append((engine.now, pid, i, "anyof"))
            log.append((engine.now, pid, i))
        flags[pid].succeed(pid)
        # Join on the next process's flag: exercises waits on both
        # pending and already-triggered events.
        value = yield flags[(pid + 1) % nprocs]
        log.append((engine.now, pid, "joined", value))

    for pid, actions in enumerate(actions_per_proc):
        engine.process(worker(pid, actions), name=f"p{pid}")
    engine.run()
    return log


@pytest.mark.parametrize("seed", range(10))
def test_mixed_workloads_fire_identically(seed):
    actions = _mixed_actions(seed)
    assert _mixed_trace(True, actions) == _mixed_trace(False, actions)


@pytest.mark.parametrize("style", ["bare", "timeout"])
@pytest.mark.parametrize("at", [3.0, 7.0, 10.0])
def test_interrupted_sleeps_identical_across_modes(style, at):
    def trace(calqueue):
        engine = _engine(calqueue)
        log = []

        def sleeper():
            # Two legs so an interrupt landing exactly at the first
            # leg's fire time (at=10.0) still has a live sleep to hit.
            for leg in (10.0, 5.0):
                try:
                    if style == "bare":
                        yield leg
                    else:
                        yield engine.timeout(leg)
                    log.append(("slept", leg, engine.now))
                except Interrupt as intr:
                    log.append(("interrupted", engine.now, intr.cause))
                    yield 2.0
                    log.append(("resumed", engine.now))

        target = engine.process(sleeper(), name="sleeper")

        def poker():
            yield float(at)
            target.interrupt("poke")
            log.append(("poked", engine.now))

        engine.process(poker(), name="poker")
        engine.run()
        return log

    assert trace(True) == trace(False)


def test_pooled_timeout_recycles_without_leaking_callbacks():
    engine = _engine(True)
    fired = []
    seen = []

    def worker():
        t1 = engine.timeout(5.0)
        seen.append((t1, t1.generation))
        t1.add_callback(lambda ev: fired.append(engine.now))
        yield t1
        # t1 recycles at the end of its fire delivery, so the timeout
        # created *inside* that delivery is a fresh object...
        t2 = engine.timeout(3.0)
        seen.append((t2, t2.generation))
        yield t2
        # ...and the next creation pops t1 back out of the pool.
        t3 = engine.timeout(2.0)
        seen.append((t3, t3.generation))
        assert t3.live_callbacks() == []
        yield t3

    engine.process(worker(), name="w")
    engine.run()
    (t1, gen1), (_t2, _), (t3, gen3) = seen
    assert t3 is t1, "timeout object was not recycled through the pool"
    assert gen3 == gen1 + 1, "reuse must bump the generation counter"
    assert fired == [5.0], "stale callback leaked into a later generation"


def test_pooled_anyof_recycles_without_stray_resumes():
    engine = _engine(True)
    log = []
    seen = []

    def worker():
        for i in range(4):
            a = engine.any_of([engine.timeout(1.0), engine.timeout(4.0)])
            seen.append(a)
            yield a
            log.append((engine.now, i))

    engine.process(worker(), name="w")
    engine.run()
    assert log == [(1.0, 0), (2.0, 1), (3.0, 2), (4.0, 3)]
    # The loser timeouts (4.0) stay armed past their AnyOf's recycling;
    # their late fires must not resume anything.  engine.run() returning
    # cleanly past t=8 with exactly four resumes proves that.
    assert engine.now >= 7.0
    assert len(set(map(id, seen))) < len(seen), "AnyOf pool never reused"


def test_pool_is_per_engine():
    one, two = _engine(True), _engine(True)
    out = []

    def worker(engine):
        t = engine.timeout(1.0)
        out.append(t)
        yield t

    one.process(worker(one), name="a")
    two.process(worker(two), name="b")
    one.run()
    two.run()
    assert out[0] is not out[1]
