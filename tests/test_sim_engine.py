"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AnyOf,
    DeadlockError,
    Engine,
    Event,
    Interrupt,
    Process,
    Timeout,
)


def test_timeout_advances_clock(engine):
    log = []

    def proc():
        yield engine.timeout(5.0)
        log.append(engine.now)
        yield engine.timeout(2.5)
        log.append(engine.now)

    engine.process(proc())
    engine.run()
    assert log == [5.0, 7.5]


def test_zero_delay_timeout_fires(engine):
    def proc():
        yield engine.timeout(0.0)
        return "done"

    p = engine.process(proc())
    engine.run()
    assert p.triggered
    assert p.value == "done"


def test_negative_delay_rejected(engine):
    with pytest.raises(ValueError):
        engine.timeout(-1.0)


def test_event_value_passed_to_waiter(engine):
    event = engine.event()
    got = []

    def waiter():
        value = yield event
        got.append(value)

    def firer():
        yield engine.timeout(3.0)
        event.succeed("payload")

    engine.process(waiter())
    engine.process(firer())
    engine.run()
    assert got == ["payload"]


def test_event_cannot_fire_twice(engine):
    event = engine.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()
    engine.run()


def test_waiting_on_triggered_event_returns_immediately(engine):
    event = engine.event()
    event.succeed(42)
    got = []

    def waiter():
        value = yield event
        got.append((engine.now, value))

    engine.process(waiter())
    engine.run()
    assert got == [(0.0, 42)]


def test_same_time_events_fire_in_schedule_order(engine):
    order = []

    def make(name):
        def proc():
            yield engine.timeout(1.0)
            order.append(name)

        return proc

    for name in "abcd":
        engine.process(make(name)())
    engine.run()
    assert order == list("abcd")


def test_any_of_returns_first_fired(engine):
    slow = engine.timeout(10.0)
    fast = engine.timeout(2.0)
    got = []

    def waiter():
        fired = yield engine.any_of([slow, fast])
        got.append((engine.now, fired is fast))

    engine.process(waiter())
    engine.run()
    assert got == [(2.0, True)]


def test_any_of_with_already_triggered_child(engine):
    event = engine.event()
    event.succeed("x")
    combo = engine.any_of([engine.timeout(5.0), event])
    assert combo.triggered
    assert combo.value is event


def test_any_of_requires_children(engine):
    with pytest.raises(ValueError):
        engine.any_of([])


def test_process_return_value(engine):
    def proc():
        yield engine.timeout(1.0)
        return 123

    p = engine.process(proc())
    engine.run()
    assert p.value == 123


def test_process_chain_with_yield_from(engine):
    def inner():
        yield engine.timeout(4.0)
        return "inner-result"

    def outer():
        result = yield from inner()
        return result + "!"

    p = engine.process(outer())
    engine.run()
    assert p.value == "inner-result!"


def test_interrupt_thrown_into_process(engine):
    caught = []

    def victim():
        try:
            yield engine.timeout(100.0)
        except Interrupt as exc:
            caught.append((engine.now, exc.cause))

    p = engine.process(victim())

    def attacker():
        yield engine.timeout(7.0)
        p.interrupt("stop")

    engine.process(attacker())
    engine.run()
    assert caught == [(7.0, "stop")]


def test_interrupt_coalesces(engine):
    caught = []

    def victim():
        try:
            yield engine.timeout(100.0)
        except Interrupt:
            caught.append(engine.now)
        yield engine.timeout(1.0)

    p = engine.process(victim())

    def attacker():
        yield engine.timeout(5.0)
        p.interrupt()
        p.interrupt()  # second interrupt before delivery coalesces

    engine.process(attacker())
    engine.run()
    assert caught == [5.0]


def test_interrupt_finished_process_rejected(engine):
    def quick():
        return None
        yield

    p = engine.process(quick())
    engine.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_stale_wakeup_after_interrupt_is_ignored(engine):
    # Process interrupted away from a timeout must not be resumed again
    # when that timeout later fires.
    resumed = []

    def victim():
        try:
            yield engine.timeout(10.0)
            resumed.append("timeout")
        except Interrupt:
            resumed.append("interrupt")
        yield engine.timeout(50.0)
        resumed.append("second")

    p = engine.process(victim())

    def attacker():
        yield engine.timeout(3.0)
        p.interrupt()

    engine.process(attacker())
    engine.run()
    assert resumed == ["interrupt", "second"]


def test_deadlock_detected(engine):
    def stuck():
        yield engine.event()  # never fires

    engine.process(stuck(), name="stuck-proc")
    with pytest.raises(DeadlockError, match="stuck-proc"):
        engine.run()


def test_daemon_process_does_not_deadlock(engine):
    def daemon_proc():
        yield engine.event()

    engine.process(daemon_proc(), daemon=True)
    engine.run()  # no exception


def test_run_until_stops_at_time(engine):
    log = []

    def proc():
        for _ in range(10):
            yield engine.timeout(10.0)
            log.append(engine.now)

    engine.process(proc(), daemon=True)
    engine.run(until=35.0)
    assert log == [10.0, 20.0, 30.0]
    assert engine.now == 35.0


def test_call_at(engine):
    fired = []
    engine.call_at(12.0, lambda: fired.append(engine.now))

    def proc():
        yield engine.timeout(20.0)

    engine.process(proc())
    engine.run()
    assert fired == [12.0]


def test_call_at_rejects_past(engine):
    def proc():
        yield engine.timeout(5.0)
        with pytest.raises(ValueError):
            engine.call_at(1.0, lambda: None)

    engine.process(proc())
    engine.run()


def test_yielding_non_event_raises(engine):
    def bad():
        yield "soon"

    engine.process(bad())
    with pytest.raises(TypeError, match="must yield Event"):
        engine.run()


def test_yielding_bare_delay_sleeps(engine):
    # A bare number is the allocation-free equivalent of
    # ``yield engine.timeout(n)``: resume after n us with value None.
    log = []

    def proc():
        got = yield 5.0
        log.append((engine.now, got))
        yield 3  # ints work too
        log.append((engine.now, None))

    engine.process(proc())
    engine.run()
    assert log == [(5.0, None), (8.0, None)]


def test_yielding_negative_delay_raises(engine):
    def bad():
        yield -1.0

    engine.process(bad())
    with pytest.raises(ValueError, match="negative delay"):
        engine.run()


def test_interrupt_during_bare_delay(engine):
    # An interrupt thrown mid-delay must cancel the pending resume: the
    # process moves on and the stale wakeup may not fire it twice.
    log = []

    def sleeper():
        try:
            yield 100.0
            log.append("full sleep")
        except Interrupt as err:
            log.append(("interrupted", engine.now, err.cause))
        yield 5.0
        log.append(("resumed", engine.now))

    proc = engine.process(sleeper())

    def poker():
        yield engine.timeout(10.0)
        proc.interrupt("wake")

    engine.process(poker())
    engine.run()
    assert log == [("interrupted", 10.0, "wake"), ("resumed", 15.0)]


def test_determinism_across_runs():
    def build():
        eng = Engine()
        trace = []

        def proc(name, delay):
            for i in range(3):
                yield eng.timeout(delay)
                trace.append((name, eng.now))

        for i in range(5):
            eng.process(proc(f"p{i}", 1.0 + i * 0.1))
        eng.run()
        return trace

    assert build() == build()


def test_anyof_detaches_callbacks_from_losers(engine):
    """Regression: AnyOf must deregister from children that did not
    fire, or long-lived events accumulate one dead callback per wait
    (this leaked gigabytes in lock-heavy runs)."""
    long_lived = engine.event()

    def waiter():
        for _ in range(50):
            timeout = engine.timeout(1.0)
            yield engine.any_of([timeout, long_lived])

    engine.process(waiter())
    engine.run()
    assert len(long_lived.live_callbacks()) <= 1
    # Tombstoned cells are compacted away, not accumulated forever.
    assert len(long_lived.callbacks) <= 16


def test_anyof_winner_callbacks_cleared(engine):
    fast = engine.timeout(1.0)
    slow = engine.event()
    combo = engine.any_of([fast, slow])

    def waiter():
        fired = yield combo
        assert fired is fast

    engine.process(waiter())
    engine.run()
    assert slow.live_callbacks() == []


def test_cancel_callback_is_constant_time_tombstone(engine):
    event = engine.event()
    seen = []
    cells = [event.add_callback(lambda e, i=i: seen.append(i))
             for i in range(4)]
    event.cancel_callback(cells[1])
    event.cancel_callback(cells[1])  # double-cancel is a no-op
    event.succeed()
    engine.run()
    assert seen == [0, 2, 3]


def test_cancel_after_fire_is_harmless(engine):
    event = engine.event()
    cell = event.add_callback(lambda e: None)
    event.succeed()
    engine.run()
    event.cancel_callback(cell)  # fired events accept late cancels


def test_interrupt_then_fire_at_same_instant_skips_resume(engine):
    # A process interrupted away from an event that fires at the same
    # simulated instant (after the interrupt was posted) must take the
    # interrupt; the tombstoned resume callback is skipped at delivery.
    log = []
    event = engine.event()

    def victim():
        try:
            yield event
            log.append("event")
        except Interrupt:
            log.append("interrupt")

    p = engine.process(victim())

    def attacker():
        yield engine.timeout(1.0)
        p.interrupt()
        event.succeed()

    engine.process(attacker())
    engine.run()
    assert log == ["interrupt"]
