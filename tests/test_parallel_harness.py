"""Determinism and caching guarantees of the parallel harness.

The contract (see ``repro/harness/parallel.py``): ``--jobs N`` and the
on-disk result cache are pure wall-clock optimisations — every simulated
time, counter, and breakdown is bit-identical to a fresh serial run.
"""

from __future__ import annotations

import pickle

import pytest

from repro.config import CSM_POLL, TMK_MC_POLL, CostModel
from repro.harness import sweep
from repro.harness.cache import (
    ResultCache,
    run_key,
    sequential_key,
    source_fingerprint,
)
from repro.harness.cli import main
from repro.harness.runner import BatchPoint, ExperimentContext
from repro.harness.parallel import PointSpec, persistent_pool, run_points


def _specs():
    ctx = ExperimentContext(scale="tiny")
    points = [
        BatchPoint("sor", None),
        BatchPoint("sor", CSM_POLL, 4),
        BatchPoint("sor", TMK_MC_POLL, 4),
        BatchPoint("water", CSM_POLL, 4),
    ]
    return [ctx._spec_for(p) for p in points]


def _signature(result):
    return (
        result.exec_time,
        result.network_bytes,
        result.stats.aggregate_counters(),
        dict(result.breakdown.time),
    )


def test_specs_pickle_cleanly():
    for spec in _specs():
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


def test_run_points_parallel_matches_serial():
    specs = _specs()
    serial = run_points(specs, jobs=1)
    fanned = run_points(specs, jobs=4)
    assert len(serial) == len(fanned) == len(specs)
    for a, b in zip(serial, fanned):
        assert _signature(a) == _signature(b)


def test_persistent_pool_reused_across_batches_matches_serial():
    specs = _specs()[:2]
    serial = run_points(specs, jobs=1)
    pool = persistent_pool(2)
    try:
        first = run_points(specs, pool=pool)
        second = run_points(specs, pool=pool)  # same workers, no respawn
        assert run_points([], pool=pool) == []
    finally:
        pool.shutdown()
    for a, b, c in zip(serial, first, second):
        assert _signature(a) == _signature(b) == _signature(c)


def test_context_pool_fans_batches_across_persistent_workers():
    points = [
        BatchPoint("sor", CSM_POLL, 4),
        BatchPoint("sor", TMK_MC_POLL, 4),
    ]
    serial = ExperimentContext(scale="tiny", jobs=1).run_batch(points)
    pool = persistent_pool(2)
    try:
        ctx = ExperimentContext(scale="tiny", pool=pool)
        pooled = ctx.run_batch(points)
        again = ctx.run_batch(points)  # second batch reuses the pool
    finally:
        pool.shutdown()
    for a, b, c in zip(serial, pooled, again):
        assert _signature(a) == _signature(b) == _signature(c)


def test_run_batch_jobs_matches_serial_context():
    points = [
        BatchPoint("sor", None),
        BatchPoint("sor", CSM_POLL, 4),
        BatchPoint("sor", TMK_MC_POLL, 4),
    ]
    serial = ExperimentContext(scale="tiny", jobs=1).run_batch(points)
    fanned = ExperimentContext(scale="tiny", jobs=4).run_batch(points)
    for a, b in zip(serial, fanned):
        assert _signature(a) == _signature(b)


def test_trace_runs_merge_in_point_order():
    points = [
        BatchPoint("sor", CSM_POLL, 4),
        BatchPoint("sor", TMK_MC_POLL, 4),
    ]
    ctx = ExperimentContext(scale="tiny", jobs=2, trace=True)
    ctx.run_batch(points)
    assert [run.meta["variant"] for run in ctx.trace_runs] == [
        "csm_poll",
        "tmk_mc_poll",
    ]
    assert all(len(run.events) > 0 for run in ctx.trace_runs)


def test_cache_hit_equals_fresh_run(tmp_path):
    cache_dir = tmp_path / "cache"
    points = [BatchPoint("sor", None), BatchPoint("sor", CSM_POLL, 4)]

    cold = ExperimentContext(
        scale="tiny", cache=ResultCache(cache_dir=cache_dir)
    )
    fresh = cold.run_batch(points)
    assert cold.cache.stats.misses == 2
    assert cold.cache.stats.hits == 0

    warm = ExperimentContext(
        scale="tiny", cache=ResultCache(cache_dir=cache_dir)
    )
    cached = warm.run_batch(points)
    assert warm.cache.stats.hits == 2
    assert warm.cache.stats.misses == 0
    for a, b in zip(fresh, cached):
        assert _signature(a) == _signature(b)


def test_refresh_recomputes_and_overwrites(tmp_path):
    cache_dir = tmp_path / "cache"
    point = [BatchPoint("sor", CSM_POLL, 4)]
    ExperimentContext(
        scale="tiny", cache=ResultCache(cache_dir=cache_dir)
    ).run_batch(point)

    refreshing = ExperimentContext(
        scale="tiny", cache=ResultCache(cache_dir=cache_dir, refresh=True)
    )
    refreshing.run_batch(point)
    assert refreshing.cache.stats.hits == 0
    assert refreshing.cache.stats.misses == 1
    assert refreshing.cache.stats.stores == 1


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache_dir = tmp_path / "cache"
    cache = ResultCache(cache_dir=cache_dir)
    ctx = ExperimentContext(scale="tiny", cache=cache)
    ctx.run_batch([BatchPoint("sor", CSM_POLL, 4)])
    (path,) = list(cache_dir.rglob("*.pkl"))
    path.write_bytes(b"not a pickle")

    again = ExperimentContext(
        scale="tiny", cache=ResultCache(cache_dir=cache_dir)
    )
    result = again.run_batch([BatchPoint("sor", CSM_POLL, 4)])[0]
    assert again.cache.stats.misses == 1
    assert result.exec_time > 0


def test_cache_keys_are_sensitive_to_inputs():
    ctx = ExperimentContext(scale="tiny")
    spec = ctx._spec_for(BatchPoint("sor", CSM_POLL, 4))
    base = run_key(spec.app, spec.params, spec.run_config())

    other_procs = ctx._spec_for(BatchPoint("sor", CSM_POLL, 8))
    assert run_key("sor", spec.params, other_procs.run_config()) != base

    other_variant = ctx._spec_for(BatchPoint("sor", TMK_MC_POLL, 4))
    assert run_key("sor", spec.params, other_variant.run_config()) != base

    swept = ctx._spec_for(
        BatchPoint("sor", CSM_POLL, 4, costs=CostModel(mc_latency=99.0))
    )
    assert run_key("sor", spec.params, swept.run_config()) != base

    other_params = dict(spec.params)
    first = sorted(other_params)[0]
    other_params[first] = other_params[first] + 1
    assert run_key("sor", other_params, spec.run_config()) != base

    # Stability: recomputing the same key yields the same digest.
    assert run_key(spec.app, spec.params, spec.run_config()) == base


def test_sequential_key_distinct_namespace():
    ctx = ExperimentContext(scale="tiny")
    spec = ctx._spec_for(BatchPoint("sor", None))
    a = sequential_key("sor", spec.params, ctx.cluster.page_size, spec.costs)
    b = sequential_key("sor", spec.params, ctx.cluster.page_size + 1024,
                       spec.costs)
    assert a != b
    assert a == sequential_key(
        "sor", spec.params, ctx.cluster.page_size, spec.costs
    )


def test_source_fingerprint_stable():
    assert source_fingerprint() == source_fingerprint()
    assert len(source_fingerprint()) == 64


def test_sweep_shares_one_sequential_baseline(monkeypatch):
    """The sweep satellite: N knob values must not mean N baseline runs."""
    import repro.harness.runner as runner_mod

    executed = []
    real = runner_mod.run_points

    def counting(specs, jobs=1, **kw):
        executed.extend(specs)
        return real(specs, jobs=jobs, **kw)

    monkeypatch.setattr(runner_mod, "run_points", counting)
    ctx = ExperimentContext(scale="tiny")
    points = sweep.sweep_latency(
        ctx, app="sor", nprocs=4, latencies=(2.6, 10.4, 20.8)
    )
    assert len(points) == 6  # 3 latencies x 2 variants
    sequential_runs = [s for s in executed if s.is_sequential]
    assert len(sequential_runs) == 1
    # and the swept points all executed
    assert len([s for s in executed if not s.is_sequential]) == 6


def test_sweep_baseline_shared_across_both_sweeps(monkeypatch):
    import repro.harness.runner as runner_mod

    executed = []
    real = runner_mod.run_points

    def counting(specs, jobs=1, **kw):
        executed.extend(specs)
        return real(specs, jobs=jobs, **kw)

    monkeypatch.setattr(runner_mod, "run_points", counting)
    ctx = ExperimentContext(scale="tiny")
    sweep.sweep_latency(ctx, app="sor", nprocs=4, latencies=(2.6,))
    sweep.sweep_bandwidth(ctx, app="sor", nprocs=4, multipliers=(2.0,))
    assert len([s for s in executed if s.is_sequential]) == 1


def test_cli_no_cache_disables_cache(capsys):
    assert main([
        "table3", "--scale", "tiny", "--apps", "sor", "--procs", "4",
        "--no-cache",
    ]) == 0
    err = capsys.readouterr().err
    assert "cache:" not in err
    assert "jobs=1" in err


def test_cli_cache_footer_reports_hits(tmp_path, capsys):
    argv = [
        "table3", "--scale", "tiny", "--apps", "sor", "--procs", "4",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(argv) == 0
    first = capsys.readouterr()
    assert "2 miss(es)" in first.err

    assert main(argv) == 0
    second = capsys.readouterr()
    assert "2 hit(s)" in second.err
    assert first.out == second.out


def test_cli_jobs_output_matches_serial(tmp_path, capsys):
    base = [
        "figure5", "--scale", "tiny", "--apps", "sor",
        "--variants", "csm_poll", "--counts", "1", "4", "--no-cache",
    ]
    assert main(base) == 0
    serial = capsys.readouterr().out
    assert main(base + ["--jobs", "4"]) == 0
    fanned = capsys.readouterr().out
    assert serial == fanned
