"""Direct tests of the shared LRC engine through a minimal stub
protocol (no data movement at all — consistency metadata only)."""

import numpy as np
import pytest

from repro.config import (
    ClusterConfig,
    CostModel,
    Mechanism,
    RunConfig,
    Transport,
    Variant,
    SystemKind,
)
from repro.cluster.machine import Cluster
from repro.cluster.messaging import Messenger
from repro.cluster.network import MemoryChannel
from repro.core.lrc import LrcProtocolBase
from repro.core.runtime.env import Env
from repro.memory import AddressSpace
from repro.sim import Engine
from repro.stats import StatsBoard


class MetadataOnlyProtocol(LrcProtocolBase):
    """LRC synchronization with no pages: reads/writes are free."""

    def ensure_read(self, proc, page):
        return
        yield

    def ensure_write(self, proc, page):
        self._state(proc).notices.add(page)
        return
        yield

    def page_data(self, proc, page):
        return self.space.backing_page(page)

    def apply_write(self, proc, page, start, raw):
        self.space.backing_page(page)[start : start + len(raw)] = raw
        return
        yield

    def _note_remote_write(self, proc, writer, iid, page_idx):
        self.noted.setdefault(proc.pid, []).append((writer, iid, page_idx))
        return 0.0

    def _serve_data(self, proc, request):
        raise RuntimeError(f"no data requests expected: {request.kind}")
        yield

    noted: dict = {}


def build(nprocs=4):
    engine = Engine()
    stats = StatsBoard(nprocs)
    cfg = ClusterConfig()
    costs = CostModel()
    cluster = Cluster(
        engine,
        cfg,
        costs,
        Mechanism.POLL,
        [(i % 8, i // 8) for i in range(nprocs)],
        stats,
    )
    network = MemoryChannel(engine, cfg, costs)
    messenger = Messenger(
        engine, cluster, network, costs, Transport.MEMORY_CHANNEL
    )
    space = AddressSpace(1024)
    space.alloc("blob", 16 * 1024)
    run_cfg = RunConfig(
        variant=Variant("stub", SystemKind.TREADMARKS, Mechanism.POLL),
        nprocs=nprocs,
        cluster=cfg,
    )
    protocol = MetadataOnlyProtocol(
        engine, cluster, network, messenger, space, stats, run_cfg
    )
    protocol.noted = {}
    for proc in cluster.procs:
        proc.server = protocol.serve
    return engine, cluster, protocol


def run_workers(engine, cluster, protocol, worker_fn, nprocs):
    done = []

    def wrap(rank):
        env = Env(rank, nprocs, cluster.proc(rank), protocol)
        yield from worker_fn(env)
        done.append(rank)
        engine.process(
            cluster.proc(rank).serve_forever(),
            name=f"idle-{rank}",
            daemon=True,
        )

    for rank in range(nprocs):
        engine.process(wrap(rank), name=f"w{rank}")
    engine.run()
    assert sorted(done) == list(range(nprocs))


def test_interval_records_travel_with_lock_grants():
    engine, cluster, protocol = build(2)

    def worker(env):
        if env.rank == 0:
            yield from env.lock_acquire(0)
            yield from env.protocol.ensure_write(env.proc, 3)
            yield from env.lock_release(0)
            yield from env.barrier(0)
        else:
            yield from env.barrier(0)
            yield from env.lock_acquire(0)
            yield from env.lock_release(0)

    run_workers(engine, cluster, protocol, worker, 2)
    assert (0, 1, 3) in protocol.noted.get(1, [])
    # Vector timestamps converged.
    assert protocol.procs[1].vts[0] == 1


def test_barrier_merges_everyones_intervals():
    engine, cluster, protocol = build(4)

    def worker(env):
        yield from env.protocol.ensure_write(env.proc, 10 + env.rank)
        yield from env.barrier(0)

    run_workers(engine, cluster, protocol, worker, 4)
    for pid in range(4):
        assert protocol.procs[pid].vts == [1, 1, 1, 1]
        noted_pages = {p for (_, _, p) in protocol.noted.get(pid, [])}
        expected = {10 + r for r in range(4)} - {10 + pid}
        assert noted_pages == expected


def test_lock_chain_through_manager_forwarding():
    engine, cluster, protocol = build(4)
    order = []

    def worker(env):
        # Lock 1's manager is rank 1; stagger so the grant chain forms.
        for _ in range(2):
            yield from env.compute(10.0 * (env.rank + 1))
            yield from env.lock_acquire(1)
            order.append(env.rank)
            yield from env.compute(5.0)
            yield from env.lock_release(1)
        yield from env.barrier(0)

    run_workers(engine, cluster, protocol, worker, 4)
    assert len(order) == 8
    assert sorted(order) == [0, 0, 1, 1, 2, 2, 3, 3]


def test_flag_records_flow_to_waiters():
    engine, cluster, protocol = build(2)

    def worker(env):
        if env.rank == 0:
            yield from env.protocol.ensure_write(env.proc, 7)
            yield from env.flag_set(0)
        else:
            yield from env.flag_wait(0)
        yield from env.barrier(0)

    run_workers(engine, cluster, protocol, worker, 2)
    assert (0, 1, 7) in protocol.noted.get(1, [])


def test_gc_collects_records_in_stub():
    engine, cluster, protocol = build(2)
    protocol.gc_record_threshold = 4

    def worker(env):
        for it in range(6):
            yield from env.protocol.ensure_write(env.proc, env.rank)
            yield from env.barrier(0)

    run_workers(engine, cluster, protocol, worker, 2)
    for pid in range(2):
        assert protocol.procs[pid].store.record_count() <= 4 + 2
    protocol.check_invariants()
