"""docs/POLICIES.md must table every sharing-policy knob exactly.

The same enforced-catalog deal as docs/NETWORKS.md
(tests/test_network_docs.py) and docs/OBSERVABILITY.md: each policy
knob has a ``## <Knob> ...`` section whose value table must match the
corresponding ``describe_*()`` function in ``repro.memory.policy``
*exactly* — missing values, stale constants, and phantom rows all
fail.  Registries and doc move in the same commit or not at all.
"""

import re
from pathlib import Path

from repro.memory import policy

REPO = Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "POLICIES.md"

#: knob section heading -> (describe fn, table attribute key)
KNOBS = {
    "Granularity": (policy.describe_granularity, "unit"),
    "Prefetch": (policy.describe_prefetch, "depth"),
    "Homing": (policy.describe_homing, "trigger"),
}

# A knob section opens: ## Granularity (`--granularity`)
SECTION = re.compile(r"^## (Granularity|Prefetch|Homing)\b", re.M)

# Value rows: | `block256` | 256 B |
VALUE_ROW = re.compile(r"^\| `([\w-]+)` \| ([^|]+) \|", re.M)


def documented_sections():
    text = DOC.read_text()
    matches = list(SECTION.finditer(text))
    sections = {}
    for i, match in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        sections[match.group(1)] = text[match.start():end]
    return sections


def documented_rows(section_text):
    return {
        name: value.strip()
        for name, value in VALUE_ROW.findall(section_text)
    }


def test_every_knob_has_a_section():
    missing = set(KNOBS) - set(documented_sections())
    assert not missing, (
        f"policy knobs without a docs/POLICIES.md section: "
        f"{sorted(missing)}"
    )


def test_tables_match_describe_exactly():
    sections = documented_sections()
    for knob, (describe, attr) in KNOBS.items():
        described = {
            name: attrs[attr] for name, attrs in describe().items()
        }
        documented = documented_rows(sections[knob])
        missing = set(described) - set(documented)
        assert not missing, (
            f"{knob}: values in describe() but not docs/POLICIES.md: "
            f"{sorted(missing)}"
        )
        phantom = set(documented) - set(described)
        assert not phantom, (
            f"{knob}: docs/POLICIES.md tables values describe() does "
            f"not report: {sorted(phantom)}"
        )
        for name, value in described.items():
            assert documented[name] == value, (
                f"{knob}: {name} is {documented[name]!r} in the docs "
                f"but describe() reports {value!r} — update "
                f"docs/POLICIES.md"
            )


def test_registries_and_tables_agree():
    # The describe() functions must themselves cover the registries —
    # a value accepted by validate_* but absent from the doc contract
    # would dodge the table enforcement above.
    assert set(policy.describe_granularity()) == set(policy.GRANULARITIES)
    assert set(policy.describe_prefetch()) == set(policy.PREFETCHES)
    assert set(policy.describe_homing()) == set(policy.HOMINGS)


def test_doc_cross_references_exist():
    text = DOC.read_text()
    for ref in (
        "src/repro/memory/policy.py",
        "src/repro/harness/policies.py",
        "src/repro/apps/irreg.py",
        "tests/test_sharing_policy.py",
        "tests/test_policy_docs.py",
        "benchmarks/bench_wallclock.py",
        ".github/workflows/ci.yml",
    ):
        assert ref in text, f"docs/POLICIES.md lost its pointer to {ref}"
        assert (REPO / ref).exists(), f"{ref} referenced but missing"
