"""docs/SERVING.md must match the serving layer's actual surface.

Same deal as docs/NETWORKS.md and tests/test_network_docs.py: the doc
is enforced, not aspirational.  Every route in
``repro.serving.server.ROUTES`` must appear in the routes table, every
``ServerConfig`` field must appear in the configuration table with its
actual default, and the file pointers in the walkthrough must name
files that exist.
"""

import re
from pathlib import Path

from repro.serving.server import ROUTES, ServerConfig

REPO = Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "SERVING.md"

# Routes rows: | `GET` | `/v1/healthz` | summary |
ROUTE_ROW = re.compile(r"^\| `(GET|POST|PUT|DELETE)` \| `([^`]+)` \|", re.M)

# Config rows: | `host` | `'127.0.0.1'` | meaning |
CONFIG_ROW = re.compile(r"^\| `(\w+)` \| `([^`]+)` \|", re.M)


def test_every_route_is_documented():
    documented = set(ROUTE_ROW.findall(DOC.read_text()))
    assert documented == set(ROUTES), (
        f"docs/SERVING.md routes table ({sorted(documented)}) does not "
        f"match repro.serving.server.ROUTES ({sorted(ROUTES)})"
    )


def test_config_table_matches_describe_exactly():
    described = ServerConfig.describe()
    rows = CONFIG_ROW.findall(DOC.read_text())
    documented = {
        key: value for key, value in rows if key in described
    }
    missing = set(described) - set(documented)
    assert not missing, (
        f"ServerConfig fields absent from docs/SERVING.md: "
        f"{sorted(missing)}"
    )
    for key, value in described.items():
        # repr() of strings is quoted ('127.0.0.1'); numbers are bare.
        assert documented[key] in (value, value.strip("'")), (
            f"docs/SERVING.md documents {key} default as "
            f"{documented[key]!r} but ServerConfig.describe() reports "
            f"{value!r} — update the table"
        )


def test_no_phantom_config_rows():
    described = ServerConfig.describe()
    # Rows in the configuration table (between its header and the next
    # heading) that name no real field are stale.
    text = DOC.read_text()
    section = text.split("## Configuration", 1)[1].split("\n## ", 1)[0]
    phantom = {
        key for key, _ in CONFIG_ROW.findall(section)
    } - set(described) - {"Knob"}
    assert not phantom, (
        f"docs/SERVING.md configuration table documents fields "
        f"ServerConfig does not have: {sorted(phantom)}"
    )


def test_doc_cross_references_exist():
    text = DOC.read_text()
    for ref in (
        "src/repro/harness/cache.py",
        "src/repro/serving/server.py",
        "tests/test_serving.py",
        "tests/test_serving_docs.py",
        "benchmarks/bench_wallclock.py",
        ".github/workflows/ci.yml",
        "docs/NETWORKS.md",
    ):
        assert ref in text, f"docs/SERVING.md lost its pointer to {ref}"
        assert (REPO / ref).exists(), f"{ref} referenced but missing"
