"""The sharing-policy layer's contract (docs/POLICIES.md).

Three guarantees, each locked in here:

* **Policies move costs, never values** — hypothesis samples the
  granularity x prefetch x homing x variant matrix on three apps
  (regular sor, pivoting gauss, irregular false-sharing irreg) and
  every combination must reproduce the default triple's results
  bit-for-bit.
* **The default triple is the pre-policy simulator** — passing
  ``(page, none, first-touch)`` explicitly is byte-identical (times,
  counters, values) to not passing policy knobs at all, across the
  whole fastpath x queue x kernels wall-clock matrix.
* **The machinery actually engages** — prefetch and dynamic-homing
  runs bump their counters, sub-page units respect the per-message
  cost floor, and bad policy values fail loudly at config time.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import api
from repro import options as options_mod
from repro.apps import kernels
from repro.config import CostModel, RunConfig, variant_by_name
from repro.core import fastpath
from repro.memory import policy

VARIANTS = ("csm_poll", "tmk_mc_poll", "hlrc_poll")
APPS = ("sor", "gauss", "irreg")
NPROCS = 4


def _values_equal(a, b) -> bool:
    """Bit-exact, None-aware equality over per-rank values lists."""
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, (tuple, list)):
        return (
            isinstance(b, (tuple, list))
            and len(a) == len(b)
            and all(_values_equal(x, y) for x, y in zip(a, b))
        )
    return bool(np.array_equal(np.asarray(a), np.asarray(b)))


_reference = {}


def _reference_values(app: str, variant: str):
    """Default-triple values for (app, variant), memoized per session."""
    key = (app, variant)
    if key not in _reference:
        result = api.run_point(
            app, variant, NPROCS, scale="tiny", network="rdma"
        )
        _reference[key] = result.values
    return _reference[key]


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    app=st.sampled_from(APPS),
    variant=st.sampled_from(VARIANTS),
    granularity=st.sampled_from(policy.GRANULARITIES),
    prefetch=st.sampled_from(policy.PREFETCHES),
    homing=st.sampled_from(policy.HOMINGS),
)
def test_any_policy_combo_preserves_values(
    app, variant, granularity, prefetch, homing
):
    result = api.run_point(
        app,
        variant,
        NPROCS,
        scale="tiny",
        network="rdma",
        granularity=granularity,
        prefetch=prefetch,
        homing=homing,
    )
    assert _values_equal(
        _reference_values(app, variant), result.values
    ), (
        f"{app}/{variant} values diverged under "
        f"({granularity}, {prefetch}, {homing})"
    )


# -- default-triple bit-identity over the wall-clock mode matrix --------


@pytest.fixture(params=["calqueue", "noshard", "heap"])
def queue_mode(request):
    saved = options_mod.current()
    replace(
        saved,
        calqueue=request.param != "heap",
        shard=request.param == "calqueue",
    ).apply()
    yield request.param
    saved.apply()


@pytest.fixture(params=[True, False], ids=["fastpath", "legacy"])
def fastpath_mode(request, queue_mode):
    saved = fastpath.ENABLED
    fastpath.set_enabled(request.param)
    yield request.param
    fastpath.set_enabled(saved)


@pytest.fixture(params=[True, False], ids=["kernels", "scalar"])
def kernels_mode(request, fastpath_mode):
    saved = kernels.ENABLED
    kernels.set_enabled(request.param)
    yield request.param
    kernels.set_enabled(saved)


@pytest.mark.parametrize("app,variant", [
    ("sor", "csm_poll"),
    ("irreg", "hlrc_poll"),
])
def test_explicit_default_triple_is_byte_identical(
    app, variant, kernels_mode
):
    """In every wall-clock mode, spelling out the default triple must
    reconstruct the pre-policy simulation exactly — times, counters,
    and values, not just values."""
    implicit = api.run_point(app, variant, NPROCS, scale="tiny")
    explicit = api.run_point(
        app,
        variant,
        NPROCS,
        scale="tiny",
        granularity="page",
        prefetch="none",
        homing="first-touch",
    )
    assert explicit.exec_time == implicit.exec_time
    assert explicit.network_bytes == implicit.network_bytes
    assert (
        explicit.stats.aggregate_counters()
        == implicit.stats.aggregate_counters()
    )
    assert _values_equal(implicit.values, explicit.values)


# -- the machinery engages ---------------------------------------------


def test_prefetch_fires_and_counts():
    result = api.run_point(
        "irreg",
        "hlrc_poll",
        NPROCS,
        scale="tiny",
        network="rdma",
        granularity="block256",
        prefetch="seq",
    )
    assert result.counter("prefetches") > 0
    assert _values_equal(
        _reference_values("irreg", "hlrc_poll"), result.values
    )


def test_dynamic_homing_migrates_and_counts():
    result = api.run_point(
        "irreg",
        "csm_poll",
        8,
        scale="tiny",
        network="rdma",
        homing="dynamic",
    )
    assert result.counter("home_migrations") > 0
    baseline = api.run_point(
        "irreg", "csm_poll", 8, scale="tiny", network="rdma"
    )
    assert _values_equal(baseline.values, result.values)


def test_treadmarks_accepts_homing_as_noop():
    # No data homes in TreadMarks: the knob validates but nothing
    # migrates, and results are identical to first-touch.
    result = api.run_point(
        "irreg",
        "tmk_mc_poll",
        NPROCS,
        scale="tiny",
        network="rdma",
        homing="dynamic",
    )
    assert result.counter("home_migrations") == 0
    assert _values_equal(
        _reference_values("irreg", "tmk_mc_poll"), result.values
    )


# -- config-layer validation and the cost floor ------------------------


def test_unit_cost_floor():
    costs = CostModel()
    # A full page pays the paper's cost untouched.
    assert costs.page_sized(362.0, 8192) == 362.0
    # Sub-page units scale linearly...
    assert costs.page_sized(362.0, 2048) == pytest.approx(362.0 / 4)
    # ...but never below the per-message floor.
    assert costs.page_sized(100.0, 256) == costs.unit_cost_floor
    assert costs.page_sized(100.0, 256) == 9.0
    # Multi-page regions scale up.
    assert costs.page_sized(362.0, 16384) == pytest.approx(724.0)


@pytest.mark.parametrize("field,value", [
    ("granularity", "block99"),
    ("prefetch", "psychic"),
    ("homing", "nowhere"),
])
def test_bad_policy_values_fail_at_config_time(field, value):
    with pytest.raises(ValueError, match="known"):
        RunConfig(
            variant=variant_by_name("csm_poll"),
            nprocs=2,
            **{field: value},
        )


def test_legacy_first_touch_ablation_resolves_to_round_robin():
    cfg = RunConfig(
        variant=variant_by_name("csm_poll"),
        nprocs=2,
        first_touch_homes=False,
    )
    assert cfg.resolved_homing == "round-robin"
    # An explicit non-default homing wins over the legacy flag.
    cfg = RunConfig(
        variant=variant_by_name("csm_poll"),
        nprocs=2,
        first_touch_homes=False,
        homing="dynamic",
    )
    assert cfg.resolved_homing == "dynamic"


def test_unit_size_resolution():
    assert policy.resolve_unit_size("page", 8192) is None
    assert policy.resolve_unit_size("block256", 8192) == 256
    assert policy.resolve_unit_size("region4", 8192) == 4 * 8192
    cfg = RunConfig(
        variant=variant_by_name("csm_poll"),
        nprocs=2,
        granularity="block1k",
    )
    assert cfg.unit_bytes == 1024
    assert cfg.resolved_unit_bytes == 1024
    cfg = RunConfig(variant=variant_by_name("csm_poll"), nprocs=2)
    assert cfg.unit_bytes is None
    assert cfg.resolved_unit_bytes == cfg.cluster.page_size
