"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig, CostModel


@pytest.fixture
def engine():
    from repro.sim import Engine

    return Engine()


@pytest.fixture
def cluster_config():
    return ClusterConfig()


@pytest.fixture
def costs():
    return CostModel()
