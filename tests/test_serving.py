"""Serving-layer guarantees: coalescing, batching, identity, shutdown.

The contract (see ``docs/SERVING.md``): the experiment server is a pure
wall-clock optimisation.  Every payload it serves — whether from the
sharded cache, a coalesced singleflight, or a cold batch — is
byte-for-byte the canonical encoding of the result the equivalent
direct :func:`repro.api.run_point` call produces.  These tests pin the
three tiers individually (singleflight and batcher as units, cache
migration on disk) and end-to-end (in-process and over real HTTP).
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import api
from repro.config import CSM_POLL
from repro.harness.cache import ResultCache, key_for_spec, run_key
from repro.harness.runner import BatchPoint, ExperimentContext
from repro.serving import (
    ColdPointBatcher,
    HttpClient,
    ServingError,
    SingleFlight,
    encode_result,
    request_kwargs,
)
from repro.serving.server import (
    ExperimentServer,
    ExperimentService,
    ServerConfig,
)

SOR = {"app": "sor", "variant": "csm_poll", "nprocs": 4, "scale": "tiny"}


def _config(tmp_path, **overrides) -> ServerConfig:
    fields = {
        "jobs": 0,
        "batch_window_ms": 1.0,
        "cache_dir": str(tmp_path / "serve-cache"),
    }
    fields.update(overrides)
    return ServerConfig(**fields)


def _serve(tmp_path, coro_fn, **config_overrides):
    """Run ``coro_fn(service)`` against a started, then drained, service."""

    async def go():
        service = ExperimentService(_config(tmp_path, **config_overrides))
        await service.start()
        try:
            return await coro_fn(service)
        finally:
            await service.shutdown()

    return asyncio.run(go())


def _payload_bytes(payload) -> bytes:
    """Re-encode a served ``payload['result']`` canonically."""
    return json.dumps(
        payload["result"], sort_keys=True, separators=(",", ":")
    ).encode()


# -- tier primitives ---------------------------------------------------


def test_singleflight_one_leader_n_awaiters():
    async def go():
        flight = SingleFlight()
        f1, lead1 = flight.begin("k")
        f2, lead2 = flight.begin("k")
        assert lead1 and not lead2
        assert f1 is f2
        assert len(flight) == 1
        assert flight.led == 1 and flight.coalesced == 1
        flight.resolve("k", 42)
        assert await f1 == 42 and await f2 == 42
        assert len(flight) == 0

        # A retired key starts a fresh flight; failures propagate.
        f3, lead3 = flight.begin("k")
        assert lead3
        flight.fail("k", ValueError("boom"))
        with pytest.raises(ValueError):
            await f3

    asyncio.run(go())


def test_batcher_window_and_max_batch_flush():
    async def go():
        done = []
        with ThreadPoolExecutor(max_workers=2) as pool:
            batcher = ColdPointBatcher(
                submit=lambda spec: pool.submit(lambda: (spec * 2, 0.0)),
                on_done=lambda key, outcome, err: done.append(
                    (key, outcome, err)
                ),
                window_s=0.01,
                max_batch=3,
            )
            batcher.admit("a", 1)
            batcher.admit("b", 2)
            # Window armed but not elapsed: nothing flushed yet.
            assert batcher.batches == 0
            await asyncio.sleep(0.05)
            assert batcher.batches == 1
            assert batcher.largest_batch == 2

            # A burst of max_batch flushes immediately, no window wait.
            batcher.admit("c", 3)
            batcher.admit("d", 4)
            batcher.admit("e", 5)
            assert batcher.batches == 2
            assert batcher.largest_batch == 3
            await batcher.drain()
        assert batcher.points == 5
        assert sorted(k for k, _, _ in done) == ["a", "b", "c", "d", "e"]
        assert all(err is None for _, _, err in done)
        outcomes = {k: out for k, out, _ in done}
        assert outcomes["e"] == (10, 0.0)

    asyncio.run(go())


def test_batcher_reports_submit_errors():
    async def go():
        done = []
        batcher = ColdPointBatcher(
            submit=lambda spec: (_ for _ in ()).throw(
                RuntimeError("pool down")
            ),
            on_done=lambda key, outcome, err: done.append(
                (key, outcome, err)
            ),
            window_s=0.0,
        )
        batcher.admit("k", object())
        batcher.flush()
        assert len(done) == 1
        key, outcome, err = done[0]
        assert key == "k" and outcome is None
        assert isinstance(err, RuntimeError)

    asyncio.run(go())


# -- cache layout: sharded, with legacy flat fallback ------------------


def test_cache_put_writes_sharded_layout(tmp_path):
    cache = ResultCache(cache_dir=tmp_path)
    key = "ab" * 32
    cache.put(key, {"x": 1})
    assert (tmp_path / key[:2] / f"{key}.pkl").exists()
    assert cache.get(key) == {"x": 1}


def test_legacy_flat_entry_hits_and_migrates(tmp_path):
    key = "cd" * 32
    ResultCache(cache_dir=tmp_path).put(key, {"x": 2})
    sharded = tmp_path / key[:2] / f"{key}.pkl"
    flat = tmp_path / f"{key}.pkl"
    sharded.rename(flat)  # simulate a cache written pre-sharding
    (tmp_path / key[:2]).rmdir()

    fresh = ResultCache(cache_dir=tmp_path)
    assert fresh.get(key) == {"x": 2}
    assert fresh.stats.hits == 1
    assert fresh.stats.migrated == 1
    # Migration moved (not copied) the entry into its shard.
    assert sharded.exists() and not flat.exists()

    assert fresh.get(key) == {"x": 2}
    assert fresh.stats.migrated == 1  # second hit is plain sharded


def test_cache_summary_counts_shards_and_legacy(tmp_path):
    cache = ResultCache(cache_dir=tmp_path)
    cache.put("ab" * 32, {"x": 1})
    cache.put("cd" * 32, {"x": 2})
    (tmp_path / ("ef" * 32 + ".pkl")).write_bytes(b"legacy")
    summary = cache.summary()
    assert summary["entries"] == 3
    assert summary["shards"] == 2
    assert summary["legacy_entries"] == 1
    assert summary["bytes"] > 0


def test_key_for_spec_matches_manual_derivation():
    ctx = ExperimentContext(scale="tiny")
    spec = ctx._spec_for(BatchPoint("sor", CSM_POLL, 4))
    assert key_for_spec(spec) == run_key(
        spec.app, spec.params, spec.run_config()
    )
    sequential = ctx._spec_for(BatchPoint("sor", None))
    assert key_for_spec(sequential) != key_for_spec(spec)
    assert key_for_spec(sequential) == key_for_spec(sequential)


# -- the three tiers, end to end ---------------------------------------


def test_identical_requests_coalesce_to_one_simulation(tmp_path):
    async def fan_out(service):
        return await asyncio.gather(
            *(service.resolve(dict(SOR)) for _ in range(6))
        )

    payloads = _serve(tmp_path, fan_out)
    assert len(payloads) == 6
    sources = sorted(p["source"] for p in payloads)
    assert sources.count("computed") == 1
    assert sources.count("coalesced") == 5
    assert len({p["digest"] for p in payloads}) == 1
    assert len({_payload_bytes(p) for p in payloads}) == 1


def test_cache_tier_survives_service_restarts(tmp_path):
    async def once(service):
        return await service.resolve(dict(SOR))

    first = _serve(tmp_path, once)
    assert first["source"] == "computed"
    second = _serve(tmp_path, once)  # new service, same cache dir
    assert second["source"] == "cache"
    assert second["digest"] == first["digest"]
    assert _payload_bytes(second) == _payload_bytes(first)


@pytest.mark.parametrize(
    "options",
    [
        {},
        {"fastpath": False},
        {"kernels": False},
        {"shard": False},
    ],
    ids=["default", "no-fastpath", "no-kernels", "no-shard"],
)
def test_served_result_is_byte_identical_to_direct(tmp_path, options):
    request = dict(SOR)
    if options:
        request["options"] = options

    async def once(service):
        return await service.resolve(dict(request))

    payload = _serve(tmp_path, once)
    direct = api.run_point(**request_kwargs(request))
    assert _payload_bytes(payload) == encode_result(direct)


def test_graceful_shutdown_completes_inflight_then_503s(tmp_path):
    async def go():
        service = ExperimentService(_config(tmp_path))
        await service.start()
        task = asyncio.ensure_future(service.resolve(dict(SOR)))
        # Let the request reach the batcher before we pull the plug.
        while service.batcher.points == 0 and not task.done():
            await asyncio.sleep(0.01)
        await service.shutdown(drain=True)
        payload = await task  # in-flight work still gets its result
        assert payload["source"] == "computed"
        with pytest.raises(ServingError) as excinfo:
            await service.resolve(dict(SOR))
        assert excinfo.value.status == 503

    asyncio.run(go())


def test_bad_requests_are_400s(tmp_path):
    async def go(service):
        with pytest.raises(ServingError) as unknown_app:
            await service.resolve({"app": "no-such-app"})
        assert unknown_app.value.status == 400
        with pytest.raises(ServingError) as unknown_field:
            await service.resolve(dict(SOR, bogus_knob=1))
        assert unknown_field.value.status == 400
        with pytest.raises(ServingError) as bad_nprocs:
            await service.resolve(dict(SOR, nprocs=-1))
        assert bad_nprocs.value.status == 400
        assert service.stats.errors == 0  # decode errors aren't computes

    _serve(tmp_path, go)


# -- HTTP front end ----------------------------------------------------


def test_http_roundtrip_streaming_and_errors(tmp_path):
    async def go():
        server = ExperimentServer(config=_config(tmp_path, port=0))
        host, port = await server.start()
        client = HttpClient(host, port)
        try:
            assert (await client.healthz())["status"] == "ok"

            payload = await client.resolve(dict(SOR))
            assert payload["source"] == "computed"
            direct = api.run_point(**request_kwargs(SOR))
            assert _payload_bytes(payload) == encode_result(direct)

            # Batch endpoint: JSONL stream, reordered by index.
            batch = await client.points([dict(SOR), dict(SOR), dict(SOR)])
            assert [p["index"] for p in batch] == [0, 1, 2]
            assert all(p["source"] == "cache" for p in batch)
            assert {p["digest"] for p in batch} == {payload["digest"]}

            stats = await client.stats()
            assert stats["serving"]["requests"] == 4
            assert stats["serving"]["cache_hits"] == 3
            assert stats["cache"]["entries"] == 1

            with pytest.raises(ServingError) as bad_app:
                await client.resolve({"app": "no-such-app"})
            assert bad_app.value.status == 400
            with pytest.raises(ServingError) as bad_route:
                await client._json("GET", "/v1/nope")
            assert bad_route.value.status == 404
        finally:
            await server.shutdown()

    asyncio.run(go())


def test_http_stream_reports_per_point_errors(tmp_path):
    async def go():
        server = ExperimentServer(config=_config(tmp_path, port=0))
        host, port = await server.start()
        client = HttpClient(host, port)
        try:
            lines = []
            async for line in client.stream_points(
                [dict(SOR), {"app": "no-such-app"}]
            ):
                lines.append(line)
        finally:
            await server.shutdown()
        by_index = {line["index"]: line for line in lines}
        assert set(by_index) == {0, 1}
        assert "digest" in by_index[0]
        assert by_index[1]["status"] == 400

    asyncio.run(go())


# -- serving-aware api.run_point ---------------------------------------


def test_run_point_cache_reports_in_band_metadata(tmp_path):
    cache = ResultCache(cache_dir=tmp_path / "cache")
    kwargs = request_kwargs(SOR)
    cold = api.run_point(cache=cache, **kwargs)
    assert cold.extras["cache"]["hit"] is False
    warm = api.run_point(cache=cache, **kwargs)
    assert warm.extras["cache"]["hit"] is True
    assert warm.extras["cache"]["key"] == cold.extras["cache"]["key"]
    assert warm.extras["cache"]["stats"]["hits"] == 1
    assert warm.extras["cache"]["stats"]["misses"] == 1
    assert encode_result(warm) == encode_result(cold)
    # The stored pickle is the pure simulation result: the serving
    # metadata is attached per call, never persisted.
    stored = cache.get(cold.extras["cache"]["key"])
    assert "cache" not in stored.extras


def test_driver_provenance_carries_cache_stats(tmp_path):
    cache = ResultCache(cache_dir=tmp_path / "cache")
    result = api.run_experiment(
        "table3", scale="tiny", cache=cache, apps=["sor"], nprocs=4
    )
    stats = result.provenance["cache_stats"]
    assert stats is not None
    assert stats["misses"] > 0
    uncached = api.run_experiment(
        "table3", scale="tiny", apps=["sor"], nprocs=4
    )
    assert uncached.provenance["cache_stats"] is None
