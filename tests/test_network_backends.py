"""Per-backend goldens and NetworkModel interface conformance.

Two layers of pinning for the pluggable network backends:

* ``tests/golden_networks.json`` holds exec times, counters, and
  breakdowns for a protocol spread under every backend.  Each golden is
  replayed over the full wall-clock mode matrix (calendar queue/heap x
  fast path/legacy x kernels/scalar) and must reproduce *exactly* —
  the backends are simulated semantics, the wall-clock modes are not.
* ``tests/golden_cross_era_<backend>.txt`` pins the rendered cross-era
  study per backend at the same invocation CI diffs against.

Plus property tests (hypothesis) checking the interface contract every
backend promises: visibility times never precede issue time plus wire
latency, per-link completion times are monotone, and byte accounting is
conserved between ``usage`` and ``aggregate_bytes``.

Regenerate the goldens only when simulated semantics change
intentionally:

    PYTHONPATH=src python tests/regen_golden_networks.py
"""

import json
import pathlib
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro import options as options_mod
from repro.apps import kernels
from repro.config import ClusterConfig, CostModel, NETWORK_BACKENDS, Transport
from repro.core import fastpath
from repro.cluster.network import NETWORK_MODELS, build_network
from repro.harness import cross_era
from repro.harness.runner import ExperimentContext

HERE = pathlib.Path(__file__).parent
GOLDENS = json.loads((HERE / "golden_networks.json").read_text())

N_NODES = 4


# --- golden replay over the wall-clock mode matrix ----------------------
#
# Same fixture chain as tests/test_engine_equivalence.py: each fixture
# depends on the previous one so setup/teardown nest correctly.


@pytest.fixture(params=[True, False], ids=["calqueue", "heap"])
def queue_mode(request):
    saved = options_mod.current()
    replace(saved, calqueue=request.param).apply()
    yield request.param
    saved.apply()


@pytest.fixture(params=[True, False], ids=["fastpath", "legacy"])
def fastpath_mode(request, queue_mode):
    saved = fastpath.ENABLED
    fastpath.set_enabled(request.param)
    yield request.param
    fastpath.set_enabled(saved)


@pytest.fixture(params=[True, False], ids=["kernels", "scalar"])
def kernels_mode(request, fastpath_mode):
    saved = kernels.ENABLED
    kernels.set_enabled(request.param)
    yield request.param
    kernels.set_enabled(saved)


@pytest.mark.parametrize(
    "golden",
    GOLDENS,
    ids=[
        f"{g['network']}-{g['app']}-{g['variant']}-{g['nprocs']}p"
        for g in GOLDENS
    ],
)
def test_backend_golden_over_mode_matrix(golden, kernels_mode):
    result = api.run_point(
        golden["app"],
        golden["variant"],
        golden["nprocs"],
        scale=golden["scale"],
        network=golden["network"],
    )
    assert result.exec_time == golden["exec_time"]
    assert result.network_bytes == golden["network_bytes"]
    agg = result.stats.aggregate_counters()
    for name, value in golden["counters"].items():
        assert agg[name] == value, f"counter {name}"
    breakdown = result.breakdown.as_dict()
    for category, value in golden["breakdown"].items():
        assert breakdown[category] == value, f"breakdown {category}"


def test_goldens_cover_every_backend():
    assert {g["network"] for g in GOLDENS} == set(NETWORK_BACKENDS)


def test_backends_disagree_on_simulated_time():
    # The backends are *different* networks: the same run must not
    # produce identical exec times across them (if it did, the goldens
    # would be pinning nothing).
    by_net = {}
    for g in GOLDENS:
        key = (g["app"], g["variant"], g["nprocs"])
        by_net.setdefault(key, set()).add(g["exec_time"])
    for key, times in by_net.items():
        assert len(times) == len(NETWORK_BACKENDS), key


# --- rendered cross-era study, one golden per backend -------------------


@pytest.mark.parametrize("network", NETWORK_BACKENDS)
def test_cross_era_rendered_output_matches_golden(network):
    ctx = ExperimentContext(scale="tiny")
    result = cross_era.run(
        ctx, apps=("sor", "water"), counts=(1, 2, 4, 8), networks=[network]
    )
    golden = (HERE / f"golden_cross_era_{network}.txt").read_text()
    assert result.text + "\n" == golden


# --- NetworkModel interface conformance (property-based) ----------------


class _Clock:
    """Minimal engine stand-in: the network models only read ``now``."""

    def __init__(self):
        self.now = 0.0


def _fresh(name):
    clock = _Clock()
    net = build_network(
        name, clock, ClusterConfig(n_nodes=N_NODES), CostModel()
    )
    return clock, net


# One operation: (kind, src, other, nbytes, dt) where dt advances the
# clock before issuing.  Reads are silently turned into writes on
# backends without remote_reads.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["write", "broadcast", "read"]),
        st.integers(min_value=0, max_value=N_NODES - 1),
        st.integers(min_value=0, max_value=N_NODES - 1),
        st.integers(min_value=0, max_value=65536),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


def _issue(net, clock, kind, src, other, nbytes):
    """Issue one op; return (transmit_link, completion_time, latency).

    ``latency`` is the op's constant post-wire latency term (reads pay
    the round-trip read latency where it exists), so callers can
    recover the wire-drain time as ``completion - latency``.
    """
    described = net.describe()
    latency = float(described["latency_us"])
    if kind == "read" and net.remote_reads:
        read_latency = float(described.get("read_latency_us", latency))
        return other, net.read(src, other, nbytes), read_latency
    if kind == "broadcast":
        return src, net.write(src, nbytes, broadcast=True), latency
    return src, net.write(src, nbytes, dst_node=other), latency


@pytest.mark.parametrize("name", NETWORK_BACKENDS)
@settings(max_examples=50, deadline=None)
@given(ops=_OPS)
def test_visibility_never_precedes_issue_plus_latency(name, ops):
    clock, net = _fresh(name)
    for kind, src, other, nbytes, dt in ops:
        clock.now += dt
        _, done, latency = _issue(net, clock, kind, src, other, nbytes)
        # Data cannot be visible remotely before the wire latency has
        # elapsed, however idle the fabric is.
        assert done >= clock.now + latency - 1e-9


@pytest.mark.parametrize("name", NETWORK_BACKENDS)
@settings(max_examples=50, deadline=None)
@given(ops=_OPS)
def test_visibility_monotonic_per_link(name, ops):
    clock, net = _fresh(name)
    last_drain = {}
    for kind, src, other, nbytes, dt in ops:
        clock.now += dt
        link, done, latency = _issue(net, clock, kind, src, other, nbytes)
        # Transfers serialize on their transmit link: a later op's wire
        # drain (completion minus its constant latency term) can never
        # precede an earlier one's on the same link.
        drain = done - latency
        assert drain >= last_drain.get(link, 0.0) - 1e-9
        last_drain[link] = drain


@pytest.mark.parametrize("name", NETWORK_BACKENDS)
@settings(max_examples=50, deadline=None)
@given(ops=_OPS)
def test_occupancy_byte_conservation(name, ops):
    clock, net = _fresh(name)
    transfers = 0
    for kind, src, other, nbytes, dt in ops:
        clock.now += dt
        _issue(net, clock, kind, src, other, nbytes)
        transfers += 1
    # Every byte charged to a link is visible in the aggregate, and
    # vice versa — no traffic is dropped or double-counted between the
    # per-link and total accounting.
    assert sum(u.bytes_sent for u in net.usage) == net.aggregate_bytes
    assert sum(u.transfers for u in net.usage) == transfers


@pytest.mark.parametrize("name", NETWORK_BACKENDS)
@settings(max_examples=25, deadline=None)
@given(ops=_OPS)
def test_flush_time_covers_issued_writes(name, ops):
    clock, net = _fresh(name)
    for kind, src, other, nbytes, dt in ops:
        clock.now += dt
        _issue(net, clock, "write", src, other, nbytes)
        # A release that waits for flush_time must not observe a drain
        # time earlier than the moment the last write was issued.
        assert net.flush_time(src) >= clock.now - 1e-9


@pytest.mark.parametrize("name", NETWORK_BACKENDS)
def test_negative_sizes_rejected(name):
    clock, net = _fresh(name)
    with pytest.raises(ValueError):
        net.write(0, -1)
    if net.remote_reads:
        with pytest.raises(ValueError):
            net.read(0, 1, -1)


@pytest.mark.parametrize("name", NETWORK_BACKENDS)
def test_read_raises_unless_remote_reads(name):
    clock, net = _fresh(name)
    if net.remote_reads:
        assert net.read(0, 1, 8192) > 0.0
    else:
        with pytest.raises(RuntimeError):
            net.read(0, 1, 8192)


@pytest.mark.parametrize("name", NETWORK_BACKENDS)
def test_msg_cpus_nonnegative_for_every_transport(name):
    clock, net = _fresh(name)
    for transport in Transport:
        send, recv = net.msg_cpus(transport)
        assert send >= 0.0 and recv >= 0.0


def test_registry_matches_config_backends():
    assert tuple(NETWORK_MODELS) == NETWORK_BACKENDS
    for name, model in NETWORK_MODELS.items():
        assert model.name == name
        described = model.describe()
        assert described, name
        assert all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in described.items()
        )
        assert described["remote_reads"] == (
            "yes" if model.remote_reads else "no"
        )


def test_build_network_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown network backend"):
        build_network("myrinet", _Clock(), ClusterConfig(), CostModel())
