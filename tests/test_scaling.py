"""Scaling past the paper (PR 7): barriers, directories, big clusters.

The scaling work promises three kinds of safety:

* **Equivalence anchors** — configurations where the new machinery must
  be *bit-identical* to the legacy path: a degenerate one-group barrier
  hierarchy (``barrier_fanin == nprocs`` under LRC), the Cashmere
  hierarchy at the legacy fan-in, and directory sharding on the
  reflective memory-channel backend (where broadcast and unicast meet
  the same hub).
* **Values equivalence** — knobs that legitimately re-time the run
  (fan-in choices at 64p, directory sharding on rdma) must still
  compute the same answer.
* **Global-time monotonicity** — the sharded scheduler must never
  deliver an event at a time earlier than a shard has already seen;
  checked both on a full 256-processor application run and with
  randomized raw-engine schedules (hypothesis).

Plus unit coverage of the supporting cast: ``cluster_for`` growth, the
resolved ``RunConfig`` knobs, and the weak/strong scaling driver.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro import options as options_mod
from repro.config import (
    CSM_POLL,
    CSM_PP,
    HLRC_POLL,
    TMK_MC_POLL,
    ClusterConfig,
    Mechanism,
    RunConfig,
)
from repro.core import run_program
from repro.core.runtime import program as program_mod
from repro.harness import scaling
from repro.harness.configs import cluster_for
from repro.harness.runner import ExperimentContext
from repro.sim import Engine
from tests.helpers import values_match

TINY_SOR = dict(rows=24, cols=32, iters=4)


def _assert_bit_identical(a, b):
    assert a.exec_time == b.exec_time
    assert a.network_bytes == b.network_bytes
    assert a.stats.aggregate_counters() == b.stats.aggregate_counters()


def _assert_values_equal(a, b):
    assert len(a.values) == len(b.values)
    for x, y in zip(a.values, b.values):
        if x is None and y is None:
            continue
        assert values_match(x, y)


# -- equivalence anchors (bit-identical) -------------------------------


@pytest.mark.parametrize(
    "variant", [TMK_MC_POLL, HLRC_POLL], ids=lambda v: v.name
)
def test_degenerate_lrc_hierarchy_is_bit_identical(variant):
    """``barrier_fanin == nprocs`` puts every processor in one group:
    the hierarchical LRC barrier must reproduce the flat one exactly."""
    flat = api.run_point("sor", variant, 8, scale="tiny")
    one_group = api.run_point("sor", variant, 8, scale="tiny", barrier_fanin=8)
    _assert_bit_identical(flat, one_group)
    _assert_values_equal(flat, one_group)


def test_cashmere_legacy_fanin_is_bit_identical():
    """At <= 32p the Cashmere tree defaults to the legacy fan-in of 2;
    asking for it explicitly must change nothing."""
    default = api.run_point("sor", CSM_POLL, 8, scale="tiny")
    explicit = api.run_point("sor", CSM_POLL, 8, scale="tiny", barrier_fanin=2)
    _assert_bit_identical(default, explicit)


def test_dir_sharding_on_memch_is_bit_identical():
    """On the reflective memory channel every directory message meets
    the same hub, so sharding the directory re-homes metadata without
    changing a single simulated microsecond."""
    single = api.run_point("sor", CSM_POLL, 8, scale="tiny")
    sharded = api.run_point("sor", CSM_POLL, 8, scale="tiny", dir_shards=4)
    _assert_bit_identical(single, sharded)
    _assert_values_equal(single, sharded)


# -- values equivalence (timing may legitimately differ) ----------------


@pytest.mark.parametrize("fanin", [2, 8])
def test_64p_fanin_choices_compute_identical_values(fanin):
    params = scaling.weak_params("sor", TINY_SOR, 8, 64)
    default = api.run_point("sor", CSM_POLL, 64, params=params)
    tuned = api.run_point(
        "sor", CSM_POLL, 64, params=params, barrier_fanin=fanin
    )
    _assert_values_equal(default, tuned)


def test_dir_sharding_on_rdma_computes_identical_values():
    """rdma routes directory traffic point-to-point, so sharding
    changes message homes (and hence timing) — never the answer."""
    single = api.run_point("sor", CSM_POLL, 8, scale="tiny", network="rdma")
    sharded = api.run_point(
        "sor", CSM_POLL, 8, scale="tiny", network="rdma", dir_shards=4
    )
    _assert_values_equal(single, sharded)
    assert single.exec_time > 0 and sharded.exec_time > 0


# -- global-time monotonicity across shards -----------------------------


def test_256p_run_never_moves_time_backwards(monkeypatch):
    """A full 256-processor weak-scaled sor run on the sharded engine:
    deliveries within every shard must be time-monotonic."""
    captured = {}
    real_build = program_mod.build_system

    def spying_build(cfg, **kwargs):
        system = real_build(cfg, **kwargs)
        captured["engine"] = system.engine
        system.engine.enable_shard_meter()
        return system

    monkeypatch.setattr(program_mod, "build_system", spying_build)

    from repro.apps import sor

    params = scaling.weak_params("sor", TINY_SOR, 8, 256)
    cfg = RunConfig(
        variant=CSM_POLL, nprocs=256, cluster=cluster_for(256)
    )
    result = run_program(sor.program(), cfg, params)

    engine = captured["engine"]
    assert engine.sharded
    meter = engine.enable_shard_meter()
    active = [s for s, (fired, _last) in meter.items() if fired]
    assert len(active) >= 2, "a 64-node run must exercise many shards"
    assert engine.shard_violations == []
    assert result.exec_time > 0


DELAYS = (0.0, 0.5, 1.0, 1.0, 2.0, 3.0)


@st.composite
def _sharded_schedules(draw):
    n_shards = draw(st.integers(min_value=2, max_value=4))
    nprocs = draw(st.integers(min_value=2, max_value=6))
    return [
        (
            draw(st.integers(min_value=0, max_value=n_shards - 1)),
            draw(st.lists(st.sampled_from(DELAYS), min_size=1, max_size=6)),
        )
        for _ in range(nprocs)
    ]


def _trace(sharded: bool, schedules):
    """Resume log (time, pid, step) for one schedule, plus the engine."""
    if sharded:
        opts = replace(options_mod.current(), calqueue=True, shard=True)
    else:
        opts = replace(options_mod.current(), calqueue=False)
    engine = Engine(opts)
    engine.enable_shard_meter()
    log = []

    def worker(pid, delays):
        for i, delay in enumerate(delays):
            yield float(delay)
            log.append((engine.now, pid, i))

    for pid, (shard, delays) in enumerate(schedules):
        engine.process(worker(pid, delays), name=f"p{pid}", shard=shard)
    engine.run()
    return log, engine


@given(_sharded_schedules())
@settings(max_examples=60, deadline=None)
def test_random_sharded_schedules_are_monotonic_and_heap_identical(
    schedules,
):
    sharded_log, engine = _trace(True, schedules)
    assert engine.sharded
    assert engine.shard_violations == []
    heap_log, _heap_engine = _trace(False, schedules)
    assert sharded_log == heap_log


# -- supporting cast: cluster growth, knob resolution, the driver -------


def test_cluster_for_keeps_base_when_it_fits():
    base = ClusterConfig()
    assert cluster_for(8) is not cluster_for(8, base)
    assert cluster_for(32, base) is base
    assert cluster_for(8, base, Mechanism.POLL) is base


def test_cluster_for_grows_nodes_never_cpus():
    base = ClusterConfig()
    grown = cluster_for(256, base)
    assert grown.cpus_per_node == base.cpus_per_node
    assert grown.n_nodes == 64
    # Protocol-processor variants lose one CPU per node to the protocol.
    pp = cluster_for(256, base, Mechanism.PROTOCOL_PROCESSOR)
    assert pp.n_nodes == -(-256 // (base.cpus_per_node - 1))


def test_run_point_auto_grows_cluster_past_32():
    result = api.run_point(
        "sor", CSM_PP, 64, params=scaling.weak_params("sor", TINY_SOR, 8, 64)
    )
    cluster = result.config.cluster
    assert cluster.cpus_per_node == ClusterConfig().cpus_per_node
    assert cluster.n_nodes * (cluster.cpus_per_node - 1) >= 64


def test_resolved_knobs_default_to_legacy_below_32p():
    cfg = RunConfig(variant=CSM_POLL, nprocs=8)
    assert cfg.resolved_barrier_fanin == 2
    assert not cfg.hierarchical_barriers
    assert cfg.resolved_dir_shards == 1


def test_resolved_knobs_scale_past_32p():
    cfg = RunConfig(
        variant=CSM_POLL, nprocs=64, cluster=cluster_for(64)
    )
    assert cfg.hierarchical_barriers
    assert cfg.resolved_barrier_fanin == 4
    assert cfg.resolved_dir_shards == cfg.cluster.n_nodes


def test_knob_validation():
    with pytest.raises(ValueError):
        RunConfig(variant=CSM_POLL, nprocs=8, barrier_fanin=1)
    with pytest.raises(ValueError):
        RunConfig(variant=CSM_POLL, nprocs=8, dir_shards=0)
    with pytest.raises(ValueError):
        RunConfig(variant=CSM_POLL, nprocs=8, node_mem_pages=0)


def test_weak_params_scales_the_linear_knob():
    scaled = scaling.weak_params("sor", TINY_SOR, 8, 64)
    assert scaled["rows"] == TINY_SOR["rows"] * 8
    assert scaled["cols"] == TINY_SOR["cols"]
    with pytest.raises(ValueError, match="no linear work dimension"):
        scaling.weak_params("gauss", dict(n=64), 8, 64)


def test_scaling_driver_weak_sweep():
    ctx = ExperimentContext(scale="tiny")
    result = scaling.run(
        ctx, app="sor", mode="weak", counts=(4, 8), variants=(CSM_POLL,)
    )
    assert result.driver == "scaling"
    points = result.rows
    assert [p.nprocs for p in points] == [4, 8]
    assert points[0].metric == 1.0  # the reference point
    assert all(p.exec_time > 0 for p in points)
    assert "efficiency" in result.text
    assert result.config["mode"] == "weak"


def test_scaling_driver_strong_sweep_via_api():
    result = api.run_experiment(
        "scaling",
        scale="tiny",
        app="sor",
        mode="strong",
        counts=(4, 8),
        variants=(CSM_POLL,),
    )
    points = result.rows
    assert points[0].metric == 1.0
    assert "rel-speedup" in result.text


def test_scaling_driver_rejects_unknown_mode():
    ctx = ExperimentContext(scale="tiny")
    with pytest.raises(ValueError, match="unknown scaling mode"):
        scaling.sweep(ctx, mode="diagonal")
