"""Unit tests for the applications' numeric kernels (independent of the
DSM machinery)."""

import numpy as np
import pytest

from repro.apps import barnes, gauss, lu, sor, tsp, water, em3d, ilink
from repro.apps.common import band, cyclic_rows, deterministic_rng


# --- common helpers -----------------------------------------------------


def test_band_partitions_exactly():
    for nprocs in (1, 3, 7, 32):
        for n in (1, 10, 100, 257):
            covered = []
            for rank in range(nprocs):
                lo, hi = band(rank, nprocs, n)
                covered.extend(range(lo, hi))
            assert covered == list(range(n))


def test_band_balance():
    sizes = [band(r, 7, 100)[1] - band(r, 7, 100)[0] for r in range(7)]
    assert max(sizes) - min(sizes) <= 1


def test_band_bad_rank():
    with pytest.raises(ValueError):
        band(5, 4, 100)


def test_cyclic_rows():
    assert list(cyclic_rows(1, 4, 10)) == [1, 5, 9]


def test_deterministic_rng_reproducible():
    a = deterministic_rng(7).random(5)
    b = deterministic_rng(7).random(5)
    assert np.array_equal(a, b)


# --- LU kernels ------------------------------------------------------------


def test_lu_factor_diag_reconstructs():
    rng = deterministic_rng(3)
    a = rng.random((16, 16)) + np.eye(16) * 16
    packed = lu._factor_diag(a)
    lower = np.tril(packed, -1) + np.eye(16)
    upper = np.triu(packed)
    assert np.allclose(lower @ upper, a)


def test_lu_solve_col_row_inverses():
    rng = deterministic_rng(4)
    diag = lu._factor_diag(rng.random((8, 8)) + np.eye(8) * 8)
    lower = np.tril(diag, -1) + np.eye(8)
    upper = np.triu(diag)
    a = rng.random((8, 8))
    assert np.allclose(lu._solve_col(a, diag) @ upper, a)
    assert np.allclose(lower @ lu._solve_row(a, diag), a)


# --- Gauss ----------------------------------------------------------------


def test_gauss_back_substitution():
    rng = deterministic_rng(5)
    n = 12
    upper = np.triu(rng.random((n, n)) + np.eye(n) * n)
    x_true = rng.random(n)
    aug = np.zeros((n, n + 1))
    aug[:, :n] = upper
    aug[:, n] = upper @ x_true
    assert np.allclose(gauss._back_substitute(aug), x_true)


def test_gauss_cost_overrides_scale_down():
    overrides = gauss.cost_overrides(dict(n=320))
    from repro.config import CostModel

    base = CostModel()
    assert overrides["l1_bytes"] < base.l1_bytes
    assert overrides["l2_bytes"] < base.l2_bytes
    # The ratios track the problem scaling.
    assert overrides["l1_bytes"] == pytest.approx(
        base.l1_bytes * 320 / gauss.PAPER_N, rel=0.01
    )


# --- TSP -----------------------------------------------------------------


def test_tsp_greedy_tour_valid():
    d = tsp.distances(dict(cities=9, seed=1))
    length, path = tsp._greedy_tour(d)
    assert sorted(path) == list(range(9))
    assert path[0] == 0
    rebuilt = sum(d[path[i]][path[i + 1]] for i in range(8)) + d[path[-1]][0]
    assert length == pytest.approx(rebuilt)


def test_tsp_dfs_matches_brute_force():
    import itertools

    d = tsp.distances(dict(cities=7, seed=2))
    best, path, nodes = tsp._dfs_solve(d, [0], 0.0, np.inf)
    brute = min(
        sum(d[p][q] for p, q in zip((0,) + perm, perm + (0,)))
        for perm in itertools.permutations(range(1, 7))
    )
    assert best == pytest.approx(brute)
    assert nodes > 0 and sorted(path) == list(range(7))


def test_tsp_lower_bound_is_admissible():
    d = tsp.distances(dict(cities=7, seed=2))
    optimum, _, _ = tsp._dfs_solve(d, [0], 0.0, np.inf)
    assert tsp._lower_bound(d, [0], 0.0) <= optimum + 1e-9


def test_tsp_dfs_respects_incumbent():
    d = tsp.distances(dict(cities=7, seed=2))
    optimum, _, _ = tsp._dfs_solve(d, [0], 0.0, np.inf)
    best, path, nodes = tsp._dfs_solve(d, [0], 0.0, optimum - 1e-6)
    assert path is None  # nothing better than the incumbent
    assert best == pytest.approx(optimum - 1e-6)


# --- Water ----------------------------------------------------------------


def test_water_pair_forces_newton_third_law():
    rng = deterministic_rng(6)
    pos = rng.random((12, 3)) * 3.0
    total = np.zeros(3)
    for rank in range(4):
        lo, hi = band(rank, 4, 12)
        total += water._pair_forces(pos[lo:hi], lo, pos).sum(axis=0)
    assert np.allclose(total, 0.0, atol=1e-9)


def test_water_pair_forces_partition_invariant():
    rng = deterministic_rng(7)
    pos = rng.random((10, 3)) * 3.0
    whole = water._pair_forces(pos, 0, pos)
    split = np.zeros_like(whole)
    for rank in range(5):
        lo, hi = band(rank, 5, 10)
        split += water._pair_forces(pos[lo:hi], lo, pos)
    assert np.allclose(whole, split)


# --- Barnes ---------------------------------------------------------------


def test_barnes_tree_mass_conserved():
    rng = deterministic_rng(8)
    positions = rng.random((50, 3))
    masses = np.ones(50) / 50
    cells = barnes._build_tree(positions, masses)
    assert cells[0].mass == pytest.approx(1.0)


def test_barnes_tree_com_matches():
    rng = deterministic_rng(9)
    positions = rng.random((40, 3))
    masses = rng.random(40)
    cells = barnes._build_tree(positions, masses)
    expected = (positions * masses[:, None]).sum(axis=0) / masses.sum()
    assert np.allclose(cells[0].com, expected)


def test_barnes_encode_roundtrip_children():
    rng = deterministic_rng(10)
    positions = rng.random((30, 3))
    masses = np.ones(30)
    cells = barnes._build_tree(positions, masses)
    encoded = barnes._encode_cells(cells, 4 * 30)
    # Every child index recorded in the encoding points inside the tree.
    for i in range(len(cells)):
        for child in encoded[i, 5:13]:
            assert child == -1 or 0 <= child < len(cells)


def test_barnes_chunks_cover_all_bodies():
    covered = []
    for rank in range(16):
        covered.extend(barnes._my_chunks(rank, 16, 1000))
    assert sorted(covered) == list(range(1000))


# --- SOR / Em3d / Ilink ----------------------------------------------------


def test_sor_phase_update_shape():
    halo = np.arange(50, dtype=np.float64).reshape(5, 10)
    out = sor._phase_update(halo)
    assert out.shape == (3, 10)
    assert np.all(np.isfinite(out))


def test_em3d_dependencies_within_window():
    params = dict(n_nodes=1024, degree=4, seed=1)
    deps = em3d._dependencies(params)
    offsets = (deps["targets"] - np.arange(1024)[:, None]) % 1024
    # Every dependency is within the window on the ring.
    in_window = (offsets <= em3d.WINDOW) | (offsets >= 1024 - em3d.WINDOW)
    assert in_window.all()


def test_ilink_sparse_slots_sorted_unique():
    params = dict(arrays=4, elems=512, density=0.1, seed=3)
    slots = ilink._sparse_slots(params)
    assert slots.shape[0] == 4
    for row in slots:
        assert len(set(row.tolist())) == len(row)
        assert np.all(np.diff(row) > 0)
        assert row.max() < 512


# --- kernel-vs-scalar bitwise equality -------------------------------------
#
# The kernel layer's contract is *bit* identity with the scalar
# reference loops retained in the app modules: kernel output is written
# back into DSM shared memory, where TreadMarks diffs it byte-by-byte
# against twins, so these pin exact equality (never ``allclose``).

from repro.apps import kernels


def test_kernel_lu_factor_diag_bitwise():
    rng = deterministic_rng(20)
    a = rng.random((16, 16)) + np.eye(16) * 16
    assert np.array_equal(kernels.lu_factor_diag(a), lu._factor_diag(a))


def test_kernel_lu_solves_bitwise():
    rng = deterministic_rng(21)
    diag = lu._factor_diag(rng.random((8, 8)) + np.eye(8) * 8)
    a = rng.random((8, 8))
    assert np.array_equal(kernels.lu_solve_col(a, diag), lu._solve_col(a, diag))
    assert np.array_equal(kernels.lu_solve_row(a, diag), lu._solve_row(a, diag))


def test_kernel_lu_solves_accept_readonly_views():
    rng = deterministic_rng(22)
    diag = lu._factor_diag(rng.random((8, 8)) + np.eye(8) * 8)
    a = rng.random((8, 8))
    a.flags.writeable = False
    assert np.array_equal(kernels.lu_factor_diag(a), lu._factor_diag(a))
    assert np.array_equal(kernels.lu_solve_col(a, diag), lu._solve_col(a, diag))


def test_kernel_lu_interior_update_bitwise():
    rng = deterministic_rng(23)
    mine = rng.random((8, 8))
    col, row = rng.random((8, 8)), rng.random((8, 8))
    assert np.array_equal(
        kernels.lu_interior_update(mine, col, row), lu._interior_update(mine, col, row)
    )


def test_kernel_gauss_eliminate_bitwise():
    rng = deterministic_rng(24)
    n = 24
    matrix = rng.random((n, n + 2)) + np.hstack(
        [np.eye(n) * n, np.zeros((n, 2))]
    )
    for k in (0, 5, n - 2):
        pivot = matrix[k]
        rows = [r for r in range(n) if r > k][:7]
        block = matrix[rows][:, k : n + 1]
        batched = kernels.gauss_eliminate(block, pivot, k, n)
        for i, r in enumerate(rows):
            current = matrix[r]
            factor = current[k] / pivot[k]
            updated = current[k : n + 1] - factor * pivot[k : n + 1]
            updated[0] = 0.0
            assert np.array_equal(batched[i], updated)


def test_kernel_gauss_back_substitute_bitwise():
    rng = deterministic_rng(25)
    n = 12
    aug = np.zeros((n, n + 1))
    aug[:, :n] = np.triu(rng.random((n, n)) + np.eye(n) * n)
    aug[:, n] = rng.random(n)
    assert np.array_equal(
        kernels.gauss_back_substitute(aug), gauss._back_substitute(aug)
    )


def test_kernel_sor_phase_update_bitwise():
    rng = deterministic_rng(26)
    halo = rng.random((9, 32))
    assert np.array_equal(kernels.sor_phase_update(halo), sor._phase_update(halo))


def test_kernel_water_pair_forces_bitwise():
    rng = deterministic_rng(27)
    pos = rng.random((20, 3)) * 3.0
    for rank in range(4):
        lo, hi = band(rank, 4, 20)
        assert np.array_equal(
            kernels.water_pair_forces(pos[lo:hi], lo, pos),
            water._pair_forces(pos[lo:hi], lo, pos),
        )


def test_kernel_water_integrate_bitwise():
    rng = deterministic_rng(28)
    pos, vel, force = rng.random((3, 10, 3))
    new_vel, new_pos = kernels.water_integrate(pos, vel, force, water.DT)
    ref_vel = vel + force * water.DT
    ref_pos = pos + ref_vel * water.DT
    assert np.array_equal(new_vel, ref_vel)
    assert np.array_equal(new_pos, ref_pos)


def test_kernel_barnes_integrate_bitwise():
    rng = deterministic_rng(29)
    bodies = rng.random((30, barnes.BODY_FIELDS))
    mine = barnes._my_chunks(1, 3, 30)
    pos_block, vel_block = kernels.barnes_integrate(bodies, mine, barnes.DT)
    for i, body in enumerate(mine):
        vel = bodies[body, 3:6] + bodies[body, 6:9] * barnes.DT
        pos = bodies[body, 0:3] + vel * barnes.DT
        assert np.array_equal(vel_block[i], vel)
        assert np.array_equal(pos_block[i], pos)


def test_kernel_em3d_gather_update_bitwise():
    params = dict(n_nodes=256, degree=4, seed=11)
    deps = em3d._dependencies(params)
    rng = deterministic_rng(30)
    n = 256
    values = rng.random(n)
    lo, hi = band(1, 4, n)
    rlo, rhi = max(lo - em3d.WINDOW, 0), min(hi + em3d.WINDOW, n)
    my_targets = deps["targets"][lo:hi]
    my_weights = deps["weights"][lo:hi]
    inside = (my_targets >= rlo) & (my_targets < rhi)
    window, full = values[rlo:rhi], values
    gathered = kernels.em3d_gather(window, full, my_targets, inside, rlo, rhi)
    ref = np.where(
        inside, window[np.clip(my_targets - rlo, 0, rhi - rlo - 1)], 0.0
    )
    ref = np.where(inside, ref, full[my_targets])
    assert np.array_equal(gathered, ref)
    current = rng.random(hi - lo)
    assert np.array_equal(
        kernels.em3d_update(current, my_weights, gathered),
        current - (my_weights * gathered).sum(axis=1),
    )


def test_kernel_ilink_update_reduce_bitwise():
    rng = deterministic_rng(31)
    values = rng.random(40)
    for it in (0, 3):
        assert np.array_equal(
            kernels.ilink_update(values, it),
            0.25 * values + 0.5 * values * values + 0.01 * (it + 1),
        )
    pool_rows = [rng.random(64) for _ in range(5)]
    reduced = kernels.ilink_reduce(pool_rows)
    assert np.array_equal(reduced, np.array([row.sum() for row in pool_rows]))


def test_kernel_tsp_matches_scalar():
    d = tsp.distances(dict(cities=8, seed=5))
    assert kernels.tsp_lower_bound(d, [0, 3], d[0][3]) == tsp._lower_bound(
        d, [0, 3], d[0][3]
    )
    got = kernels.tsp_dfs_solve(d, [0], 0.0, np.inf)
    ref = tsp._dfs_solve(d, [0], 0.0, np.inf)
    assert got == ref  # (best, path, nodes) — including the node count


def test_sim_options_sync_kernels_flag():
    from dataclasses import replace
    from repro import options as options_mod

    saved = options_mod.current()
    try:
        replace(saved, kernels=False).apply()
        assert kernels.ENABLED is False
        replace(saved, kernels=True).apply()
        assert kernels.ENABLED is True
    finally:
        saved.apply()
