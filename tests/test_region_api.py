"""Unit tests for the bulk region API (``SharedArray.region_*``).

Shape construction, page-straddling and non-contiguous gathers and
scatters, bounds checking, and the hit-path ``region_view`` semantics.
Protocol-level bit-identity of region access is covered by
``test_engine_equivalence.py`` (kernels on/off golden runs); these are
the plumbing tests.
"""

import numpy as np
import pytest

from repro.core.fastpath import PermBitmaps
from repro.core.runtime.shared import Region, SharedArray
from repro.core import fastpath

from tests.test_shared_array import drive, make_env


@pytest.fixture(params=[True, False], ids=["fastpath", "legacy"])
def fastpath_mode(request):
    saved = fastpath.ENABLED
    fastpath.set_enabled(request.param)
    yield request.param
    fastpath.set_enabled(saved)


def _matrix(page_size=1024, shape=(16, 16)):
    engine, space, env = make_env(page_size=page_size)
    arr = SharedArray.alloc(space, "m", np.float64, shape)
    init = np.arange(arr.size, dtype=np.float64).reshape(shape)
    arr.initialize(init)
    return engine, env, arr, init


# --- construction and geometry ---------------------------------------------


def test_region_rows_is_single_segment():
    _, _, arr, _ = _matrix()
    region = arr.region_rows(2, 5)
    assert len(region.segs) == 1
    assert region.shape == (3, 16)
    assert region.total == 48
    assert region.nbytes == 48 * 8


def test_region_block_one_segment_per_row():
    _, _, arr, _ = _matrix()
    region = arr.region_block(1, 4, 2, 7)
    assert len(region.segs) == 3
    assert region.shape == (3, 5)
    assert all(nbytes == 5 * 8 for _, nbytes in region.segs)


def test_region_row_gather_follows_row_order():
    _, _, arr, _ = _matrix()
    region = arr.region_row_gather([7, 2, 11], 3, 9)
    assert region.shape == (3, 6)
    offsets = [offset for offset, _ in region.segs]
    assert offsets == sorted(offsets, key=lambda o: [7, 2, 11].index(
        (o - arr._base - 3 * 8) // (16 * 8)
    ))


def test_page_spans_preserve_segment_boundaries():
    _, _, arr, _ = _matrix()
    # Two adjacent segments on the same page stay two spans: per-span
    # protocol charges (Cashmere's doubled write) must replay exactly.
    region = Region(arr, [(0, 3), (3, 3)], (6,))
    spans = region.page_spans()
    assert len(spans) == 2
    assert spans[0][0] == spans[1][0]  # same page
    assert region.page_spans() is spans  # cached


def test_span_pages_matches_page_spans():
    _, _, arr, _ = _matrix(page_size=256)
    region = arr.region_rows(0, 16)
    assert list(region.span_pages()) == [
        page for page, _, _ in region.page_spans()
    ]


def test_region_shape_must_hold_elements():
    _, _, arr, _ = _matrix()
    with pytest.raises(ValueError, match="does not hold"):
        Region(arr, [(0, 8)], (3, 3))


# --- bounds checking --------------------------------------------------------


def test_region_rows_out_of_range():
    _, _, arr, _ = _matrix()
    with pytest.raises(IndexError):
        arr.region_rows(10, 20)
    with pytest.raises(IndexError):
        arr.region_rows(-1, 4)


def test_region_block_out_of_bounds():
    _, _, arr, _ = _matrix()
    with pytest.raises(IndexError):
        arr.region_block(0, 4, 10, 20)
    vec = SharedArray.alloc(arr._space, "v", np.float64, (32,))
    with pytest.raises(IndexError, match="2-D"):
        vec.region_block(0, 1, 0, 1)


def test_region_row_gather_out_of_range():
    _, _, arr, _ = _matrix()
    with pytest.raises(IndexError):
        arr.region_row_gather([3, 16])
    with pytest.raises(IndexError):
        arr.region_row_gather([-1, 3])
    with pytest.raises(IndexError):
        arr.region_row_gather([3], 5, 40)


def test_region_slice_out_of_range():
    _, _, arr, _ = _matrix()
    with pytest.raises(IndexError):
        arr.region_slice(250, 20)


def test_write_region_size_mismatch():
    engine, env, arr, _ = _matrix()
    region = arr.region_rows(0, 2)
    with pytest.raises(ValueError, match="do not match"):
        arr.write_region(env, region, np.zeros((3, 16)))


# --- roundtrips -------------------------------------------------------------


def test_region_rows_roundtrip_across_pages(fastpath_mode):
    engine, env, arr, init = _matrix(page_size=256)  # 2 rows per page
    region = arr.region_rows(3, 9)
    payload = np.arange(96, dtype=np.float64).reshape(6, 16) * -1.0

    def work():
        before = yield from arr.read_region(env, region)
        yield from arr.write_region(env, region, payload)
        after = yield from arr.read_region(env, region)
        return before, after

    before, after = drive(engine, work())
    assert np.array_equal(before, init[3:9])
    assert np.array_equal(after, payload)


def test_region_block_roundtrip_noncontiguous(fastpath_mode):
    engine, env, arr, init = _matrix(page_size=256)
    region = arr.region_block(2, 10, 4, 12)
    payload = np.full((8, 8), 0.5)

    def work():
        before = yield from arr.read_region(env, region)
        yield from arr.write_region(env, region, payload)
        after = yield from arr.read_region(env, region)
        whole = yield from arr.read_all(env)
        return before, after, whole

    before, after, whole = drive(engine, work())
    assert np.array_equal(before, init[2:10, 4:12])
    assert np.array_equal(after, payload)
    # Elements outside the block are untouched.
    expect = init.copy()
    expect[2:10, 4:12] = payload
    assert np.array_equal(whole, expect)


def test_region_row_gather_roundtrip(fastpath_mode):
    engine, env, arr, init = _matrix(page_size=256)
    rows = [1, 4, 13, 6]
    region = arr.region_row_gather(rows, 2, 14)
    payload = np.arange(48, dtype=np.float64).reshape(4, 12) + 1000.0

    def work():
        before = yield from arr.read_region(env, region)
        yield from arr.write_region(env, region, payload)
        after = yield from arr.read_region(env, region)
        whole = yield from arr.read_all(env)
        return before, after, whole

    before, after, whole = drive(engine, work())
    assert np.array_equal(before, init[rows, 2:14])
    assert np.array_equal(after, payload)
    expect = init.copy()
    expect[rows, 2:14] = payload
    assert np.array_equal(whole, expect)


def test_single_element_segments_scatter(fastpath_mode):
    engine, env, arr, init = _matrix(page_size=256)
    flat = [3, 40, 41, 200]
    region = Region(arr, [(i, 1) for i in flat], (4,))
    payload = np.array([-1.0, -2.0, -3.0, -4.0])

    def work():
        yield from arr.write_region(env, region, payload)
        back = yield from arr.read_region(env, region)
        whole = yield from arr.read_all(env)
        return back, whole

    back, whole = drive(engine, work())
    assert np.array_equal(back, payload)
    expect = init.copy()
    expect.ravel()[flat] = payload
    assert np.array_equal(whole, expect)


def test_empty_region_roundtrip(fastpath_mode):
    engine, env, arr, _ = _matrix()
    region = arr.region_row_gather([], 0, 16)

    def work():
        yield from arr.write_region(env, region, np.zeros((0, 16)))
        out = yield from arr.read_region(env, region)
        return out

    assert drive(engine, work()).shape == (0, 16)


# --- region_view (the hit path) ---------------------------------------------


def test_region_view_returns_data_when_hot():
    engine, env, arr, init = _matrix(page_size=256)
    view = arr.region_view(env, arr.region_rows(3, 7))
    assert view is not None
    assert np.array_equal(view, init[3:7])


def test_region_view_none_without_fastpath():
    engine, env, arr, _ = _matrix()
    saved = fastpath.ENABLED
    fastpath.set_enabled(False)
    try:
        assert arr.region_view(env, arr.region_rows(0, 2)) is None
    finally:
        fastpath.set_enabled(saved)


def test_region_view_single_page_is_readonly_alias():
    engine, env, arr, init = _matrix()
    # Give the (perm-less) sequential protocol bitmaps so the
    # zero-copy single-page branch is reachable.
    n_pages = arr._space.n_pages
    perms = PermBitmaps(1, n_pages)
    perms.readable[:] = True
    perms.writable[:] = True
    env.protocol.perms = perms
    try:
        view = arr.region_view(env, arr.region_rows(0, 2))
        assert view is not None
        assert not view.flags.writeable
        assert np.array_equal(view, init[0:2])
        # It aliases the page copy: a later write shows through.
        page = env.protocol.page_data(env.proc, arr._base // 1024)
        page[:8] = np.frombuffer(np.float64(123.0).tobytes(), np.uint8)
        assert view[0, 0] == 123.0
    finally:
        env.protocol.perms = None


def test_region_view_multi_segment_is_a_copy():
    engine, env, arr, init = _matrix()
    region = arr.region_block(0, 3, 0, 4)
    view = arr.region_view(env, region)
    assert view is not None
    assert view.flags.writeable  # gathered buffer, not an alias
    assert np.array_equal(view, init[0:3, 0:4])
