"""Regenerate the per-network-backend goldens.

Writes two kinds of pinned artifacts:

* ``tests/golden_networks.json`` — raw per-point outcomes (exec time,
  network bytes, counters, breakdown) for a protocol spread under every
  network backend; ``tests/test_network_backends.py`` replays them over
  the wall-clock mode matrix and requires exact equality.
* ``tests/golden_cross_era_<backend>.txt`` — the rendered cross-era
  study for one backend at a pinned invocation (scale=tiny, sor+water,
  counts 1 2 4 8).  The same file is diffed against live CLI output by
  CI's network-backend matrix.

Run this ONLY when a simulated-semantics change is intentional (a
protocol fix, a cost-model or backend-constant change); performance
work must leave these goldens alone.

Usage::

    PYTHONPATH=src python tests/regen_golden_networks.py
"""

import json
import pathlib

from repro import RunConfig, run_program, variant_by_name
from repro.apps import registry
from repro.config import NETWORK_BACKENDS
from repro.harness import cross_era
from repro.harness.runner import ExperimentContext

# A spread across the three protocol families (Cashmere directory,
# TreadMarks lazy diffs, home-based HLRC) — the ones whose data-fetch
# paths diverge per backend (one-sided reads vs request/reply).
CONFIGS = [
    ("sor", "csm_poll", 4, "tiny"),
    ("sor", "tmk_mc_poll", 4, "tiny"),
    ("water", "hlrc_poll", 2, "tiny"),
]

# The pinned cross-era invocation.  Keep in lock step with the CI
# backend matrix (.github/workflows/ci.yml) and the golden-replay test.
CROSS_ERA_APPS = ("sor", "water")
CROSS_ERA_COUNTS = (1, 2, 4, 8)


def golden(app, variant, nprocs, scale, network):
    module = registry.load(app)
    params = module.default_params(scale)
    cfg = RunConfig(
        variant=variant_by_name(variant),
        nprocs=nprocs,
        warm_start=True,
        network=network,
    )
    result = run_program(module.program(), cfg, params)
    agg = result.stats.aggregate_counters()
    return {
        "app": app,
        "variant": variant,
        "nprocs": nprocs,
        "scale": scale,
        "network": network,
        "exec_time": result.exec_time,
        "network_bytes": result.network_bytes,
        "counters": {k: agg[k] for k in sorted(agg)},
        "breakdown": result.breakdown.as_dict(),
    }


def main() -> None:
    here = pathlib.Path(__file__).parent
    out = [
        golden(*spec, network)
        for network in NETWORK_BACKENDS
        for spec in CONFIGS
    ]
    path = here / "golden_networks.json"
    path.write_text(json.dumps(out, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(out)} goldens to {path}")
    for network in NETWORK_BACKENDS:
        ctx = ExperimentContext(scale="tiny")
        result = cross_era.run(
            ctx,
            apps=CROSS_ERA_APPS,
            counts=CROSS_ERA_COUNTS,
            networks=[network],
        )
        path = here / f"golden_cross_era_{network}.txt"
        path.write_text(result.text + "\n")
        print(f"wrote rendered cross-era study to {path}")


if __name__ == "__main__":
    main()
