"""Serving v2 guarantees: sessions, bounds, negative cache, sweeps.

PR 9's contract on top of the PR 8 tiers (``docs/SERVING.md``):
connections are keep-alive sessions the server may close (idle
timeout, per-connection request limit) without the client surface
noticing; the result cache holds its configured byte/entry bound at
all times; deterministically invalid requests are rejected from
memory; sweeps expand server-side and stream through the same
coalescing/batching path; and saturation answers 429 instead of
queueing unboundedly.  Every payload stays byte-identical to direct
``api.run_point`` — including the hot tier's pre-encoded splice.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.harness.cache import CacheStats, ResultCache
from repro.serving import (
    NegativeCache,
    ServingClient,
    ServingError,
    expand_sweep,
    upconvert_request,
    validate_request,
)
from repro.serving.client import (
    HttpClient,
    InProcessClient,
    reset_deprecation_warnings,
)
from repro.serving.server import (
    ExperimentServer,
    ExperimentService,
    ServerConfig,
    encode_payload,
)

SOR = {"app": "sor", "variant": "csm_poll", "nprocs": 4, "scale": "tiny"}
BAD = {"app": "no-such-app", "nprocs": 1}


def _config(tmp_path, **overrides) -> ServerConfig:
    fields = {
        "port": 0,
        "jobs": 0,
        "batch_window_ms": 1.0,
        "cache_dir": str(tmp_path / "serve-cache"),
    }
    fields.update(overrides)
    return ServerConfig(**fields)


def _with_server(tmp_path, coro_fn, **config_overrides):
    """Run ``coro_fn(server, host, port)`` against a live HTTP server."""

    async def go():
        server = ExperimentServer(config=_config(tmp_path, **config_overrides))
        host, port = await server.start()
        try:
            return await coro_fn(server, host, port)
        finally:
            await server.shutdown(drain=True)

    return asyncio.run(go())


# -- keep-alive sessions -----------------------------------------------


def test_keepalive_session_reuses_one_connection(tmp_path):
    async def go(server, host, port):
        client = ServingClient(host, port)
        digests = set()
        for _ in range(3):
            digests.add((await client.resolve(dict(SOR)))["digest"])
        await client.close()
        assert len(digests) == 1
        assert client.connections_opened == 1
        assert client.requests_reused == 2
        assert server.http_stats()["reused"] == 2

    _with_server(tmp_path, go)


def test_idle_timeout_closes_session_client_reconnects(tmp_path):
    async def go(server, host, port):
        client = ServingClient(host, port)
        first = await client.resolve(dict(SOR))
        # Past the idle timeout the server closes the connection; the
        # session must notice the stale socket and retry once, fresh.
        await asyncio.sleep(0.3)
        second = await client.resolve(dict(SOR))
        await client.close()
        assert first["digest"] == second["digest"]
        assert client.connections_opened == 2

    _with_server(tmp_path, go, idle_timeout_s=0.05)


def test_max_requests_per_conn_rotates_the_session(tmp_path):
    async def go(server, host, port):
        client = ServingClient(host, port)
        for _ in range(4):
            await client.resolve(dict(SOR))
        await client.close()
        # 2 requests per connection -> 4 requests need 2 connections.
        assert client.connections_opened == 2
        assert server.http_stats()["connections"] == 2

    _with_server(tmp_path, go, max_requests_per_conn=2)


def test_deprecated_aliases_warn_once_and_serve(tmp_path, capsys):
    async def go(server, host, port):
        reset_deprecation_warnings()
        old = HttpClient(host, port)
        HttpClient(host, port)  # second construction must stay silent
        payload = await old.point("sor", "csm_poll", 4, scale="tiny")
        inproc = InProcessClient(server.service)
        InProcessClient(server.service)
        direct = await inproc.resolve(dict(SOR))
        assert payload["digest"] == direct["digest"]

    _with_server(tmp_path, go)
    err = capsys.readouterr().err
    assert err.count("HttpClient is deprecated") == 1
    assert err.count("InProcessClient is deprecated") == 1


# -- negative-result cache ---------------------------------------------


def test_negative_cache_memoises_deterministic_rejections(tmp_path):
    async def go(server, host, port):
        service = server.service
        for _ in range(3):
            with pytest.raises(ServingError) as exc_info:
                await service.resolve(dict(BAD))
            assert exc_info.value.status == 400
        # First rejection validates and stores; the two repeats are
        # served from memory without touching decode or the pool.
        assert service.stats.negative_hits == 2
        assert service.negative.as_dict()["stores"] == 1

    _with_server(tmp_path, go)


def test_negative_cache_entries_expire():
    cache = NegativeCache(ttl_s=0.05, max_entries=4)
    cache.put("k", "bad spec", 400)
    assert cache.get("k") == ("bad spec", 400)
    time.sleep(0.08)
    assert cache.get("k") is None
    assert cache.as_dict()["expired"] == 1


# -- bounded result cache ----------------------------------------------


def test_eviction_under_concurrent_load_respects_bound(tmp_path):
    points = [
        {"app": "sor", "variant": "csm_poll", "nprocs": n, "scale": "tiny"}
        for n in (1, 2, 4)
    ] + [{"app": "water", "variant": "csm_poll", "nprocs": 1, "scale": "tiny"}]

    async def go(server, host, port):
        service = server.service
        client = ServingClient(service=service)
        await asyncio.gather(*(client.resolve(dict(p)) for p in points))
        summary = service.cache.summary()
        assert summary["entries"] <= 2
        assert service.cache.stats.evictions >= 2
        # The hot payload tier is independent of disk eviction: every
        # point answers as a cache hit even though only 2 remain on disk.
        before = service.stats.cache_hits
        for point in points:
            payload = await client.resolve(dict(point))
            assert payload["source"] == "cache"
        assert service.stats.cache_hits == before + len(points)
        assert service.stats.hot_hits >= len(points)

    _with_server(tmp_path, go, cache_max_entries=2)


def test_result_cache_prune_and_clear_reports(tmp_path):
    cache = ResultCache(cache_dir=tmp_path / "c", max_entries=2)
    for i in range(4):
        cache.put(f"{i:032x}", {"n": i})
    assert cache.summary()["entries"] == 2
    # Exactly one eviction per over-bound put: the in-flight tmp file
    # must not count as a phantom entry during _make_room's scan.
    assert cache.stats.evictions == 2
    report = cache.prune(max_entries=1)
    assert report["evicted"] == 1 and report["entries"] == 1
    report = cache.clear()
    assert report["entries"] == 0 and report["evicted"] == 1
    assert set(report) == {"evicted", "reclaimed_bytes", "entries", "bytes"}


def test_cache_cli_matches_cachestats_schema(tmp_path, capsys):
    from repro.harness.cli import main

    cache_dir = str(tmp_path / "cli-cache")
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["stats"]) == set(CacheStats().as_dict())
    assert {"entries", "bytes", "max_bytes", "max_entries"} <= set(payload)
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    report = json.loads(capsys.readouterr().out)
    assert set(report) == {"evicted", "reclaimed_bytes", "entries", "bytes"}


# -- admission control --------------------------------------------------


def test_saturated_server_answers_429_with_retry_after(tmp_path):
    async def go(server, host, port):
        service = server.service
        service.inflight = 1  # pin saturation; no timing races
        with pytest.raises(ServingError) as exc_info:
            await service.resolve(dict(SOR))
        service.inflight = 0
        assert exc_info.value.status == 429
        assert exc_info.value.retry_after == service.config.retry_after_s
        assert service.stats.rejected == 1
        # Admitted (stream-originated) points bypass the 429 path.
        service.inflight = 1
        payload = await service.resolve(dict(SOR), admitted=True)
        service.inflight = 0
        assert payload["source"] in ("computed", "cache")

    _with_server(tmp_path, go, max_inflight=1)


def test_http_429_carries_retry_after_header(tmp_path):
    async def go(server, host, port):
        server.service.inflight = 1
        reader, writer = await asyncio.open_connection(host, port)
        body = json.dumps(SOR).encode()
        writer.write(
            b"POST /v1/point HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: %d\r\nConnection: close\r\n\r\n%b"
            % (len(body), body)
        )
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        writer.close()
        server.service.inflight = 0
        assert b"429" in head.splitlines()[0]
        assert b"Retry-After:" in head

    _with_server(tmp_path, go, max_inflight=1)


# -- wire versioning ----------------------------------------------------


def test_v1_bodies_upconvert_and_match_v2(tmp_path):
    assert upconvert_request(dict(SOR))["v"] == 2
    assert upconvert_request(dict(SOR, v=1))["v"] == 2
    with pytest.raises(ServingError):
        upconvert_request(dict(SOR, v=3))
    # validate_request is the one shared validator: the kwargs never
    # leak the version field.
    assert "v" not in validate_request(dict(SOR, v=1))

    async def go(server, host, port):
        client = ServingClient(host, port)
        v1 = await client.resolve(dict(SOR))
        v2 = await client.resolve(dict(SOR, v=2))
        await client.close()
        assert v1["digest"] == v2["digest"]

    _with_server(tmp_path, go)


# -- server-side sweeps -------------------------------------------------


def test_expand_sweep_validates_and_caps():
    points = expand_sweep(
        {
            "kind": "figure5",
            "apps": ["sor"],
            "variants": ["csm_poll"],
            "counts": [1, 2],
            "baselines": False,
            "scale": "tiny",
        }
    )
    assert [p["nprocs"] for p in points] == [1, 2]
    for point in points:
        validate_request(dict(point))
    with pytest.raises(ServingError) as exc_info:
        expand_sweep({"kind": "figure5"}, max_points=3)
    assert exc_info.value.status == 413
    with pytest.raises(ServingError):
        expand_sweep({"kind": "nope"})


def test_sweep_streams_preamble_then_points_in_completion_order(tmp_path):
    request = {
        "kind": "figure5",
        "apps": ["sor"],
        "variants": ["csm_poll"],
        "counts": [1, 2],
        "baselines": False,
        "scale": "tiny",
    }

    async def go(server, host, port):
        client = ServingClient(host, port)
        lines = [line async for line in client.sweep(dict(request))]
        assert lines[0]["sweep"] == {"kind": "figure5", "points": 2}
        assert sorted(line["index"] for line in lines[1:]) == [0, 1]
        # The convenience wrapper reorders by index and keeps the meta.
        ordered = await client.sweep_points(dict(request))
        await client.close()
        assert [p["index"] for p in ordered["points"]] == [0, 1]
        assert ordered["errors"] == []
        assert ordered["points"][0]["source"] == "cache"

    _with_server(tmp_path, go)


def test_mid_stream_disconnect_leaves_server_healthy(tmp_path):
    request = {
        "kind": "figure5",
        "apps": ["sor"],
        "variants": ["csm_poll"],
        "counts": [1, 2],
        "baselines": False,
        "scale": "tiny",
    }

    async def go(server, host, port):
        warm = ServingClient(service=server.service)
        for point in server.service.expand(dict(request)):
            await warm.resolve(point)
        reader, writer = await asyncio.open_connection(host, port)
        body = json.dumps(request).encode()
        writer.write(
            b"POST /v1/sweep HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: %d\r\n\r\n%b" % (len(body), body)
        )
        await writer.drain()
        await reader.readuntil(b"\r\n\r\n")
        preamble = json.loads(await reader.readline())
        assert preamble["sweep"]["points"] == 2
        writer.close()  # walk away mid-stream
        await asyncio.sleep(0.05)
        # The abandoned stream must not wedge the service: a fresh
        # request resolves and no connection stays marked busy.
        after = await warm.resolve(dict(SOR))
        assert after["digest"]
        assert not server._busy

    _with_server(tmp_path, go)


def test_drain_during_sweep_delivers_admitted_points(tmp_path):
    request = {
        "kind": "figure5",
        "apps": ["sor"],
        "variants": ["csm_poll"],
        "counts": [1, 2],
        "baselines": False,
        "scale": "tiny",
    }

    async def go():
        server = ExperimentServer(config=_config(tmp_path))
        host, port = await server.start()
        warm = ServingClient(service=server.service)
        for point in server.service.expand(dict(request)):
            await warm.resolve(point)
        client = ServingClient(host, port)
        stream = client.sweep(dict(request))
        preamble = await stream.__anext__()
        assert preamble["sweep"]["points"] == 2
        first = await stream.__anext__()
        # Graceful shutdown mid-stream: the busy connection gets its
        # remaining admitted points before the listener dies.
        shutdown = asyncio.ensure_future(server.shutdown(drain=True))
        rest = [line async for line in stream]
        await shutdown
        indices = {first["index"]} | {line["index"] for line in rest}
        assert indices == {0, 1}
        await client.close()

    asyncio.run(go())


# -- hot tier byte identity ---------------------------------------------


def test_hot_tier_splice_is_byte_identical(tmp_path):
    async def go(server, host, port):
        service = server.service
        await service.resolve(dict(SOR))  # cold: populates the hot tier
        hot = await service.resolve(dict(SOR))
        assert "_result_json" in hot
        public = {k: v for k, v in hot.items() if k != "_result_json"}
        assert encode_payload(dict(hot)) == json.dumps(
            public, sort_keys=True
        ).encode()
        # The in-process client strips the transport-private key; the
        # HTTP client never sees it.
        inproc = await ServingClient(service=service).resolve(dict(SOR))
        assert "_result_json" not in inproc
        http_client = ServingClient(host, port)
        over_http = await http_client.resolve(dict(SOR))
        await http_client.close()
        assert "_result_json" not in over_http
        assert over_http["digest"] == inproc["digest"]

    _with_server(tmp_path, go)
