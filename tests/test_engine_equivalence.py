"""Bit-exact equivalence of the optimized hot paths.

``tests/golden_engine.json`` holds run outcomes (simulated times,
counters, breakdowns) captured before the engine and diff hot-path
optimizations landed.  These tests re-run the same configurations and
require *exact* equality — the optimizations must change wall-clock
time only, never a single simulated microsecond or counter.

The goldens predate the shared-access fast path and the calendar-queue
engine, so every case runs with fast path on/off crossed with the three
scheduler modes — the sharded calendar queue (the default), the
unsharded calendar queue (``--no-shard``), and the binary heap
(``--no-calqueue``) — proving every mode reproduces the
pre-optimization simulated results exactly.  Runs go through the
public ``repro.api`` facade, so the goldens also pin its behaviour.

Regenerate the goldens only when the simulation's *semantics* change
intentionally (a protocol fix, a cost-model change):

    PYTHONPATH=src python tests/regen_golden_engine.py
"""

import json
import pathlib
from dataclasses import replace

import pytest

from repro import api
from repro import options as options_mod
from repro.apps import kernels
from repro.core import fastpath

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_engine.json"
GOLDENS = json.loads(GOLDEN_PATH.read_text())


def _run(golden):
    variant = (
        None if golden["variant"] == "sequential" else golden["variant"]
    )
    return api.run_point(
        golden["app"],
        variant,
        golden.get("nprocs", 1),
        scale=golden["scale"],
    )


@pytest.fixture(params=["calqueue", "noshard", "heap"])
def queue_mode(request):
    # "noshard" is the sharded scheduler's escape hatch (--no-shard):
    # still the calendar queue, but without the per-shard cascade ring.
    # The heap ignores the shard flag entirely, so three modes cover
    # the whole scheduler matrix.
    saved = options_mod.current()
    replace(
        saved,
        calqueue=request.param != "heap",
        shard=request.param == "calqueue",
    ).apply()
    yield request.param
    saved.apply()


@pytest.fixture(params=[True, False], ids=["fastpath", "legacy"])
def fastpath_mode(request, queue_mode):
    # Depends on queue_mode so its set_enabled lands after (and its
    # teardown before) the queue fixture's SimOptions.apply().
    saved = fastpath.ENABLED
    fastpath.set_enabled(request.param)
    yield request.param
    fastpath.set_enabled(saved)


@pytest.fixture(params=[True, False], ids=["kernels", "scalar"])
def kernels_mode(request, fastpath_mode):
    # The goldens predate the vectorized kernel layer too: every case
    # must reproduce them with the app kernels on or off, in every
    # queue/fastpath combination.
    saved = kernels.ENABLED
    kernels.set_enabled(request.param)
    yield request.param
    kernels.set_enabled(saved)


@pytest.mark.parametrize(
    "golden",
    GOLDENS,
    ids=[f"{g['app']}-{g['variant']}-{g['nprocs']}p" for g in GOLDENS],
)
def test_run_matches_golden(golden, kernels_mode):
    result = _run(golden)
    assert result.exec_time == golden["exec_time"]
    assert result.network_bytes == golden["network_bytes"]
    agg = result.stats.aggregate_counters()
    for name, value in golden["counters"].items():
        assert agg[name] == value, f"counter {name}"
    breakdown = result.breakdown.as_dict()
    for category, value in golden["breakdown"].items():
        assert breakdown[category] == value, f"breakdown {category}"
