"""docs/NETWORKS.md must catalog every network backend's constants.

The catalog is enforced, not aspirational (the same deal as
docs/OBSERVABILITY.md and tests/test_observability_docs.py): every
backend registered in ``repro.cluster.network.NETWORK_MODELS`` must
have its own ``## `<name>` ...`` section whose constants table matches
the backend's ``describe()`` classmethod *exactly* — missing
constants, stale values, phantom rows, and sections for backends that
no longer exist all fail.
"""

import re
from pathlib import Path

from repro.cluster.network import NETWORK_MODELS

REPO = Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "NETWORKS.md"

# A backend section opens with a heading whose first token is the
# registry name in backticks: ## `memch` — ...
SECTION = re.compile(r"^## `(\w+)`", re.M)

# Constants rows: | `latency_us` | 5.2 | meaning |
CONSTANT_ROW = re.compile(r"^\| `(\w+)` \| ([^|]+) \|", re.M)


def documented_sections():
    """``{backend_name: section_text}`` for every backend section."""
    text = DOC.read_text()
    matches = list(SECTION.finditer(text))
    sections = {}
    for i, match in enumerate(matches):
        end = (
            matches[i + 1].start()
            if i + 1 < len(matches)
            else len(text)
        )
        sections[match.group(1)] = text[match.start():end]
    return sections


def documented_constants(section_text):
    return {
        key: value.strip()
        for key, value in CONSTANT_ROW.findall(section_text)
    }


def test_every_backend_has_a_section():
    missing = set(NETWORK_MODELS) - set(documented_sections())
    assert not missing, (
        f"backends registered in repro.cluster.network but absent from "
        f"docs/NETWORKS.md: {sorted(missing)}"
    )


def test_no_phantom_backend_sections():
    phantom = set(documented_sections()) - set(NETWORK_MODELS)
    assert not phantom, (
        f"docs/NETWORKS.md documents backends nothing registers: "
        f"{sorted(phantom)}"
    )


def test_constant_tables_match_describe_exactly():
    sections = documented_sections()
    for name, model in NETWORK_MODELS.items():
        described = model.describe()
        documented = documented_constants(sections[name])
        missing = set(described) - set(documented)
        assert not missing, (
            f"{name}: constants in describe() but not docs/NETWORKS.md: "
            f"{sorted(missing)}"
        )
        phantom = set(documented) - set(described)
        assert not phantom, (
            f"{name}: docs/NETWORKS.md documents constants describe() "
            f"does not report: {sorted(phantom)}"
        )
        for key, value in described.items():
            assert documented[key] == value, (
                f"{name}: constant {key} is {documented[key]!r} in the "
                f"docs but describe() reports {value!r} — update "
                f"docs/NETWORKS.md"
            )


def test_doc_cross_references_exist():
    text = DOC.read_text()
    # The walkthrough points at real files; keep the pointers alive.
    for ref in (
        "tests/test_network_backends.py",
        "tests/regen_golden_networks.py",
        "tests/golden_networks.json",
        ".github/workflows/ci.yml",
    ):
        assert ref in text, f"docs/NETWORKS.md lost its pointer to {ref}"
        assert (REPO / ref).exists(), f"{ref} referenced but missing"
