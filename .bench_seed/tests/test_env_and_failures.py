"""Env cost plumbing and failure-injection behaviour."""

import numpy as np
import pytest

from repro.config import (
    CSM_POLL,
    TMK_MC_POLL,
    CostModel,
    RunConfig,
    WorkingSet,
)
from repro.core import Program, SharedArray, run_program
from repro.core.runtime.sequential import SequentialProtocol
from repro.memory import AddressSpace
from repro.sim import DeadlockError
from repro.stats import Category


def tiny_program(worker):
    def setup(space, params):
        arr = SharedArray.alloc(space, "x", np.float64, (1024,))
        arr.initialize(np.zeros(1024))
        return {"arr": arr}

    return Program("tiny", setup, worker)


# --- Env cost plumbing ------------------------------------------------------


def test_compute_polls_only_charged_under_polling():
    def worker(env, shared, params):
        yield from env.compute(100.0, polls=10000)
        env.stop_timer()
        return None

    poll = run_program(
        tiny_program(worker), RunConfig(variant=CSM_POLL, nprocs=1), {}
    )
    costs = CostModel()
    assert poll.stats[0].reported_time[Category.POLL] == pytest.approx(
        10000 * costs.poll_check
    )

    from repro.config import CSM_INT

    intr = run_program(
        tiny_program(worker), RunConfig(variant=CSM_INT, nprocs=1), {}
    )
    assert intr.stats[0].reported_time[Category.POLL] == 0.0


def test_working_set_split_categories():
    costs = CostModel()
    ws = WorkingSet(primary=costs.l1_bytes - 1024, doubled=64 * 1024)

    def worker(env, shared, params):
        yield from env.compute(1000.0, ws=ws)
        env.stop_timer()
        return None

    result = run_program(
        tiny_program(worker), RunConfig(variant=CSM_POLL, nprocs=1), {}
    )
    times = result.stats[0].reported_time
    # User keeps the un-inflated portion; doubling takes the delta.
    assert times[Category.USER] == pytest.approx(1000.0)
    assert times[Category.WDOUBLE] > 0

    tmk = run_program(
        tiny_program(worker), RunConfig(variant=TMK_MC_POLL, nprocs=1), {}
    )
    assert tmk.stats[0].reported_time[Category.WDOUBLE] == 0.0


def test_now_advances_monotonically():
    stamps = []

    def worker(env, shared, params):
        stamps.append(env.now)
        yield from env.compute(10.0)
        stamps.append(env.now)
        yield from env.barrier(0)
        stamps.append(env.now)
        env.stop_timer()
        return None

    run_program(tiny_program(worker), RunConfig(variant=CSM_POLL, nprocs=1), {})
    assert stamps == sorted(stamps)
    assert stamps[1] >= stamps[0] + 10.0


# --- failure injection ---------------------------------------------------


def test_missing_barrier_participant_deadlocks():
    def worker(env, shared, params):
        if env.rank == 0:
            yield from env.barrier(0)  # rank 1 never arrives
        env.stop_timer()
        return None
        yield

    with pytest.raises(DeadlockError):
        run_program(
            tiny_program(worker), RunConfig(variant=CSM_POLL, nprocs=2), {}
        )


def test_unreleased_lock_blocks_other_acquirers():
    def worker(env, shared, params):
        if env.rank == 0:
            yield from env.lock_acquire(0)
            # never released
        else:
            yield from env.lock_acquire(0)
        env.stop_timer()
        return None

    with pytest.raises(DeadlockError):
        run_program(
            tiny_program(worker), RunConfig(variant=CSM_POLL, nprocs=2), {}
        )


def test_double_release_rejected_cashmere():
    def worker(env, shared, params):
        yield from env.lock_acquire(0)
        yield from env.lock_release(0)
        yield from env.lock_release(0)
        env.stop_timer()
        return None

    with pytest.raises(RuntimeError):
        run_program(
            tiny_program(worker), RunConfig(variant=CSM_POLL, nprocs=1), {}
        )


def test_double_release_rejected_treadmarks():
    def worker(env, shared, params):
        yield from env.lock_acquire(0)
        yield from env.lock_release(0)
        yield from env.lock_release(0)
        env.stop_timer()
        return None

    with pytest.raises(RuntimeError, match="unheld lock"):
        run_program(
            tiny_program(worker), RunConfig(variant=TMK_MC_POLL, nprocs=1), {}
        )


def test_write_without_permission_detected():
    """Protocol data-access guards catch runtime misuse."""
    from repro.core.treadmarks.protocol import TreadMarksProtocol

    def worker(env, shared, params):
        # Bypass ensure_write: direct apply_write must fail.
        with pytest.raises(RuntimeError, match="without permission"):
            gen = env.protocol.apply_write(
                env.proc, 0, 0, np.zeros(8, np.uint8)
            )
            while True:
                next(gen)
        yield from env.compute(1.0)
        env.stop_timer()
        return None

    run_program(
        tiny_program(worker), RunConfig(variant=TMK_MC_POLL, nprocs=1), {}
    )


def test_sequential_protocol_rejects_requests():
    space = AddressSpace(1024)
    protocol = SequentialProtocol(space)
    with pytest.raises(RuntimeError):
        protocol.serve(None, None)


def test_tsp_pool_exhaustion_raises():
    from repro.apps import tsp

    params = dict(cities=8, local_depth=2, max_slots=4)
    with pytest.raises(RuntimeError, match="pool exhausted"):
        run_program(
            tsp.program(), RunConfig(variant=CSM_POLL, nprocs=2), params
        )


def test_barnes_cell_overflow_raises():
    from repro.apps.barnes import _build_tree, _encode_cells
    import numpy as np

    rng = np.random.default_rng(0)
    positions = rng.random((64, 3))
    masses = np.ones(64)
    cells = _build_tree(positions, masses)
    with pytest.raises(RuntimeError, match="overflow"):
        _encode_cells(cells, max_cells=2)
