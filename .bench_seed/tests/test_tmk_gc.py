"""TreadMarks garbage collection: consistency data is bounded, and
collection never changes program results."""

import numpy as np
import pytest

import repro.core.treadmarks.protocol as tmk_protocol
from repro.config import TMK_MC_POLL, RunConfig
from repro.core import Program, SharedArray, run_program, run_sequential
from repro.core.treadmarks.protocol import TreadMarksProtocol

from tests.helpers import values_match


@pytest.fixture
def low_threshold(monkeypatch):
    """Force GC to trigger after a handful of intervals."""
    monkeypatch.setattr(tmk_protocol, "GC_RECORD_THRESHOLD", 16)


def churn_program(iters=24):
    """Every iteration every processor writes a page and barriers —
    interval records accumulate fast."""

    def setup(space, params):
        arr = SharedArray.alloc(space, "data", np.float64, (4096,))
        arr.initialize(np.zeros(4096))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        for it in range(iters):
            idx = (env.rank * 1024 + it) % 4096
            yield from arr.put(env, idx, it * 100.0 + env.rank)
            yield from env.barrier(0)
            # Read a neighbour's slot so diffs and notices flow.
            other = (((env.rank + 1) % env.nprocs) * 1024 + it) % 4096
            value = yield from arr.get(env, other)
            assert value == it * 100.0 + (env.rank + 1) % env.nprocs
            yield from env.barrier(1)
        env.stop_timer()
        if env.rank == 0:
            return (yield from arr.read_all(env))
        return None

    return Program("churn", setup, worker)


def _grab_protocols(monkeypatch):
    created = []
    original = TreadMarksProtocol.__init__

    def spy(self, *args, **kwargs):
        original(self, *args, **kwargs)
        created.append(self)

    monkeypatch.setattr(TreadMarksProtocol, "__init__", spy)
    return created


def test_gc_triggers_and_results_stay_correct(monkeypatch):
    created = _grab_protocols(monkeypatch)
    # Baseline: same program, GC effectively disabled.
    monkeypatch.setattr(tmk_protocol, "GC_RECORD_THRESHOLD", 10**9)
    baseline = run_program(
        churn_program(), RunConfig(variant=TMK_MC_POLL, nprocs=4), {}
    )
    assert baseline.counter("gc_rounds") == 0

    monkeypatch.setattr(tmk_protocol, "GC_RECORD_THRESHOLD", 16)
    result = run_program(
        churn_program(), RunConfig(variant=TMK_MC_POLL, nprocs=4), {}
    )
    assert values_match(baseline.values[0], result.values[0])
    assert result.counter("gc_rounds") > 0
    # Interval stores stay bounded at the threshold scale.
    protocol = created[-1]
    for state in protocol.procs.values():
        assert state.store.record_count() <= 3 * 16


def test_gc_discards_diff_payloads(low_threshold, monkeypatch):
    created = _grab_protocols(monkeypatch)
    run_program(churn_program(), RunConfig(variant=TMK_MC_POLL, nprocs=4), {})
    protocol = created[-1]
    cached = sum(
        len(wd.cache)
        for state in protocol.procs.values()
        for wd in state.diff_cache.values()
    )
    # Most diff payloads were collected; only the current epoch remains.
    assert cached < 40


def test_no_gc_without_threshold(monkeypatch):
    created = _grab_protocols(monkeypatch)
    result = run_program(
        churn_program(iters=4), RunConfig(variant=TMK_MC_POLL, nprocs=4), {}
    )
    assert result.counter("gc_rounds") == 0


def test_gc_after_epoch_first_touch_gets_flushed_copy(
    low_threshold, monkeypatch
):
    """A processor that first touches a page only *after* a GC epoch must
    see current data via the manager's flushed copy."""

    def setup(space, params):
        arr = SharedArray.alloc(space, "data", np.float64, (2048,))
        arr.initialize(np.zeros(2048))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        # Ranks 0..2 churn on page 0 to force a GC.
        for it in range(20):
            if env.rank < 3:
                yield from arr.put(env, env.rank, it * 10.0 + env.rank)
            yield from env.barrier(0)
        # Rank 3 touches page 0 for the first time, post-GC.
        value = None
        if env.rank == 3:
            value = yield from arr.get(env, 1)
        yield from env.barrier(1)
        env.stop_timer()
        return value

    result = run_program(
        Program("late_touch", setup, worker),
        RunConfig(variant=TMK_MC_POLL, nprocs=4),
        {},
    )
    assert result.counter("gc_rounds") > 0
    assert result.values[3] == 19 * 10.0 + 1
