"""Bitmap/perm coherence: the fast path's redundant state never drifts.

The permission bitmaps (``repro.core.fastpath.PermBitmaps``) mirror the
per-page ``perm`` fields that remain authoritative.  Every protocol
must update them at *every* transition — fault upgrades, invalidations,
release/barrier downgrades — or the fast path would serve stale data.

These tests drive fault/invalidate/downgrade sequences through all
three page-based protocols (Cashmere, TreadMarks, HLRC) with
``fastpath.DEBUG`` forced on, so ``Env.barrier`` re-checks coherence at
every synchronization point and ``run_program`` checks it again at the
end.  A hypothesis-generated schedule shrinks any drift to a minimal
failing program.  Direct unit tests pin down the checker itself —
including that a deliberately corrupted bitmap is *caught*.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import CSM_POLL, HLRC_POLL, TMK_MC_POLL, RunConfig
from repro.core import Program, SharedArray, run_program
from repro.core import fastpath
from repro.core.fastpath import PermBitmaps
from repro.memory.page import Protection

VARIANTS = (CSM_POLL, TMK_MC_POLL, HLRC_POLL)
SLOTS = 96


class force_debug:
    """Force ``fastpath.DEBUG`` on for the duration of a block, so the
    barrier hook re-checks bitmap coherence mid-run."""

    def __enter__(self):
        self._saved = fastpath.DEBUG
        fastpath.DEBUG = True

    def __exit__(self, *exc):
        fastpath.DEBUG = self._saved


def _sharing_program(rounds):
    """Barrier-phased writes with full cross-rank read sharing: every
    round upgrades pages at the writer, invalidates/downgrades them at
    the sharers, then re-shares them read-only."""

    def setup(space, params):
        arr = SharedArray.alloc(space, "coh", np.float64, (SLOTS,))
        arr.initialize(np.zeros(SLOTS))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        expected = {}
        for round_writes in rounds:
            for slot, writer, value in round_writes:
                if writer % env.nprocs == env.rank:
                    yield from arr.put(env, slot, value)
                expected[slot] = value
            yield from env.barrier(0)  # DEBUG: coherence checked here
            for slot, value in expected.items():
                got = yield from arr.get(env, slot)
                assert got == value
            yield from env.barrier(1)  # ... and here
        env.stop_timer()

    return Program("coherence", setup, worker)


def _dedup(rounds):
    cleaned = []
    for round_writes in rounds:
        seen = set()
        unique = []
        for slot, writer, value in round_writes:
            if slot not in seen:
                seen.add(slot)
                unique.append((slot, writer, value))
        cleaned.append(unique)
    return cleaned


write_rounds = st.lists(
    st.lists(
        st.tuples(
            st.integers(0, SLOTS - 1),
            st.integers(0, 3),
            st.floats(-100, 100, allow_nan=False),
        ),
        min_size=1,
        max_size=6,
    ),
    min_size=1,
    max_size=3,
)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rounds=write_rounds, data=st.data())
def test_bitmaps_coherent_through_random_sharing(rounds, data):
    variant = data.draw(st.sampled_from(VARIANTS))
    nprocs = data.draw(st.sampled_from([2, 4]))
    program = _sharing_program(_dedup(rounds))
    with force_debug():
        run_program(program, RunConfig(variant=variant, nprocs=nprocs), {})


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
@pytest.mark.parametrize("fast_on", [True, False], ids=["fast", "legacy"])
def test_bitmaps_coherent_dense_schedule(variant, fast_on):
    """A fixed dense migratory schedule: every slot is written by a
    rotating owner each round, forcing upgrade/invalidate/downgrade
    churn on every page — checked at every barrier, in both modes
    (the bitmaps are maintained even when the fast path is off)."""
    rounds = [
        [(slot, (slot + r) % 4, float(100 * r + slot)) for slot in
         range(0, SLOTS, 3)]
        for r in range(4)
    ]
    program = _sharing_program(rounds)
    saved = fastpath.ENABLED
    fastpath.set_enabled(fast_on)
    try:
        with force_debug():
            run_program(program, RunConfig(variant=variant, nprocs=4), {})
    finally:
        fastpath.set_enabled(saved)


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
def test_corrupted_bitmap_is_caught(variant):
    """The checker must not be vacuous: flipping one bitmap bit behind
    the protocol's back fails the next barrier's coherence check."""
    captured = {}

    def setup(space, params):
        arr = SharedArray.alloc(space, "corrupt", np.float64, (SLOTS,))
        arr.initialize(np.zeros(SLOTS))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        yield from arr.put(env, env.rank, 1.0)
        yield from env.barrier(0)
        if env.rank == 0:
            perms = env.protocol.perms
            page = arr.region.space.n_pages - 1
            perms.ensure_cap(page + 1)
            # Claim write permission the protocol never granted.
            perms.writable[0, page] = True
            perms.readable[0, page] = True
            captured["corrupted"] = True
        yield from env.barrier(1)
        env.stop_timer()

    with force_debug():
        with pytest.raises(AssertionError, match="bitmap disagrees"):
            run_program(
                Program("corrupt", setup, worker),
                RunConfig(variant=variant, nprocs=2),
                {},
            )
    assert captured.get("corrupted")


# -- PermBitmaps unit behaviour ---------------------------------------------


def test_permbitmaps_set_and_query():
    perms = PermBitmaps(2, n_pages=8)
    assert not perms.read_ready(0, 0, 8)
    for page in range(4):
        perms.set(0, page, Protection.READ)
    perms.set(0, 4, Protection.READ_WRITE)
    assert perms.read_ready(0, 0, 5)
    assert not perms.read_ready(0, 0, 6)
    assert perms.write_ready(0, 4, 5)
    assert not perms.write_ready(0, 0, 5)
    assert perms.readable_at(0, 3) and not perms.writable_at(0, 3)
    # The other processor's row is untouched.
    assert not perms.read_ready(1, 0, 1)
    perms.set(0, 4, Protection.NONE)
    assert not perms.readable_at(0, 4)
    assert not perms.writable_at(0, 4)


def test_permbitmaps_grow_preserves_and_rebinds_rows():
    perms = PermBitmaps(2, n_pages=2)
    perms.set(1, 1, Protection.READ_WRITE)
    perms.set(0, 37, Protection.READ)  # forces growth
    assert perms.writable_at(1, 1), "growth must preserve existing bits"
    assert perms.readable_at(0, 37)
    # Row views alias the grown arrays (the hit path probes these).
    assert perms.r_rows[0][37]
    assert perms.w_rows[1][1]
    perms.set(0, 37, Protection.NONE)
    assert not perms.r_rows[0][37]


def test_permbitmaps_vectorized_span_matches_scalar():
    perms = PermBitmaps(1, n_pages=64)
    for page in range(0, 40):
        perms.set(0, page, Protection.READ)
    # Span of 40 pages goes through the vectorized .all() branch;
    # spans <= 16 take the scalar probe: both must agree.
    assert perms.read_ready(0, 0, 40)
    assert perms.read_ready(0, 30, 40)
    assert not perms.read_ready(0, 0, 41)
    assert not perms.read_ready(0, 39, 56)


def test_permbitmaps_expect_flags_disagreement():
    perms = PermBitmaps(1, n_pages=4)
    perms.set(0, 2, Protection.READ)
    perms.expect(0, [(2, Protection.READ)])  # coherent: no raise
    with pytest.raises(AssertionError, match="disagrees"):
        perms.expect(0, [(2, Protection.READ_WRITE)])
    with pytest.raises(AssertionError, match="disagrees"):
        perms.expect(0, [])  # bitmap says readable, authority says not
    with pytest.raises(AssertionError, match="beyond bitmap capacity"):
        perms.expect(0, [(2, Protection.READ), (99, Protection.READ)])
