"""Unit and property tests for twin/diff machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.diff import (
    Diff,
    RUN_HEADER_BYTES,
    WORD,
    apply_diff,
    apply_diff_versioned,
    make_diff,
)


def page(values) -> np.ndarray:
    return np.asarray(values, np.float64).view(np.uint8).copy()


def test_identical_pages_empty_diff():
    twin = page([1.0, 2.0, 3.0, 4.0])
    diff = make_diff(twin, twin.copy())
    assert diff.is_empty
    assert diff.encoded_size == 0
    assert diff.dirty_bytes == 0


def test_single_word_change():
    twin = page([1.0, 2.0, 3.0, 4.0])
    current = page([1.0, 9.0, 3.0, 4.0])
    diff = make_diff(twin, current)
    assert len(diff.runs) == 1
    offset, data = diff.runs[0]
    assert offset == WORD
    assert len(data) == WORD
    assert diff.encoded_size == RUN_HEADER_BYTES + WORD


def test_adjacent_changes_merge_into_one_run():
    twin = page([0.0] * 8)
    current = page([0.0, 5.0, 6.0, 7.0, 0.0, 0.0, 8.0, 0.0])
    diff = make_diff(twin, current)
    assert len(diff.runs) == 2
    assert diff.runs[0][0] == WORD
    assert len(diff.runs[0][1]) == 3 * WORD
    assert diff.runs[1][0] == 6 * WORD


def test_apply_restores_current():
    twin = page([1.0, 2.0, 3.0, 4.0])
    current = page([1.0, 9.0, 3.0, 8.0])
    diff = make_diff(twin, current)
    target = twin.copy()
    apply_diff(target, diff)
    assert np.array_equal(target, current)


def test_mismatched_sizes_rejected():
    with pytest.raises(ValueError):
        make_diff(np.zeros(16, np.uint8), np.zeros(24, np.uint8))


def test_non_word_multiple_rejected():
    with pytest.raises(ValueError):
        make_diff(np.zeros(12, np.uint8), np.zeros(12, np.uint8))


def test_apply_out_of_bounds_rejected():
    diff = Diff(((8, b"x" * 16),))
    with pytest.raises(ValueError):
        apply_diff(np.zeros(16, np.uint8), diff)


@settings(max_examples=200)
@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=64,
    ),
    st.data(),
)
def test_diff_roundtrip_property(base, data):
    """diff(twin, current) applied to twin always reproduces current."""
    twin = page(base)
    current = twin.copy()
    words = current.view(np.float64)
    n_changes = data.draw(st.integers(0, len(words)))
    for _ in range(n_changes):
        idx = data.draw(st.integers(0, len(words) - 1))
        words[idx] = data.draw(
            st.floats(allow_nan=False, allow_infinity=False)
        )
    diff = make_diff(twin, current)
    target = twin.copy()
    apply_diff(target, diff)
    assert np.array_equal(target, current)
    assert diff.dirty_bytes <= len(twin)


@given(st.integers(1, 64))
def test_fully_dirty_page_one_run(n_words):
    twin = page([0.0] * n_words)
    current = page([1.0] * n_words)
    diff = make_diff(twin, current)
    assert len(diff.runs) == 1
    assert diff.dirty_bytes == n_words * WORD


# --- versioned application ------------------------------------------------


def test_versioned_apply_basic():
    target = page([0.0, 0.0])
    tags = np.zeros(2, np.int64)
    diff = make_diff(page([0.0, 0.0]), page([5.0, 0.0]))
    apply_diff_versioned([target], diff, tags, tag=3)
    assert target.view(np.float64)[0] == 5.0
    assert tags[0] == 3
    assert tags[1] == 0  # untouched word keeps its version


def test_versioned_apply_rejects_stale_word():
    """An older diff must not regress a word a newer diff wrote."""
    target = page([0.0])
    tags = np.zeros(1, np.int64)
    newer = make_diff(page([0.0]), page([2.0]))
    older = make_diff(page([0.0]), page([1.0]))
    apply_diff_versioned([target], newer, tags, tag=5)
    apply_diff_versioned([target], older, tags, tag=2)
    assert target.view(np.float64)[0] == 2.0
    assert tags[0] == 5


def test_versioned_apply_mixed_run():
    """Within one run, stale words are skipped and fresh words land."""
    base = page([0.0, 0.0, 0.0])
    tags = np.array([10, 0, 10], np.int64)
    diff = make_diff(page([0.0, 0.0, 0.0]), page([1.0, 2.0, 3.0]))
    target = base.copy()
    apply_diff_versioned([target], diff, tags, tag=5)
    assert list(target.view(np.float64)) == [0.0, 2.0, 0.0]
    assert list(tags) == [10, 5, 10]


def test_versioned_apply_updates_twin_too():
    copy = page([0.0])
    twin = page([0.0])
    tags = np.zeros(1, np.int64)
    diff = make_diff(page([0.0]), page([7.0]))
    apply_diff_versioned([copy, twin], diff, tags, tag=1)
    assert copy.view(np.float64)[0] == 7.0
    assert twin.view(np.float64)[0] == 7.0


# --- vectorized paths vs. straightforward references ----------------------
#
# ``make_diff`` and ``apply_diff_versioned`` are vectorized (run-boundary
# detection via np.diff, single-gather/scatter versioned merge).  These
# references re-implement the original word-by-word / run-by-run logic;
# the property tests require exact agreement on randomized pages.


def _make_diff_reference(twin, current):
    changed = twin.view(np.uint64) != current.view(np.uint64)
    idx = np.flatnonzero(changed)
    if idx.size == 0:
        return Diff(())
    runs = []
    run_start = prev = idx[0]
    for word in idx[1:]:
        if word != prev + 1:
            start = int(run_start) * WORD
            runs.append((start, current[start:(int(prev) + 1) * WORD].tobytes()))
            run_start = word
        prev = word
    start = int(run_start) * WORD
    runs.append((start, current[start:(int(prev) + 1) * WORD].tobytes()))
    return Diff(tuple(runs))


def _apply_versioned_reference(targets, diff, word_tags, tag):
    for offset, data in diff.runs:
        if offset + len(data) > len(targets[0]):
            raise ValueError("diff run exceeds page bounds")
        first = offset // WORD
        n_words = len(data) // WORD
        tags = word_tags[first : first + n_words]
        winners = tags < tag
        if not winners.any():
            continue
        tags[winners] = tag
        raw = np.frombuffer(data, np.uint8).reshape(n_words, WORD)
        for target in targets:
            view = target[offset : offset + len(data)].reshape(n_words, WORD)
            view[winners] = raw[winners]


def _random_page(data, n_words):
    raw = data.draw(
        st.binary(min_size=n_words * WORD, max_size=n_words * WORD)
    )
    return np.frombuffer(raw, np.uint8).copy()


@settings(max_examples=200)
@given(st.data())
def test_make_diff_matches_reference_property(data):
    n_words = data.draw(st.integers(1, 64))
    twin = _random_page(data, n_words)
    current = twin.copy()
    # Flip a random subset of words so runs of every shape appear.
    for idx in data.draw(
        st.lists(st.integers(0, n_words - 1), max_size=n_words)
    ):
        current[idx * WORD : (idx + 1) * WORD] ^= data.draw(
            st.integers(1, 255)
        )
    fast = make_diff(twin, current)
    slow = _make_diff_reference(twin, current)
    assert fast.runs == slow.runs
    assert fast.encoded_size == slow.encoded_size


@settings(max_examples=200)
@given(st.data())
def test_versioned_apply_matches_reference_property(data):
    n_words = data.draw(st.integers(1, 32))
    base = _random_page(data, n_words)
    n_diffs = data.draw(st.integers(1, 4))
    diffs = []
    for _ in range(n_diffs):
        current = base.copy()
        for idx in data.draw(
            st.lists(st.integers(0, n_words - 1), max_size=n_words)
        ):
            current[idx * WORD : (idx + 1) * WORD] ^= data.draw(
                st.integers(1, 255)
            )
        diffs.append(
            (data.draw(st.integers(0, 6)), make_diff(base, current))
        )

    fast_copy, fast_twin = base.copy(), base.copy()
    fast_tags = np.zeros(n_words, np.int64)
    slow_copy, slow_twin = base.copy(), base.copy()
    slow_tags = np.zeros(n_words, np.int64)
    for tag, diff in diffs:
        apply_diff_versioned([fast_copy, fast_twin], diff, fast_tags, tag)
        _apply_versioned_reference(
            [slow_copy, slow_twin], diff, slow_tags, tag
        )
    assert np.array_equal(fast_copy, slow_copy)
    assert np.array_equal(fast_twin, slow_twin)
    assert np.array_equal(fast_tags, slow_tags)


def test_versioned_apply_out_of_bounds_rejected():
    diff = Diff(((8, b"x" * 16),))
    with pytest.raises(ValueError):
        apply_diff_versioned(
            [np.zeros(16, np.uint8)], diff, np.zeros(2, np.int64), tag=1
        )


@settings(max_examples=100)
@given(st.data())
def test_versioned_apply_order_independence_property(data):
    """Applying a set of single-writer-per-word diffs in any order gives
    the word values of the highest tag per word."""
    n_words = data.draw(st.integers(1, 16))
    base = page([0.0] * n_words)
    diffs = []
    for tag in range(1, data.draw(st.integers(2, 6))):
        current = base.copy()
        words = current.view(np.float64)
        for idx in data.draw(
            st.lists(st.integers(0, n_words - 1), max_size=n_words)
        ):
            words[idx] = tag * 100 + idx
        diffs.append((tag, make_diff(base, current)))
    order = data.draw(st.permutations(diffs))

    target = base.copy()
    tags = np.zeros(n_words, np.int64)
    for tag, diff in order:
        apply_diff_versioned([target], diff, tags, tag)

    expected = base.copy()
    etags = np.zeros(n_words, np.int64)
    for tag, diff in sorted(diffs):
        apply_diff_versioned([expected], diff, etags, tag)
    assert np.array_equal(target, expected)
