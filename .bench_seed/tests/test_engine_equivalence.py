"""Bit-exact equivalence of the optimized hot paths.

``tests/golden_engine.json`` holds run outcomes (simulated times,
counters, breakdowns) captured before the engine and diff hot-path
optimizations landed.  These tests re-run the same configurations and
require *exact* equality — the optimizations must change wall-clock
time only, never a single simulated microsecond or counter.

The goldens predate the shared-access fast path, so every case runs
twice — fast path on and off (``REPRO_DSM_NO_FASTPATH=1``) — proving
both modes reproduce the pre-optimization simulated results exactly.

Regenerate the goldens only when the simulation's *semantics* change
intentionally (a protocol fix, a cost-model change):

    PYTHONPATH=src python tests/regen_golden_engine.py
"""

import json
import pathlib

import pytest

from repro import RunConfig, run_program, run_sequential, variant_by_name
from repro.apps import registry
from repro.core import fastpath

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_engine.json"
GOLDENS = json.loads(GOLDEN_PATH.read_text())


def _run(golden):
    module = registry.load(golden["app"])
    params = module.default_params(golden["scale"])
    if golden["variant"] == "sequential":
        return run_sequential(module.program(), params)
    cfg = RunConfig(
        variant=variant_by_name(golden["variant"]),
        nprocs=golden["nprocs"],
        warm_start=True,
    )
    return run_program(module.program(), cfg, params)


@pytest.fixture(params=[True, False], ids=["fastpath", "legacy"])
def fastpath_mode(request):
    saved = fastpath.ENABLED
    fastpath.set_enabled(request.param)
    yield request.param
    fastpath.set_enabled(saved)


@pytest.mark.parametrize(
    "golden",
    GOLDENS,
    ids=[f"{g['app']}-{g['variant']}-{g['nprocs']}p" for g in GOLDENS],
)
def test_run_matches_golden(golden, fastpath_mode):
    result = _run(golden)
    assert result.exec_time == golden["exec_time"]
    assert result.network_bytes == golden["network_bytes"]
    agg = result.stats.aggregate_counters()
    for name, value in golden["counters"].items():
        assert agg[name] == value, f"counter {name}"
    breakdown = result.breakdown.as_dict()
    for category, value in golden["breakdown"].items():
        assert breakdown[category] == value, f"breakdown {category}"
