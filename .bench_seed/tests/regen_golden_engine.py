"""Regenerate ``tests/golden_engine.json``.

Run this ONLY when a simulated-semantics change is intentional (protocol
fix, cost-model change); performance work must leave the goldens alone —
that is the point of ``tests/test_engine_equivalence.py``.

Usage::

    PYTHONPATH=src python tests/regen_golden_engine.py
"""

import json
import pathlib

from repro import RunConfig, run_program, run_sequential, variant_by_name
from repro.apps import registry

# A spread across protocols (Cashmere, TreadMarks, HLRC), mechanisms
# (poll, interrupt, protocol processor), and transports (MC, UDP).
CONFIGS = [
    ("sor", "csm_poll", 4, "tiny"),
    ("sor", "tmk_mc_poll", 4, "tiny"),
    ("water", "tmk_udp_int", 2, "tiny"),
    ("gauss", "csm_pp", 4, "tiny"),
    ("tsp", "hlrc_poll", 4, "tiny"),
    ("lu", "csm_int", 4, "tiny"),
]


def golden(app, variant, nprocs, scale):
    module = registry.load(app)
    params = module.default_params(scale)
    cfg = RunConfig(
        variant=variant_by_name(variant), nprocs=nprocs, warm_start=True
    )
    result = run_program(module.program(), cfg, params)
    agg = result.stats.aggregate_counters()
    return {
        "app": app,
        "variant": variant,
        "nprocs": nprocs,
        "scale": scale,
        "exec_time": result.exec_time,
        "network_bytes": result.network_bytes,
        "counters": {k: agg[k] for k in sorted(agg)},
        "breakdown": result.breakdown.as_dict(),
    }


def main() -> None:
    out = [golden(*spec) for spec in CONFIGS]
    module = registry.load("sor")
    seq = run_sequential(module.program(), module.default_params("tiny"))
    out.append({
        "app": "sor",
        "variant": "sequential",
        "nprocs": 1,
        "scale": "tiny",
        "exec_time": seq.exec_time,
        "network_bytes": seq.network_bytes,
        "counters": {},
        "breakdown": seq.breakdown.as_dict(),
    })
    path = pathlib.Path(__file__).parent / "golden_engine.json"
    path.write_text(json.dumps(out, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(out)} goldens to {path}")


if __name__ == "__main__":
    main()
