"""Unit tests for processors, nodes, and request-service mechanisms."""

import pytest

from repro.config import ClusterConfig, CostModel, Mechanism
from repro.cluster.machine import Cluster, Processor
from repro.sim import Engine
from repro.stats import Category, StatsBoard


def build(mechanism, placement, n_nodes=8, cpus=4):
    engine = Engine()
    stats = StatsBoard(len(placement))
    cluster = Cluster(
        engine,
        ClusterConfig(n_nodes=n_nodes, cpus_per_node=cpus),
        CostModel(),
        mechanism,
        placement,
        stats,
    )
    return engine, cluster, stats


def test_compute_charges_user_time():
    engine, cluster, stats = build(Mechanism.POLL, [(0, 0)])
    proc = cluster.proc(0)

    def work():
        yield from proc.compute(100.0)

    engine.process(work())
    engine.run()
    assert stats[0].time[Category.USER] == pytest.approx(100.0)
    assert engine.now == pytest.approx(100.0)


def test_poll_instrumentation_cost():
    engine, cluster, stats = build(Mechanism.POLL, [(0, 0)])
    proc = cluster.proc(0)
    costs = CostModel()

    def work():
        yield from proc.compute(100.0, polls=1000)

    engine.process(work())
    engine.run()
    assert stats[0].time[Category.POLL] == pytest.approx(
        1000 * costs.poll_check
    )
    assert stats[0].time[Category.USER] == pytest.approx(100.0)


def test_interrupt_mechanism_pays_no_poll_cost():
    engine, cluster, stats = build(Mechanism.INTERRUPT, [(0, 0)])
    proc = cluster.proc(0)

    def work():
        yield from proc.compute(100.0, polls=1000)

    engine.process(work())
    engine.run()
    assert stats[0].time[Category.POLL] == 0.0


def test_compute_share_split():
    engine, cluster, stats = build(Mechanism.POLL, [(0, 0)])
    proc = cluster.proc(0)

    def work():
        yield from proc.compute(
            100.0, shares={Category.USER: 0.75, Category.WDOUBLE: 0.25}
        )

    engine.process(work())
    engine.run()
    assert stats[0].time[Category.USER] == pytest.approx(75.0)
    assert stats[0].time[Category.WDOUBLE] == pytest.approx(25.0)


class _StubRequest:
    pass


def _install_server(proc, handled, service_us=10.0):
    def server(servicer, request):
        handled.append((servicer.engine.now, request))
        yield from servicer.busy(service_us, Category.PROTOCOL)

    proc.server = server


def test_poll_reaction_interrupts_compute():
    engine, cluster, stats = build(Mechanism.POLL, [(0, 0)])
    proc = cluster.proc(0)
    handled = []
    _install_server(proc, handled)
    costs = CostModel()

    def work():
        yield from proc.compute(1000.0, polls=100)

    def sender():
        yield engine.timeout(200.0)
        proc.deliver(_StubRequest())

    engine.process(work())
    engine.process(sender())
    engine.run()
    assert len(handled) == 1
    # Serviced at the next poll point, not at compute end.
    assert handled[0][0] == pytest.approx(200.0 + costs.poll_reaction)
    # Compute still completes in full.
    assert stats[0].time[Category.USER] == pytest.approx(1000.0, rel=0.01)


def test_interrupt_reaction_latency():
    engine, cluster, stats = build(Mechanism.INTERRUPT, [(0, 0)])
    proc = cluster.proc(0)
    handled = []
    _install_server(proc, handled)
    costs = CostModel()

    def work():
        yield from proc.compute(5000.0)

    def sender():
        yield engine.timeout(200.0)
        proc.deliver(_StubRequest())

    engine.process(work())
    engine.process(sender())
    engine.run()
    assert len(handled) == 1
    assert handled[0][0] == pytest.approx(
        200.0 + costs.interrupt_latency + costs.signal_local
    )


def test_protocol_processor_mechanism_never_disturbs_compute():
    engine, cluster, stats = build(
        Mechanism.PROTOCOL_PROCESSOR, [(0, 0)], cpus=4
    )
    proc = cluster.proc(0)
    pp = cluster.nodes[0].protocol_processor
    assert pp is not None
    handled = []
    _install_server(pp, handled)
    cluster.start_protocol_processors()

    def work():
        yield from proc.compute(1000.0)

    def sender():
        yield engine.timeout(100.0)
        cluster.nodes[0].request_target().deliver(_StubRequest())

    engine.process(work())
    engine.process(sender())
    engine.run()
    assert len(handled) == 1
    assert handled[0][0] == pytest.approx(100.0)  # serviced immediately


def test_wait_services_requests_while_blocked():
    engine, cluster, stats = build(Mechanism.INTERRUPT, [(0, 0)])
    proc = cluster.proc(0)
    handled = []
    _install_server(proc, handled)
    gate = engine.event()

    def work():
        yield from proc.wait(gate)

    def sender():
        yield engine.timeout(50.0)
        proc.deliver(_StubRequest())
        yield engine.timeout(100.0)
        gate.succeed()

    engine.process(work())
    engine.process(sender())
    engine.run()
    # Serviced immediately at 50 (spinning handler), long before the
    # interrupt latency would have fired.
    assert handled[0][0] == pytest.approx(50.0)
    assert stats[0].time[Category.COMM_WAIT] > 0


def test_wait_returns_event_value():
    engine, cluster, stats = build(Mechanism.POLL, [(0, 0)])
    proc = cluster.proc(0)
    gate = engine.event()
    got = []

    def work():
        value = yield from proc.wait(gate)
        got.append(value)

    def sender():
        yield engine.timeout(10.0)
        gate.succeed("the-value")

    engine.process(work())
    engine.process(sender())
    engine.run()
    assert got == ["the-value"]


def test_placement_validation():
    with pytest.raises(ValueError, match="out of range"):
        build(Mechanism.POLL, [(99, 0)])
    with pytest.raises(ValueError, match="out of range"):
        build(Mechanism.POLL, [(0, 99)])


def test_pp_reserved_cpu_collision_rejected():
    with pytest.raises(ValueError, match="reserved"):
        build(Mechanism.PROTOCOL_PROCESSOR, [(0, 3)], cpus=4)


def test_same_node_helper():
    engine, cluster, stats = build(Mechanism.POLL, [(0, 0), (0, 1), (1, 0)])
    assert cluster.same_node(0, 1)
    assert not cluster.same_node(0, 2)


def test_negative_compute_rejected():
    engine, cluster, stats = build(Mechanism.POLL, [(0, 0)])
    proc = cluster.proc(0)

    def work():
        yield from proc.compute(-1.0)

    engine.process(work())
    with pytest.raises(ValueError):
        engine.run()


def test_drain_without_server_raises():
    engine, cluster, stats = build(Mechanism.POLL, [(0, 0)])
    proc = cluster.proc(0)
    proc.deliver(_StubRequest())

    def work():
        yield from proc.drain()

    engine.process(work())
    with pytest.raises(RuntimeError, match="no request server"):
        engine.run()
