"""docs/OBSERVABILITY.md must catalog every emitted trace-event kind.

The catalog is enforced, not aspirational: this test greps every
``trace(proc, "<kind>", ...)`` call site out of ``src/repro/core/`` and
fails if the documentation misses one (or documents a kind nothing
emits any more).
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CORE = REPO / "src" / "repro" / "core"
DOC = REPO / "docs" / "OBSERVABILITY.md"

# Matches self.trace(proc, "kind", ...) / protocol.trace(self.proc, ...)
TRACE_CALL = re.compile(
    r"\.trace\(\s*(?:self\.)?proc\s*,\s*\"(\w+)\"", re.S
)


def emitted_kinds():
    kinds = {}
    for path in sorted(CORE.rglob("*.py")):
        for kind in TRACE_CALL.findall(path.read_text()):
            kinds.setdefault(kind, []).append(path.relative_to(REPO))
    return kinds


def documented_kinds():
    # Catalog rows: | `kind` | instant/span | details | meaning |
    return set(
        re.findall(
            r"^\| `(\w+)` \| (?:instant|span) \|", DOC.read_text(), re.M
        )
    )


def test_sources_actually_emit_events():
    kinds = emitted_kinds()
    assert len(kinds) >= 20, sorted(kinds)
    # Spot-check one kind per subsystem so the regex tracks the code.
    for expected in (
        "compute", "barrier",                       # runtime env
        "page_transfer", "write_notice",            # cashmere
        "interval_close", "lock_grant",             # shared LRC engine
        "diff_create", "diff_fetch",                # treadmarks
        "diff_to_home", "diff_flush_wait",          # hlrc
    ):
        assert expected in kinds, sorted(kinds)


def test_catalog_is_complete():
    emitted = emitted_kinds()
    documented = documented_kinds()
    missing = set(emitted) - documented
    assert not missing, (
        f"event kinds emitted in src/repro/core/ but absent from "
        f"docs/OBSERVABILITY.md: "
        + ", ".join(
            f"{kind} ({', '.join(map(str, emitted[kind]))})"
            for kind in sorted(missing)
        )
    )


def test_catalog_has_no_phantom_kinds():
    emitted = set(emitted_kinds())
    phantom = documented_kinds() - emitted
    assert not phantom, (
        f"docs/OBSERVABILITY.md documents kinds nothing emits: "
        f"{sorted(phantom)}"
    )
