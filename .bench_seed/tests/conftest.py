"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig, CostModel


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep every test's result cache inside its tmp dir so the suite
    never reads from or writes to the user's ~/.cache."""
    monkeypatch.setenv("REPRO_DSM_CACHE", str(tmp_path / "repro-dsm-cache"))


@pytest.fixture
def engine():
    from repro.sim import Engine

    return Engine()


@pytest.fixture
def cluster_config():
    return ClusterConfig()


@pytest.fixture
def costs():
    return CostModel()
