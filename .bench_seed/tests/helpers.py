"""Helpers shared across test modules (tests/ is a package)."""

from __future__ import annotations

import numpy as np

from repro.config import RunConfig, Variant
from repro.core import Program, SharedArray, run_program, run_sequential


def values_match(a, b, rtol=1e-9, atol=1e-9) -> bool:
    """Compare worker return values (scalars, arrays, or tuples)."""
    if isinstance(a, (tuple, list)):
        return all(values_match(x, y, rtol, atol) for x, y in zip(a, b))
    return np.allclose(a, b, rtol=rtol, atol=atol)


def run_app_everywhere(module, scale, variants, proc_counts, rtol=1e-7):
    """Run an app module under each (variant, nprocs) and compare with
    the sequential reference; returns the list of mismatches."""
    app = module.program()
    params = module.default_params(scale)
    seq = run_sequential(app, params)
    failures = []
    for variant in variants:
        for nprocs in proc_counts:
            cfg = RunConfig(variant=variant, nprocs=nprocs)
            if nprocs > cfg.compute_cpus_available:
                continue
            par = run_program(app, cfg, params)
            if not values_match(seq.values[0], par.values[0], rtol=rtol):
                failures.append((variant.name, nprocs))
    return failures
