"""Unit and property tests for the cache working-set model."""

import pytest
from hypothesis import given, strategies as st

from repro.config import CostModel, WorkingSet
from repro.cluster.cache import CacheModel


@pytest.fixture
def model():
    return CacheModel(CostModel())


def test_fits_l1_no_penalty(model):
    costs = CostModel()
    assert model.factor(0) == 1.0
    assert model.factor(costs.l1_bytes) == 1.0


def test_spills_l1_penalized(model):
    costs = CostModel()
    assert model.factor(costs.l1_bytes + 1024) > 1.0


def test_l2_penalty_reached(model):
    costs = CostModel()
    # Well past L1 but within L2: close to the full L2 penalty.
    factor = model.factor(costs.l2_bytes // 2)
    assert factor == pytest.approx(costs.l2_penalty, rel=0.01)


def test_beyond_l2_worse_than_within(model):
    costs = CostModel()
    assert model.factor(8 * costs.l2_bytes) > model.factor(costs.l2_bytes)


def test_memory_penalty_cap(model):
    costs = CostModel()
    assert model.factor(100 * costs.l2_bytes) <= costs.mem_penalty + 1e-9


def test_negative_ws_rejected(model):
    with pytest.raises(ValueError):
        model.factor(-1)


@given(st.integers(min_value=0, max_value=64 * 1024 * 1024))
def test_factor_at_least_one(nbytes):
    model = CacheModel(CostModel())
    assert model.factor(nbytes) >= 1.0


@given(
    st.integers(min_value=0, max_value=16 * 1024 * 1024),
    st.integers(min_value=0, max_value=16 * 1024 * 1024),
)
def test_factor_monotonic(a, b):
    model = CacheModel(CostModel())
    lo, hi = sorted((a, b))
    assert model.factor(lo) <= model.factor(hi) + 1e-12


def test_secondary_factor_jump():
    model = CacheModel(CostModel())
    costs = CostModel()
    fits = model.secondary_factor(costs.l2_bytes)
    spills = model.secondary_factor(2 * costs.l2_bytes)
    assert fits == 1.0
    assert spills > 1.0


def test_total_factor_combines_levels():
    model = CacheModel(CostModel())
    costs = CostModel()
    ws = WorkingSet(
        primary=costs.l1_bytes + 8192, secondary=2 * costs.l2_bytes
    )
    combined = model.total_factor(ws)
    assert combined == pytest.approx(
        model.factor(ws.primary) * model.secondary_factor(ws.secondary)
    )


def test_total_factor_extra_footprint():
    """The paper's LU case: 16 KB fits L1, doubling pushes it out."""
    model = CacheModel(CostModel())
    ws = WorkingSet(primary=16 * 1024)
    assert model.total_factor(ws) == 1.0
    assert model.total_factor(ws, extra_l1=8 * 1024) > 1.0


def test_total_factor_gauss_l2_jump():
    """The paper's Gauss case: the secondary set fits L2 without twins
    but not with them."""
    model = CacheModel(CostModel())
    costs = CostModel()
    ws = WorkingSet(primary=0, secondary=costs.l2_bytes - 1024)
    assert model.total_factor(ws) == 1.0
    assert model.total_factor(ws, extra_l2=512 * 1024) > 1.0


def test_empty_working_set_is_free():
    model = CacheModel(CostModel())
    assert model.total_factor(WorkingSet()) == 1.0
    assert model.total_factor(WorkingSet(), 10**9, 10**9) == 1.0
