"""Unit and property tests for vector timestamps and interval records."""

import pytest
from hypothesis import given, strategies as st

from repro.core.treadmarks.intervals import (
    IntervalRecord,
    IntervalStore,
    vts_leq,
    vts_max,
)


def rec(proc, iid, vts, pages=()):
    return IntervalRecord(proc=proc, iid=iid, vts=tuple(vts), pages=tuple(pages))


def test_vts_max():
    assert vts_max((1, 5, 2), (3, 1, 2)) == (3, 5, 2)


def test_vts_leq():
    assert vts_leq((1, 2), (1, 3))
    assert not vts_leq((2, 2), (1, 3))


def test_vts_arity_mismatch():
    with pytest.raises(ValueError):
        vts_max((1,), (1, 2))
    with pytest.raises(ValueError):
        vts_leq((1,), (1, 2))


def test_store_insert_and_latest():
    store = IntervalStore(3)
    assert store.latest(0) == 0
    assert store.insert(rec(0, 1, (1, 0, 0)))
    assert store.latest(0) == 1
    assert not store.insert(rec(0, 1, (1, 0, 0)))  # duplicate


def test_store_rejects_gap():
    store = IntervalStore(2)
    store.insert(rec(0, 1, (1, 0)))
    with pytest.raises(AssertionError, match="gap"):
        store.insert(rec(0, 3, (3, 0)))


def test_store_rejects_nonfirst_start():
    store = IntervalStore(2)
    with pytest.raises(AssertionError, match="gap"):
        store.insert(rec(1, 2, (0, 2)))


def test_store_collect_resets_epoch():
    store = IntervalStore(2)
    store.insert(rec(0, 1, (1, 0), pages=(5,)))
    store.insert(rec(1, 1, (1, 1), pages=(6,)))
    store.collect((1, 1))
    assert store.record_count() == 0
    assert store.latest(0) == 1  # the epoch base survives
    # Post-GC inserts continue from the base.
    assert store.insert(rec(0, 2, (2, 1)))
    with pytest.raises(AssertionError, match="gap"):
        store.insert(rec(1, 3, (1, 3)))
    # records_after never resurrects collected epochs.
    assert [(r.proc, r.iid) for r in store.records_after((1, 1))] == [(0, 2)]


def test_store_collect_rejects_uncovered_records():
    store = IntervalStore(2)
    store.insert(rec(0, 1, (1, 0)))
    with pytest.raises(AssertionError, match="past the epoch"):
        store.collect((0, 0))


def test_records_after_filters_by_vts():
    store = IntervalStore(2)
    store.insert(rec(0, 1, (1, 0), pages=(5,)))
    store.insert(rec(0, 2, (2, 0), pages=(6,)))
    store.insert(rec(1, 1, (0, 1), pages=(7,)))
    missing = store.records_after((1, 0))
    assert {(r.proc, r.iid) for r in missing} == {(0, 2), (1, 1)}
    assert store.records_after((2, 1)) == []


def test_records_after_order_consistent_with_happens_before():
    store = IntervalStore(2)
    store.insert(rec(0, 1, (1, 0)))
    store.insert(rec(1, 1, (1, 1)))  # saw p0's interval first
    out = store.records_after((0, 0))
    assert [(r.proc, r.iid) for r in out] == [(0, 1), (1, 1)]


def test_encoded_size():
    record = rec(0, 1, (1, 0, 0), pages=(1, 2, 3))
    assert record.encoded_size(header=16, vts_entry=2, notice=8) == (
        16 + 3 * 2 + 3 * 8
    )


def test_sort_key_linearizes_comparable_vts():
    earlier = rec(0, 1, (1, 0))
    later = rec(1, 1, (1, 1))
    assert earlier.sort_key() < later.sort_key()


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 5)),
        min_size=1,
        max_size=30,
    )
)
def test_store_latest_equals_chain_length_property(events):
    """Inserting contiguous intervals per proc keeps latest() == count."""
    store = IntervalStore(4)
    counters = [0, 0, 0, 0]
    for proc, _ in events:
        counters[proc] += 1
        vts = [0, 0, 0, 0]
        vts[proc] = counters[proc]
        store.insert(rec(proc, counters[proc], vts))
    for proc in range(4):
        assert store.latest(proc) == counters[proc]


@given(
    st.lists(st.integers(0, 100), min_size=3, max_size=3),
    st.lists(st.integers(0, 100), min_size=3, max_size=3),
)
def test_vts_max_is_lub_property(a, b):
    m = vts_max(a, b)
    assert vts_leq(a, m) and vts_leq(b, m)
    # And it is the least upper bound.
    for i in range(3):
        smaller = list(m)
        if smaller[i] > 0:
            smaller[i] -= 1
            assert not (vts_leq(a, smaller) and vts_leq(b, smaller))
