"""Behavioural tests for the home-based LRC extension protocol."""

import numpy as np
import pytest

from repro.config import HLRC_INT, HLRC_POLL, RunConfig
from repro.core import Program, SharedArray, run_program, run_sequential

from tests.helpers import values_match


def simple_program(worker):
    def setup(space, params):
        arr = SharedArray.alloc(space, "data", np.float64, (4096,))
        arr.initialize(np.zeros(4096))
        return {"arr": arr}

    return Program("probe", setup, worker)


def run(worker, nprocs=2, variant=HLRC_POLL, **overrides):
    return run_program(
        simple_program(worker),
        RunConfig(variant=variant, nprocs=nprocs, **overrides),
        {},
    )


def test_release_pushes_diff_to_home():
    """A non-home writer's release eagerly diffs to the home."""

    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:
            _ = yield from arr.get(env, 0)  # first touch: rank 0 is home
        yield from env.barrier(0)
        if env.rank == 1:
            yield from arr.put(env, 0, 5.0)
        yield from env.barrier(1)
        if env.rank == 0:
            value = yield from arr.get(env, 0)
            assert value == 5.0
        yield from env.barrier(2)
        env.stop_timer()
        return None

    result = run(worker, trace=True)
    counts = result.trace.counts()
    assert counts["twin"] == 1
    assert counts["diff_to_home"] == 1
    assert counts["diff_apply"] == 1
    # The home never faults for remote data: its copy is authoritative.
    assert result.stats[0].reported_counters["page_fetches"] == 0


def test_home_writes_in_place_without_twins():
    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 0:  # home of page 0
            yield from arr.put(env, 0, 7.0)
        yield from env.barrier(0)
        value = yield from arr.get(env, 0)
        assert value == 7.0
        yield from env.barrier(1)
        env.stop_timer()
        return None

    result = run(worker, nprocs=4)
    assert result.stats[0].reported_counters["twins_created"] == 0
    assert result.counter("diffs_created") == 0


def test_reader_validates_with_single_page_fetch():
    """Many writers, one reader: HLRC needs ONE fetch where TreadMarks
    needs a diff from every writer."""

    def worker(env, shared, params):
        arr = shared["arr"]
        yield from arr.put(env, env.rank, float(env.rank + 1))
        yield from env.barrier(0)
        out = yield from arr.read_range(env, 0, env.nprocs)
        yield from env.barrier(1)
        env.stop_timer()
        return list(out)

    result = run(worker, nprocs=8)
    expected = [float(r + 1) for r in range(8)]
    for values in result.values:
        assert values == expected
    # Each non-home processor revalidated with one whole-page fetch.
    assert result.counter("page_fetches") <= 2 * 8


def test_unflushed_writes_survive_refetch():
    """Regression: an invalidation landing on a dirty page must not
    clobber the open interval's writes (found via TSP)."""

    def worker(env, shared, params):
        arr = shared["arr"]
        if env.rank == 1:
            # Dirty word 100 in an open interval...
            yield from arr.put(env, 100, 42.0)
            # ...then acquire a lock whose grant invalidates the page
            # (rank 0 wrote word 0 under it).
            yield from env.lock_acquire(0)
            value = yield from arr.get(env, 0)
            own = yield from arr.get(env, 100)
            yield from env.lock_release(0)
            env.stop_timer()
            return value, own
        yield from env.lock_acquire(0)
        yield from arr.put(env, 0, 1.0)
        yield from env.lock_release(0)
        env.stop_timer()
        return None

    result = run(worker)
    value, own = result.values[1]
    assert value == 1.0  # saw the lock-protected write
    assert own == 42.0  # kept its own unflushed write


def test_lock_chain_rmw_exact():
    def worker(env, shared, params):
        arr = shared["arr"]
        for _ in range(4):
            for victim in range(env.nprocs):
                target = (env.rank + victim) % env.nprocs
                yield from env.lock_acquire(target)
                value = yield from arr.get(env, target)
                yield from arr.put(env, target, value + 1.0)
                yield from env.lock_release(target)
        yield from env.barrier(0)
        env.stop_timer()
        if env.rank == 0:
            return (yield from arr.read_range(env, 0, env.nprocs))
        return None

    result = run(worker, nprocs=16)
    assert list(result.values[0]) == [64.0] * 16


@pytest.mark.parametrize("variant", [HLRC_POLL, HLRC_INT])
def test_apps_match_sequential(variant):
    from repro.apps import sor, water

    for module in (sor, water):
        app = module.program()
        params = module.default_params("tiny")
        seq = run_sequential(app, params)
        par = run_program(app, RunConfig(variant=variant, nprocs=8), params)
        assert values_match(seq.values[0], par.values[0], rtol=1e-7)


def test_no_gc_pressure():
    """HLRC discards twins/diffs at each release: no diff accumulation,
    and GC (when records trigger it) has no page work to do."""
    import repro.core.lrc as lrc

    def worker(env, shared, params):
        arr = shared["arr"]
        for it in range(30):
            yield from arr.put(env, env.rank * 512 + it % 512, float(it))
            yield from env.barrier(0)
        env.stop_timer()
        return None

    import unittest.mock as mock

    with mock.patch.object(lrc, "GC_RECORD_THRESHOLD", 16):
        # The class attribute reads the module constant at definition
        # time; patch the instance attribute path instead.
        from repro.core.hlrc.protocol import HlrcProtocol

        with mock.patch.object(HlrcProtocol, "gc_record_threshold", 16):
            result = run(worker, nprocs=4)
    assert result.counter("gc_rounds") > 0


def test_prewarm_gives_everyone_copies():
    def worker(env, shared, params):
        arr = shared["arr"]
        _ = yield from arr.read_range(env, 0, 4096)
        yield from env.barrier(0)
        env.stop_timer()
        return None

    warm = run(worker, nprocs=4, warm_start=True)
    assert warm.counter("page_fetches") == 0
