"""Global time-accounting invariants: every simulated microsecond of a
worker's execution is charged to exactly one category."""

import pytest

from repro.config import (
    CSM_POLL,
    HLRC_POLL,
    TMK_MC_POLL,
    RunConfig,
)
from repro.core import run_program, run_sequential
from repro.apps import sor, water


@pytest.mark.parametrize(
    "variant", (CSM_POLL, TMK_MC_POLL, HLRC_POLL), ids=lambda v: v.name
)
@pytest.mark.parametrize("module", (sor, water), ids=("sor", "water"))
def test_categories_cover_execution_time(variant, module):
    params = module.default_params("tiny")
    result = run_program(
        module.program(), RunConfig(variant=variant, nprocs=4), params
    )
    for proc_stats in result.stats:
        accounted = proc_stats.total_time
        finish = proc_stats.finish_time
        assert finish > 0
        # Charged time never exceeds elapsed time...
        assert accounted <= finish * 1.001
        # ...and covers almost all of it (small gaps come from event
        # scheduling boundaries, e.g. a barrier release landing between
        # two charged intervals).
        assert accounted >= finish * 0.93, (
            f"p{proc_stats.pid}: only {accounted:.0f} of {finish:.0f} us "
            "accounted"
        )


def test_sequential_time_is_pure_user():
    from repro.stats import Category

    params = sor.default_params("tiny")
    seq = run_sequential(sor.program(), params)
    times = seq.stats[0].reported_time
    assert times[Category.USER] == pytest.approx(seq.exec_time, rel=0.01)
    assert times[Category.COMM_WAIT] == 0.0
    assert times[Category.WDOUBLE] == 0.0


def test_breakdown_matches_exec_time_scaled():
    params = sor.default_params("tiny")
    result = run_program(
        sor.program(), RunConfig(variant=CSM_POLL, nprocs=8), params
    )
    breakdown = result.breakdown
    # Aggregate charged time across processors approximates
    # nprocs x exec_time (each processor runs for the whole execution).
    assert breakdown.total == pytest.approx(
        8 * result.exec_time, rel=0.10
    )
