"""Unit tests for configuration, variants, and processor placement."""

import pytest

from repro.config import (
    ALL_VARIANTS,
    CSM_POLL,
    CSM_PP,
    TMK_MC_POLL,
    ClusterConfig,
    CostModel,
    Mechanism,
    RunConfig,
    SystemKind,
    Transport,
    variant_by_name,
)
from repro.harness.configs import (
    PAPER_PLACEMENTS,
    paper_processor_counts,
    placement,
)


def test_six_variants():
    assert len(ALL_VARIANTS) == 6
    names = {v.name for v in ALL_VARIANTS}
    assert names == {
        "csm_pp",
        "csm_int",
        "csm_poll",
        "tmk_udp_int",
        "tmk_mc_int",
        "tmk_mc_poll",
    }


def test_variant_lookup():
    assert variant_by_name("csm_poll") is CSM_POLL
    with pytest.raises(ValueError, match="unknown variant"):
        variant_by_name("nope")


def test_variant_properties():
    assert CSM_PP.system is SystemKind.CASHMERE
    assert CSM_PP.mechanism is Mechanism.PROTOCOL_PROCESSOR
    udp = variant_by_name("tmk_udp_int")
    assert udp.transport is Transport.UDP
    assert TMK_MC_POLL.transport is Transport.MEMORY_CHANNEL


def test_cluster_defaults_match_paper():
    cfg = ClusterConfig()
    assert cfg.n_nodes == 8
    assert cfg.cpus_per_node == 4
    assert cfg.total_cpus == 32
    assert cfg.page_size == 8192


def test_cluster_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_nodes=0)
    with pytest.raises(ValueError):
        ClusterConfig(page_size=1001)


def test_run_config_pp_reserves_cpu():
    cfg = RunConfig(variant=CSM_PP, nprocs=24)
    assert cfg.compute_cpus_available == 24
    with pytest.raises(ValueError):
        RunConfig(variant=CSM_PP, nprocs=32)


def test_run_config_32_ok_for_non_pp():
    cfg = RunConfig(variant=CSM_POLL, nprocs=32)
    assert cfg.compute_cpus_available == 32


def test_run_config_needs_processor():
    with pytest.raises(ValueError):
        RunConfig(variant=CSM_POLL, nprocs=0)


def test_paper_processor_counts():
    assert paper_processor_counts() == (1, 2, 4, 8, 12, 16, 24, 32)
    assert paper_processor_counts(16) == (1, 2, 4, 8, 12, 16)


@pytest.mark.parametrize("nprocs,shape", sorted(PAPER_PLACEMENTS.items()))
def test_paper_placements(nprocs, shape):
    nodes_used, cpus_used = shape
    slots = placement(nprocs, ClusterConfig(), Mechanism.POLL)
    assert len(slots) == nprocs
    assert len({nid for nid, _ in slots}) == nodes_used
    per_node = {}
    for nid, cpu in slots:
        per_node.setdefault(nid, []).append(cpu)
    assert all(len(cpus) == cpus_used for cpus in per_node.values())


def test_placement_2_uses_separate_nodes():
    slots = placement(2, ClusterConfig(), Mechanism.POLL)
    assert slots == [(0, 0), (1, 0)]


def test_placement_8_uses_four_nodes():
    """The paper: 8 processors = two in each of 4 nodes."""
    slots = placement(8, ClusterConfig(), Mechanism.POLL)
    assert len({nid for nid, _ in slots}) == 4


def test_placement_pp_never_uses_last_cpu():
    for nprocs in (1, 2, 4, 8, 12, 16, 24):
        slots = placement(
            nprocs, ClusterConfig(), Mechanism.PROTOCOL_PROCESSOR
        )
        assert all(cpu < 3 for _, cpu in slots)


def test_placement_overflow_rejected():
    with pytest.raises(ValueError):
        placement(33, ClusterConfig(), Mechanism.POLL)
    with pytest.raises(ValueError):
        placement(32, ClusterConfig(), Mechanism.PROTOCOL_PROCESSOR)


def test_placement_fallback_small_cluster():
    cfg = ClusterConfig(n_nodes=2, cpus_per_node=2)
    slots = placement(3, cfg, Mechanism.POLL)
    assert len(slots) == 3
    assert len({nid for nid, _ in slots}) == 2


def test_cost_model_page_scaling():
    costs = CostModel()
    assert costs.twin_cost(8192) == costs.twin_page_8k
    assert costs.twin_cost(4096) == costs.twin_page_8k / 2
    assert costs.diff_cost(8192, 0.0) == costs.diff_page_min
    assert costs.diff_cost(8192, 1.0) == costs.diff_page_max
    assert costs.diff_cost(8192, 2.0) == costs.diff_page_max  # clamped


def test_second_generation_model():
    first = CostModel()
    second = CostModel.second_generation()
    assert second.mc_latency < first.mc_latency
    assert second.mc_link_bandwidth >= 10 * first.mc_link_bandwidth
