"""Unit tests for Cashmere's directory, lists, and MC synchronization."""

import pytest

from repro.config import ClusterConfig, CostModel, Mechanism
from repro.cluster.machine import Cluster
from repro.cluster.network import MemoryChannel
from repro.core.cashmere.directory import Directory, DirectoryEntry
from repro.core.cashmere.lists import NoticeList
from repro.core.cashmere.sync import McFlag, McLock, TreeBarrier
from repro.sim import Engine
from repro.stats import StatsBoard


# --- directory ---------------------------------------------------------


def test_directory_entry_lazy_creation():
    directory = Directory()
    entry = directory.entry(42)
    assert entry.page == 42
    assert directory.entry(42) is entry
    assert not entry.home_assigned


def test_directory_others():
    entry = DirectoryEntry(0, sharers={1, 2, 3})
    assert entry.others(2) == {1, 3}
    assert entry.others(9) == {1, 2, 3}


def test_directory_invariant_checks():
    directory = Directory()
    entry = directory.entry(0)
    entry.exclusive_holder = 5  # not a sharer
    with pytest.raises(AssertionError, match="not a sharer"):
        directory.check()
    entry.sharers.add(5)
    directory.check()
    entry.never_exclusive = True
    with pytest.raises(AssertionError, match="never-exclusive"):
        directory.check()


# --- notice lists ---------------------------------------------------------


def test_notice_list_dedup():
    notices = NoticeList()
    assert notices.append(7)
    assert not notices.append(7)  # bitmap suppresses the duplicate
    assert notices.append(8)
    assert len(notices) == 2
    assert 7 in notices


def test_notice_list_drain_clears():
    notices = NoticeList()
    notices.append(1)
    notices.append(2)
    assert list(notices.drain()) == [1, 2]
    assert len(notices) == 0
    assert notices.append(1)  # can be re-appended after drain


# --- MC locks -----------------------------------------------------------


def lock_fixture(nprocs=3):
    engine = Engine()
    stats = StatsBoard(nprocs)
    cluster = Cluster(
        engine,
        ClusterConfig(),
        CostModel(),
        Mechanism.POLL,
        [(i, 0) for i in range(nprocs)],
        stats,
    )
    network = MemoryChannel(engine, ClusterConfig(), CostModel())
    lock = McLock(engine, network, CostModel())
    return engine, cluster, lock


def test_mclock_mutual_exclusion_and_fifo():
    engine, cluster, lock = lock_fixture()
    inside = []
    order = []

    def contender(rank, delay):
        yield engine.timeout(delay)
        proc = cluster.proc(rank)
        yield from lock.acquire(proc)
        inside.append(rank)
        assert len(inside) == 1  # mutual exclusion
        order.append(rank)
        yield engine.timeout(100.0)
        inside.remove(rank)
        yield from lock.release(proc)

    for rank, delay in ((0, 0.0), (1, 5.0), (2, 10.0)):
        engine.process(contender(rank, delay))
    engine.run()
    assert order == [0, 1, 2]  # FIFO grant, no barging


def test_mclock_release_by_non_holder_rejected():
    engine, cluster, lock = lock_fixture()

    def bad():
        yield from lock.release(cluster.proc(1))

    engine.process(bad())
    with pytest.raises(RuntimeError, match="releasing lock"):
        engine.run()


def test_mclock_uncontended_cost():
    engine, cluster, lock = lock_fixture()
    costs = CostModel()

    def solo():
        proc = cluster.proc(0)
        yield from lock.acquire(proc)
        yield from lock.release(proc)

    engine.process(solo())
    engine.run()
    assert engine.now == pytest.approx(costs.lock_mc + 2.0)


# --- tree barrier ---------------------------------------------------------


def test_tree_barrier_releases_everyone_together():
    engine, cluster, _ = lock_fixture(3)
    network = MemoryChannel(engine, ClusterConfig(), CostModel())
    barrier = TreeBarrier(engine, network, CostModel(), 3)
    release_times = []

    def member(rank, delay):
        yield engine.timeout(delay)
        yield from barrier.arrive_and_wait(cluster.proc(rank))
        release_times.append(engine.now)

    for rank, delay in ((0, 0.0), (1, 30.0), (2, 60.0)):
        engine.process(member(rank, delay))
    engine.run()
    assert len(set(release_times)) <= 2  # within one wake-up round
    assert min(release_times) >= 60.0  # nobody leaves before the last


def test_tree_barrier_reusable_across_episodes():
    engine, cluster, _ = lock_fixture(2)
    network = MemoryChannel(engine, ClusterConfig(), CostModel())
    barrier = TreeBarrier(engine, network, CostModel(), 2)
    crossings = []

    def member(rank):
        for episode in range(3):
            yield from barrier.arrive_and_wait(cluster.proc(rank))
            crossings.append((rank, episode))

    engine.process(member(0))
    engine.process(member(1))
    engine.run()
    assert len(crossings) == 6


def test_tree_barrier_16_costs_more_than_2():
    def barrier_cost(nprocs):
        engine = Engine()
        stats = StatsBoard(nprocs)
        cluster = Cluster(
            engine,
            ClusterConfig(),
            CostModel(),
            Mechanism.POLL,
            [(i % 8, i // 8) for i in range(nprocs)],
            stats,
        )
        network = MemoryChannel(engine, ClusterConfig(), CostModel())
        barrier = TreeBarrier(engine, network, CostModel(), nprocs)

        def member(rank):
            yield from barrier.arrive_and_wait(cluster.proc(rank))

        for rank in range(nprocs):
            engine.process(member(rank))
        engine.run()
        return engine.now

    assert barrier_cost(16) > barrier_cost(2)


# --- flags -----------------------------------------------------------------


def test_flag_wakes_waiters_after_post():
    engine, cluster, _ = lock_fixture(2)
    network = MemoryChannel(engine, ClusterConfig(), CostModel())
    flag = McFlag(engine, network, CostModel())
    woken = []

    def waiter():
        yield from flag.wait(cluster.proc(1))
        woken.append(engine.now)

    def poster():
        yield engine.timeout(40.0)
        yield from flag.post(cluster.proc(0))

    engine.process(waiter())
    engine.process(poster())
    engine.run()
    assert woken and woken[0] >= 40.0


def test_flag_wait_after_post_returns_quickly():
    engine, cluster, _ = lock_fixture(2)
    network = MemoryChannel(engine, ClusterConfig(), CostModel())
    flag = McFlag(engine, network, CostModel())
    woken = []

    def poster():
        yield from flag.post(cluster.proc(0))

    def late_waiter():
        yield engine.timeout(100.0)
        yield from flag.wait(cluster.proc(1))
        woken.append(engine.now)

    engine.process(poster())
    engine.process(late_waiter())
    engine.run()
    assert woken == [100.0]
