"""Unit and property tests for the paged address space."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.memory import AddressSpace, Protection


def test_protection_ordering():
    assert Protection.NONE < Protection.READ < Protection.READ_WRITE
    assert not Protection.NONE.allows_read()
    assert Protection.READ.allows_read()
    assert not Protection.READ.allows_write()
    assert Protection.READ_WRITE.allows_write()


def test_alloc_page_aligned():
    space = AddressSpace(page_size=4096)
    a = space.alloc("a", 100)
    b = space.alloc("b", 5000)
    assert a.offset == 0
    assert a.nbytes == 4096
    assert b.offset == 4096
    assert b.nbytes == 8192
    assert space.n_pages == 3


def test_alloc_duplicate_name_rejected():
    space = AddressSpace()
    space.alloc("x", 10)
    with pytest.raises(ValueError, match="already allocated"):
        space.alloc("x", 10)


def test_alloc_zero_size_rejected():
    space = AddressSpace()
    with pytest.raises(ValueError):
        space.alloc("empty", 0)


def test_bad_page_size_rejected():
    with pytest.raises(ValueError):
        AddressSpace(page_size=100)  # not a multiple of 8
    with pytest.raises(ValueError):
        AddressSpace(page_size=32)  # too small


def test_page_spans_single_page():
    space = AddressSpace(page_size=4096)
    space.alloc("a", 4096)
    spans = list(space.page_spans(100, 200))
    assert spans == [(0, 100, 200)]


def test_page_spans_crossing():
    space = AddressSpace(page_size=4096)
    space.alloc("a", 3 * 4096)
    spans = list(space.page_spans(4000, 5000))
    assert spans == [(0, 4000, 96), (1, 0, 4096), (2, 0, 808)]


def test_page_spans_out_of_range():
    space = AddressSpace(page_size=4096)
    space.alloc("a", 4096)
    with pytest.raises(ValueError):
        list(space.page_spans(0, 5000))


def test_backing_roundtrip():
    space = AddressSpace(page_size=256)
    region = space.alloc("data", 1000)
    payload = np.arange(1000, dtype=np.uint8)
    space.write_backing(region.offset, payload)
    out = space.read_backing(region.offset, 1000)
    assert np.array_equal(out, payload)


def test_region_initialize_typed():
    space = AddressSpace(page_size=256)
    region = space.alloc("vals", 10 * 8)
    region.initialize(np.arange(10, dtype=np.float64))
    assert np.array_equal(
        region.read_backing(np.float64, 10), np.arange(10.0)
    )


def test_region_initialize_too_big_rejected():
    space = AddressSpace(page_size=256)
    region = space.alloc("small", 64)
    with pytest.raises(ValueError, match="do not fit"):
        region.initialize(np.zeros(100))


def test_region_page_properties():
    space = AddressSpace(page_size=1024)
    space.alloc("pad", 1024)
    region = space.alloc("r", 2500)
    assert region.first_page == 1
    assert region.n_pages == 3
    assert list(region.pages) == [1, 2, 3]


def test_backing_page_out_of_range():
    space = AddressSpace(page_size=1024)
    space.alloc("a", 1024)
    with pytest.raises(ValueError):
        space.backing_page(5)


@given(
    offset=st.integers(min_value=0, max_value=10000),
    nbytes=st.integers(min_value=0, max_value=10000),
)
def test_page_spans_partition_property(offset, nbytes):
    """Spans must tile the byte range exactly, in order, within pages."""
    space = AddressSpace(page_size=512)
    space.alloc("blob", 20480)
    spans = list(space.page_spans(offset, nbytes))
    assert sum(length for _, _, length in spans) == nbytes
    position = offset
    for page, start, length in spans:
        assert page * 512 + start == position
        assert 0 < length <= 512
        assert start + length <= 512
        position += length


@given(st.binary(min_size=1, max_size=2048), st.integers(0, 1024))
def test_backing_write_read_property(raw, offset):
    space = AddressSpace(page_size=256)
    space.alloc("blob", 4096)
    data = np.frombuffer(raw, np.uint8)
    space.write_backing(offset, data)
    assert np.array_equal(space.read_backing(offset, len(data)), data)
