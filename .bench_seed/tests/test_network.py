"""Unit tests for the Memory Channel network model."""

import pytest

from repro.config import ClusterConfig, CostModel
from repro.cluster.network import MemoryChannel
from repro.sim import Engine


@pytest.fixture
def network():
    engine = Engine()
    return engine, MemoryChannel(engine, ClusterConfig(), CostModel())


def test_small_write_dominated_by_latency(network):
    engine, mc = network
    done = mc.write(0, 8)
    costs = CostModel()
    assert done == pytest.approx(
        8 / costs.mc_link_bandwidth + costs.mc_latency, rel=1e-6
    )


def test_large_write_dominated_by_bandwidth(network):
    engine, mc = network
    costs = CostModel()
    done = mc.write(0, 8192)
    wire = 8192 / costs.mc_link_bandwidth
    assert done >= wire
    assert done == pytest.approx(
        max(wire, 8192 / costs.mc_aggregate_bandwidth) + costs.mc_latency,
        rel=1e-6,
    )


def test_link_occupancy_serializes_same_source(network):
    engine, mc = network
    first = mc.write(0, 8192)
    second = mc.write(0, 8192)
    assert second > first
    # Bandwidth-bound transfers from one link queue back to back.
    assert second - first == pytest.approx(
        8192 / CostModel().mc_aggregate_bandwidth, rel=0.2
    )


def test_hub_contention_across_sources(network):
    engine, mc = network
    costs = CostModel()
    solo = mc.write(0, 8192)
    contended = mc.write(1, 8192)  # different link, same hub
    assert contended > solo
    # The hub (aggregate bandwidth) is the shared bottleneck: the second
    # transfer queues behind the first's hub occupancy.
    hub = 8192 / costs.mc_aggregate_bandwidth
    assert contended == pytest.approx(2 * hub + costs.mc_latency)


def test_usage_accounting(network):
    engine, mc = network
    mc.write(0, 100)
    mc.write(0, 200)
    mc.write(3, 50)
    assert mc.usage[0].bytes_sent == 300
    assert mc.usage[0].transfers == 2
    assert mc.usage[3].bytes_sent == 50
    assert mc.aggregate_bytes == 350


def test_flush_time_tracks_pending_writes(network):
    engine, mc = network
    costs = CostModel()
    assert mc.flush_time(0) == pytest.approx(costs.mc_latency)
    done = mc.write(0, 8192)
    assert mc.flush_time(0) == pytest.approx(
        8192 / costs.mc_link_bandwidth + costs.mc_latency
    )


def test_negative_size_rejected(network):
    engine, mc = network
    with pytest.raises(ValueError):
        mc.write(0, -1)


def test_broadcast_occupies_hub_once(network):
    engine, mc = network
    done = mc.write(0, 32, broadcast=True)
    assert done > 0
    assert mc.usage[0].transfers == 1


def test_second_generation_network_is_faster():
    engine = Engine()
    costs2 = CostModel.second_generation()
    mc2 = MemoryChannel(engine, ClusterConfig(), costs2)
    engine_1 = Engine()
    mc1 = MemoryChannel(engine_1, ClusterConfig(), CostModel())
    assert mc2.write(0, 8192) < mc1.write(0, 8192) / 5
