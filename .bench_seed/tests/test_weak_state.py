"""The legacy weak-state Cashmere protocol: correct, but worse on the
patterns the implemented protocol was redesigned for."""

import numpy as np
import pytest

from repro.config import CSM_POLL, RunConfig
from repro.core import Program, SharedArray, run_program

from tests.helpers import values_match


def private_pages_program():
    """Each processor repeatedly writes its own private pages with
    barriers between iterations — exclusive mode's best case and the
    weak state's worst case."""

    def setup(space, params):
        arr = SharedArray.alloc(space, "data", np.float64, (8192,))
        arr.initialize(np.zeros(8192))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        base = env.rank * 2048
        for it in range(5):
            yield from arr.write_range(
                env, base, np.full(1024, float(it))
            )
            yield from env.barrier(0)
        env.stop_timer()
        if env.rank == 0:
            return (yield from arr.read_all(env))
        return None

    return Program("private_pages", setup, worker)


def producer_consumer_program():
    def setup(space, params):
        arr = SharedArray.alloc(space, "data", np.float64, (2048,))
        arr.initialize(np.zeros(2048))
        return {"arr": arr}

    def worker(env, shared, params):
        arr = shared["arr"]
        for it in range(5):
            if env.rank == 0:
                yield from arr.put(env, it, it + 1.0)
            yield from env.barrier(0)
            value = yield from arr.get(env, it)
            assert value == it + 1.0
            yield from env.barrier(1)
        env.stop_timer()
        if env.rank == 0:
            return (yield from arr.read_all(env))
        return None

    return Program("producer_consumer", setup, worker)


@pytest.mark.parametrize(
    "make", [private_pages_program, producer_consumer_program]
)
def test_weak_state_is_correct(make):
    normal = run_program(
        make(), RunConfig(variant=CSM_POLL, nprocs=4), {}
    )
    weak = run_program(
        make(), RunConfig(variant=CSM_POLL, nprocs=4, weak_state=True), {}
    )
    assert values_match(normal.values[0], weak.values[0])


def test_weak_state_hurts_private_pages():
    """'Pages in exclusive mode experience only the initial write fault'
    — the weak state re-faults private pages every interval."""
    normal = run_program(
        private_pages_program(), RunConfig(variant=CSM_POLL, nprocs=4), {}
    )
    weak = run_program(
        private_pages_program(),
        RunConfig(variant=CSM_POLL, nprocs=4, weak_state=True),
        {},
    )
    assert weak.counter("write_faults") > 3 * normal.counter("write_faults")
    assert weak.exec_time > normal.exec_time


def test_weak_state_never_sets_exclusive_or_notices():
    from repro.core.cashmere.protocol import CashmereProtocol

    created = []
    original = CashmereProtocol.__init__

    def spy(self, *args, **kwargs):
        original(self, *args, **kwargs)
        created.append(self)

    CashmereProtocol.__init__ = spy
    try:
        result = run_program(
            private_pages_program(),
            RunConfig(variant=CSM_POLL, nprocs=4, weak_state=True),
            {},
        )
    finally:
        CashmereProtocol.__init__ = original
    protocol = created[-1]
    assert result.counter("write_notices_sent") == 0
    for entry in protocol.directory.known_entries().values():
        assert entry.exclusive_holder is None
