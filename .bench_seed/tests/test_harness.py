"""Tests for the experiment harness (tables, figures, CLI)."""

import pytest

from repro.config import CSM_POLL, CSM_PP, TMK_MC_POLL, TMK_UDP_INT
from repro.harness import figure5, figure6, table1, table2, table3
from repro.harness.cli import build_parser, main
from repro.harness.runner import ExperimentContext, feasible_counts
from repro.stats import Category


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale="tiny")


@pytest.fixture(scope="module")
def table1_rows(ctx):
    return table1.generate(ctx)


def test_table1_covers_all_variants(table1_rows):
    assert [r.variant for r in table1_rows] == [
        "csm_pp",
        "csm_int",
        "csm_poll",
        "tmk_udp_int",
        "tmk_mc_int",
        "tmk_mc_poll",
    ]


def test_table1_values_positive(table1_rows):
    for row in table1_rows:
        for value in row.as_dict().values():
            assert value > 0


def test_table1_shapes(table1_rows):
    by_name = {r.variant: r for r in table1_rows}
    # Bigger barriers cost more.
    for row in table1_rows:
        assert row.barrier_16 > row.barrier_2
    # Kernel UDP messaging is the most expensive lock path.
    assert (
        by_name["tmk_udp_int"].lock_acquire
        > by_name["tmk_mc_poll"].lock_acquire
    )
    # Cashmere locks are plain MC writes: cheaper than any TMK lock.
    assert (
        by_name["csm_poll"].lock_acquire
        < by_name["tmk_mc_poll"].lock_acquire
    )
    # A page transfer costs hundreds of microseconds on every system.
    for row in table1_rows:
        assert 200 < row.page_transfer < 5000


def test_table1_render(table1_rows):
    text = table1.render(table1_rows)
    assert "Lock Acquire" in text
    assert "csm_poll" in text
    assert "(" in text  # 16-processor barrier in parentheses


def test_table2_rows(ctx):
    rows = table2.generate(ctx)
    assert [r.app for r in rows] == list(
        ("sor", "lu", "water", "tsp", "gauss", "ilink", "em3d", "barnes")
    )
    for row in rows:
        assert row.sequential_seconds > 0
        assert row.shared_mbytes > 0
        assert row.paper_sequential_seconds > 0
    text = table2.render(rows)
    assert "sor" in text and "Paper" in text


def test_table3_cells(ctx):
    cells = table3.generate(ctx, apps=["sor"], nprocs=4)
    assert len(cells) == 2
    csm = next(c for c in cells if c.system == "CSM")
    tmk = next(c for c in cells if c.system == "TMK")
    assert csm.page_transfers is not None and csm.messages is None
    assert tmk.messages is not None and tmk.page_transfers is None
    assert csm.barriers == tmk.barriers  # same program structure
    assert csm.exec_seconds > 0
    text = table3.render(cells)
    assert "Page transfers" in text and "Messages" in text


def test_table3_barnes_runs_at_16():
    assert table3.procs_for("barnes") == 16
    assert table3.procs_for("sor") == 32


def test_figure5_curves(ctx):
    curves = figure5.generate(
        ctx,
        apps=["sor"],
        variants=[CSM_POLL, CSM_PP],
        counts=[1, 2, 4],
    )
    assert len(curves) == 2
    for curve in curves:
        assert set(curve.points) == {1, 2, 4}
        assert all(s > 0 for s in curve.points.values())
    text = figure5.render(curves)
    assert "== sor ==" in text


def test_figure5_pp_not_applicable_at_32(ctx):
    assert feasible_counts([16, 24, 32], CSM_PP, ctx) == [16, 24]
    assert feasible_counts([16, 24, 32], CSM_POLL, ctx) == [16, 24, 32]


def test_figure6_bars(ctx):
    bars = figure6.generate(ctx, apps=["sor"], nprocs=4)
    assert len(bars) == 2
    csm = next(b for b in bars if b.system == "CSM")
    tmk = next(b for b in bars if b.system == "TMK")
    # Normalization: the Cashmere bar totals exactly 1.
    assert csm.total == pytest.approx(1.0)
    assert sum(csm.normalized.values()) == pytest.approx(1.0)
    # TreadMarks never pays write doubling.
    assert tmk.normalized[Category.WDOUBLE] == 0.0
    text = figure6.render(bars)
    assert "write_doubling" in text


def test_sequential_results_cached(ctx):
    first = ctx.sequential("sor")
    second = ctx.sequential("sor")
    assert first is second


def test_cli_parser_commands():
    parser = build_parser()
    for command in ("table1", "table2", "table3", "figure5", "figure6"):
        args = parser.parse_args([command])
        assert args.command == command


def test_cli_runs_table2(capsys):
    assert main(["table2", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "sor" in out


def test_cli_runs_figure5_subset(capsys):
    assert (
        main(
            [
                "figure5",
                "--scale",
                "tiny",
                "--apps",
                "sor",
                "--variants",
                "csm_poll",
                "--counts",
                "1",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "csm_poll" in out


def test_cli_run_command(capsys):
    assert (
        main(
            [
                "run",
                "sor",
                "--scale",
                "tiny",
                "--variant",
                "csm_poll",
                "--procs",
                "4",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "breakdown" in out


def test_cli_run_with_trace(capsys):
    assert (
        main(
            [
                "run",
                "sor",
                "--scale",
                "tiny",
                "--procs",
                "2",
                "--trace",
                "--trace-limit",
                "10",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "protocol events" in out


def test_cli_figure6_chart(capsys):
    assert main(["figure6", "--scale", "tiny", "--apps", "sor",
                 "--procs", "4", "--chart"]) == 0
    out = capsys.readouterr().out
    assert "segments:" in out


def test_cli_sweep_command(capsys):
    assert (
        main(
            [
                "sweep",
                "--scale",
                "tiny",
                "--knob",
                "latency",
                "--app",
                "sor",
                "--procs",
                "4",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "latency" in out
    assert "gains:" in out


def test_sweep_module_shapes():
    from repro.harness import sweep

    points = sweep.sweep_bandwidth(
        ExperimentContext(scale="tiny"),
        app="sor",
        nprocs=4,
        multipliers=(1.0, 4.0),
    )
    assert len(points) == 4  # 2 multipliers x 2 variants
    gains = sweep.gains(points)
    assert set(gains) == {"csm_poll", "tmk_mc_poll"}
    rendered = sweep.render(points)
    assert "bandwidth" in rendered
